/root/repo/target/debug/examples/tool_scorecard-907f899c9c182af8.d: examples/tool_scorecard.rs

/root/repo/target/debug/examples/libtool_scorecard-907f899c9c182af8.rmeta: examples/tool_scorecard.rs

examples/tool_scorecard.rs:
