/root/repo/target/debug/examples/two_communicators-e26abaeeb651cd16.d: examples/two_communicators.rs

/root/repo/target/debug/examples/libtwo_communicators-e26abaeeb651cd16.rmeta: examples/two_communicators.rs

examples/two_communicators.rs:
