/root/repo/target/debug/examples/two_communicators-58bfbddadc769fbf.d: examples/two_communicators.rs

/root/repo/target/debug/examples/libtwo_communicators-58bfbddadc769fbf.rmeta: examples/two_communicators.rs

examples/two_communicators.rs:
