/root/repo/target/debug/examples/applications-fd7388e6fd7a16dc.d: examples/applications.rs

/root/repo/target/debug/examples/libapplications-fd7388e6fd7a16dc.rmeta: examples/applications.rs

examples/applications.rs:
