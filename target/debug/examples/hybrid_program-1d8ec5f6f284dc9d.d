/root/repo/target/debug/examples/hybrid_program-1d8ec5f6f284dc9d.d: examples/hybrid_program.rs

/root/repo/target/debug/examples/libhybrid_program-1d8ec5f6f284dc9d.rmeta: examples/hybrid_program.rs

examples/hybrid_program.rs:
