/root/repo/target/debug/examples/tool_scorecard-fd69abd2de2fcd92.d: examples/tool_scorecard.rs

/root/repo/target/debug/examples/libtool_scorecard-fd69abd2de2fcd92.rmeta: examples/tool_scorecard.rs

examples/tool_scorecard.rs:
