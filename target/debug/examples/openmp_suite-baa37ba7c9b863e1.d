/root/repo/target/debug/examples/openmp_suite-baa37ba7c9b863e1.d: examples/openmp_suite.rs

/root/repo/target/debug/examples/libopenmp_suite-baa37ba7c9b863e1.rmeta: examples/openmp_suite.rs

examples/openmp_suite.rs:
