/root/repo/target/debug/examples/quickstart-d04670b9e875de82.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d04670b9e875de82: examples/quickstart.rs

examples/quickstart.rs:
