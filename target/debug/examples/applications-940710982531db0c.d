/root/repo/target/debug/examples/applications-940710982531db0c.d: examples/applications.rs

/root/repo/target/debug/examples/libapplications-940710982531db0c.rmeta: examples/applications.rs

examples/applications.rs:
