/root/repo/target/debug/examples/composite_mpi-701340dd88692d18.d: examples/composite_mpi.rs

/root/repo/target/debug/examples/libcomposite_mpi-701340dd88692d18.rmeta: examples/composite_mpi.rs

examples/composite_mpi.rs:
