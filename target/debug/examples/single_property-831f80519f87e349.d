/root/repo/target/debug/examples/single_property-831f80519f87e349.d: examples/single_property.rs

/root/repo/target/debug/examples/libsingle_property-831f80519f87e349.rmeta: examples/single_property.rs

examples/single_property.rs:
