/root/repo/target/debug/examples/single_property-48e511d31e39563f.d: examples/single_property.rs

/root/repo/target/debug/examples/libsingle_property-48e511d31e39563f.rmeta: examples/single_property.rs

examples/single_property.rs:
