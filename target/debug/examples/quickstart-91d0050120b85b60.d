/root/repo/target/debug/examples/quickstart-91d0050120b85b60.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-91d0050120b85b60.rmeta: examples/quickstart.rs

examples/quickstart.rs:
