/root/repo/target/debug/examples/quickstart-470a48b5543b3136.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-470a48b5543b3136.rmeta: examples/quickstart.rs

examples/quickstart.rs:
