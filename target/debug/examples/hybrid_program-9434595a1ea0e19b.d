/root/repo/target/debug/examples/hybrid_program-9434595a1ea0e19b.d: examples/hybrid_program.rs

/root/repo/target/debug/examples/libhybrid_program-9434595a1ea0e19b.rmeta: examples/hybrid_program.rs

examples/hybrid_program.rs:
