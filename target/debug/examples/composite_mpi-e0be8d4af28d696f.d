/root/repo/target/debug/examples/composite_mpi-e0be8d4af28d696f.d: examples/composite_mpi.rs

/root/repo/target/debug/examples/libcomposite_mpi-e0be8d4af28d696f.rmeta: examples/composite_mpi.rs

examples/composite_mpi.rs:
