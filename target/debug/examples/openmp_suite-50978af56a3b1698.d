/root/repo/target/debug/examples/openmp_suite-50978af56a3b1698.d: examples/openmp_suite.rs

/root/repo/target/debug/examples/libopenmp_suite-50978af56a3b1698.rmeta: examples/openmp_suite.rs

examples/openmp_suite.rs:
