/root/repo/target/debug/deps/substrate-435be96667e94fcb.d: crates/bench/benches/substrate.rs

/root/repo/target/debug/deps/libsubstrate-435be96667e94fcb.rmeta: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
