/root/repo/target/debug/deps/ats_omp-31fd81e2d9419132.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/ats_omp-31fd81e2d9419132: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
