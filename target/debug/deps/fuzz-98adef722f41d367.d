/root/repo/target/debug/deps/fuzz-98adef722f41d367.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/libfuzz-98adef722f41d367.rmeta: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
