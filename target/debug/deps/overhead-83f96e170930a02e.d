/root/repo/target/debug/deps/overhead-83f96e170930a02e.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/liboverhead-83f96e170930a02e.rmeta: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
