/root/repo/target/debug/deps/sweep_negative-3f3a993f8e4f429e.d: crates/bench/src/bin/sweep_negative.rs

/root/repo/target/debug/deps/libsweep_negative-3f3a993f8e4f429e.rmeta: crates/bench/src/bin/sweep_negative.rs

crates/bench/src/bin/sweep_negative.rs:
