/root/repo/target/debug/deps/trace_bench-813cfeb54aef63b0.d: crates/bench/src/bin/trace_bench.rs

/root/repo/target/debug/deps/libtrace_bench-813cfeb54aef63b0.rmeta: crates/bench/src/bin/trace_bench.rs

crates/bench/src/bin/trace_bench.rs:
