/root/repo/target/debug/deps/expert_cli-0ada2287ddc4881f.d: crates/bench/src/bin/expert_cli.rs

/root/repo/target/debug/deps/libexpert_cli-0ada2287ddc4881f.rmeta: crates/bench/src/bin/expert_cli.rs

crates/bench/src/bin/expert_cli.rs:
