/root/repo/target/debug/deps/ats_omp-c464e2115c86c9f2.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-c464e2115c86c9f2.rmeta: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
