/root/repo/target/debug/deps/ats_runtime-dd320a6b1f344a7d.d: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

/root/repo/target/debug/deps/libats_runtime-dd320a6b1f344a7d.rmeta: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

crates/runtime/src/lib.rs:
crates/runtime/src/model.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/time.rs:
crates/runtime/src/work.rs:
