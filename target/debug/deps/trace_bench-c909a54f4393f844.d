/root/repo/target/debug/deps/trace_bench-c909a54f4393f844.d: crates/bench/src/bin/trace_bench.rs

/root/repo/target/debug/deps/libtrace_bench-c909a54f4393f844.rmeta: crates/bench/src/bin/trace_bench.rs

crates/bench/src/bin/trace_bench.rs:
