/root/repo/target/debug/deps/ablation-40d41f817611565f.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-40d41f817611565f.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
