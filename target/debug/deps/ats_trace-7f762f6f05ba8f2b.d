/root/repo/target/debug/deps/ats_trace-7f762f6f05ba8f2b.d: crates/trace/src/lib.rs crates/trace/src/binfmt.rs crates/trace/src/collector.rs crates/trace/src/event.rs crates/trace/src/io.rs crates/trace/src/local.rs crates/trace/src/pool.rs crates/trace/src/region.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/wellformed.rs

/root/repo/target/debug/deps/libats_trace-7f762f6f05ba8f2b.rmeta: crates/trace/src/lib.rs crates/trace/src/binfmt.rs crates/trace/src/collector.rs crates/trace/src/event.rs crates/trace/src/io.rs crates/trace/src/local.rs crates/trace/src/pool.rs crates/trace/src/region.rs crates/trace/src/stats.rs crates/trace/src/trace.rs crates/trace/src/wellformed.rs

crates/trace/src/lib.rs:
crates/trace/src/binfmt.rs:
crates/trace/src/collector.rs:
crates/trace/src/event.rs:
crates/trace/src/io.rs:
crates/trace/src/local.rs:
crates/trace/src/pool.rs:
crates/trace/src/region.rs:
crates/trace/src/stats.rs:
crates/trace/src/trace.rs:
crates/trace/src/wellformed.rs:
