/root/repo/target/debug/deps/ats_omp-920cfa360bf4bbbe.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-920cfa360bf4bbbe.rlib: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-920cfa360bf4bbbe.rmeta: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
