/root/repo/target/debug/deps/ats_apps-dd1749e6487c8bd4.d: crates/apps/src/lib.rs crates/apps/src/heat2d.rs crates/apps/src/hybrid_stencil.rs crates/apps/src/jacobi.rs crates/apps/src/pipeline.rs crates/apps/src/taskfarm.rs crates/apps/src/transpose.rs

/root/repo/target/debug/deps/ats_apps-dd1749e6487c8bd4: crates/apps/src/lib.rs crates/apps/src/heat2d.rs crates/apps/src/hybrid_stencil.rs crates/apps/src/jacobi.rs crates/apps/src/pipeline.rs crates/apps/src/taskfarm.rs crates/apps/src/transpose.rs

crates/apps/src/lib.rs:
crates/apps/src/heat2d.rs:
crates/apps/src/hybrid_stencil.rs:
crates/apps/src/jacobi.rs:
crates/apps/src/pipeline.rs:
crates/apps/src/taskfarm.rs:
crates/apps/src/transpose.rs:
