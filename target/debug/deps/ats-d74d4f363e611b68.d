/root/repo/target/debug/deps/ats-d74d4f363e611b68.d: src/lib.rs

/root/repo/target/debug/deps/libats-d74d4f363e611b68.rlib: src/lib.rs

/root/repo/target/debug/deps/libats-d74d4f363e611b68.rmeta: src/lib.rs

src/lib.rs:
