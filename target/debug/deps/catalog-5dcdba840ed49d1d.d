/root/repo/target/debug/deps/catalog-5dcdba840ed49d1d.d: crates/bench/src/bin/catalog.rs

/root/repo/target/debug/deps/libcatalog-5dcdba840ed49d1d.rmeta: crates/bench/src/bin/catalog.rs

crates/bench/src/bin/catalog.rs:
