/root/repo/target/debug/deps/ats_obs-97c7826da63e325b.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libats_obs-97c7826da63e325b.rlib: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libats_obs-97c7826da63e325b.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profiler.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
