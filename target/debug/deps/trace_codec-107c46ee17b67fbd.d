/root/repo/target/debug/deps/trace_codec-107c46ee17b67fbd.d: crates/bench/benches/trace_codec.rs

/root/repo/target/debug/deps/libtrace_codec-107c46ee17b67fbd.rmeta: crates/bench/benches/trace_codec.rs

crates/bench/benches/trace_codec.rs:
