/root/repo/target/debug/deps/ats-d190d77b17d92dd0.d: src/main.rs

/root/repo/target/debug/deps/ats-d190d77b17d92dd0: src/main.rs

src/main.rs:
