/root/repo/target/debug/deps/ats_bench-af82f36dad40cf4d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libats_bench-af82f36dad40cf4d.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
