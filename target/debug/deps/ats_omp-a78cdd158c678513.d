/root/repo/target/debug/deps/ats_omp-a78cdd158c678513.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-a78cdd158c678513.rlib: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-a78cdd158c678513.rmeta: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
