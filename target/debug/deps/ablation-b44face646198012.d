/root/repo/target/debug/deps/ablation-b44face646198012.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-b44face646198012.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
