/root/repo/target/debug/deps/ats_bench-84ce2b5670d7a20b.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/ats_bench-84ce2b5670d7a20b: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
