/root/repo/target/debug/deps/ats_apps-c686e54aec5d32dd.d: crates/apps/src/lib.rs crates/apps/src/heat2d.rs crates/apps/src/hybrid_stencil.rs crates/apps/src/jacobi.rs crates/apps/src/pipeline.rs crates/apps/src/taskfarm.rs crates/apps/src/transpose.rs

/root/repo/target/debug/deps/libats_apps-c686e54aec5d32dd.rmeta: crates/apps/src/lib.rs crates/apps/src/heat2d.rs crates/apps/src/hybrid_stencil.rs crates/apps/src/jacobi.rs crates/apps/src/pipeline.rs crates/apps/src/taskfarm.rs crates/apps/src/transpose.rs

crates/apps/src/lib.rs:
crates/apps/src/heat2d.rs:
crates/apps/src/hybrid_stencil.rs:
crates/apps/src/jacobi.rs:
crates/apps/src/pipeline.rs:
crates/apps/src/taskfarm.rs:
crates/apps/src/transpose.rs:
