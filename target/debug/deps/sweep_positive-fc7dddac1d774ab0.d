/root/repo/target/debug/deps/sweep_positive-fc7dddac1d774ab0.d: crates/bench/src/bin/sweep_positive.rs

/root/repo/target/debug/deps/libsweep_positive-fc7dddac1d774ab0.rmeta: crates/bench/src/bin/sweep_positive.rs

crates/bench/src/bin/sweep_positive.rs:
