/root/repo/target/debug/deps/expert_cli-2437e1f891230a5c.d: crates/bench/src/bin/expert_cli.rs

/root/repo/target/debug/deps/libexpert_cli-2437e1f891230a5c.rmeta: crates/bench/src/bin/expert_cli.rs

crates/bench/src/bin/expert_cli.rs:
