/root/repo/target/debug/deps/sweep_positive-a8fd34dc19f3f6b1.d: crates/bench/src/bin/sweep_positive.rs

/root/repo/target/debug/deps/libsweep_positive-a8fd34dc19f3f6b1.rmeta: crates/bench/src/bin/sweep_positive.rs

crates/bench/src/bin/sweep_positive.rs:
