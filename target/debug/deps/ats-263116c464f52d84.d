/root/repo/target/debug/deps/ats-263116c464f52d84.d: src/main.rs

/root/repo/target/debug/deps/libats-263116c464f52d84.rmeta: src/main.rs

src/main.rs:
