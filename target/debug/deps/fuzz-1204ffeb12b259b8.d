/root/repo/target/debug/deps/fuzz-1204ffeb12b259b8.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/libfuzz-1204ffeb12b259b8.rmeta: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
