/root/repo/target/debug/deps/sweep_negative-b7bb73858a9134d3.d: crates/bench/src/bin/sweep_negative.rs

/root/repo/target/debug/deps/libsweep_negative-b7bb73858a9134d3.rmeta: crates/bench/src/bin/sweep_negative.rs

crates/bench/src/bin/sweep_negative.rs:
