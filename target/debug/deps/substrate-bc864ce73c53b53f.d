/root/repo/target/debug/deps/substrate-bc864ce73c53b53f.d: crates/bench/benches/substrate.rs

/root/repo/target/debug/deps/libsubstrate-bc864ce73c53b53f.rmeta: crates/bench/benches/substrate.rs

crates/bench/benches/substrate.rs:
