/root/repo/target/debug/deps/figures-a69fcd0e0be408ff.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-a69fcd0e0be408ff.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
