/root/repo/target/debug/deps/fuzz_oracle-b4c5f58d408e74cc.d: tests/fuzz_oracle.rs

/root/repo/target/debug/deps/fuzz_oracle-b4c5f58d408e74cc: tests/fuzz_oracle.rs

tests/fuzz_oracle.rs:
