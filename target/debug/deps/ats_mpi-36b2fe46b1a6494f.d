/root/repo/target/debug/deps/ats_mpi-36b2fe46b1a6494f.d: crates/mpisim/src/lib.rs crates/mpisim/src/collective.rs crates/mpisim/src/comm.rs crates/mpisim/src/config.rs crates/mpisim/src/datatype.rs crates/mpisim/src/mailbox.rs crates/mpisim/src/proc.rs crates/mpisim/src/request.rs crates/mpisim/src/topology.rs crates/mpisim/src/world.rs

/root/repo/target/debug/deps/libats_mpi-36b2fe46b1a6494f.rmeta: crates/mpisim/src/lib.rs crates/mpisim/src/collective.rs crates/mpisim/src/comm.rs crates/mpisim/src/config.rs crates/mpisim/src/datatype.rs crates/mpisim/src/mailbox.rs crates/mpisim/src/proc.rs crates/mpisim/src/request.rs crates/mpisim/src/topology.rs crates/mpisim/src/world.rs

crates/mpisim/src/lib.rs:
crates/mpisim/src/collective.rs:
crates/mpisim/src/comm.rs:
crates/mpisim/src/config.rs:
crates/mpisim/src/datatype.rs:
crates/mpisim/src/mailbox.rs:
crates/mpisim/src/proc.rs:
crates/mpisim/src/request.rs:
crates/mpisim/src/topology.rs:
crates/mpisim/src/world.rs:
