/root/repo/target/debug/deps/figure34-359f8ae75e5ca6e2.d: crates/bench/src/bin/figure34.rs

/root/repo/target/debug/deps/libfigure34-359f8ae75e5ca6e2.rmeta: crates/bench/src/bin/figure34.rs

crates/bench/src/bin/figure34.rs:
