/root/repo/target/debug/deps/ats_bench-b90c5706814db085.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libats_bench-b90c5706814db085.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
