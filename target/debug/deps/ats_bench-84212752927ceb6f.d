/root/repo/target/debug/deps/ats_bench-84212752927ceb6f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libats_bench-84212752927ceb6f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
