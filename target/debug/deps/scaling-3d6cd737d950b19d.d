/root/repo/target/debug/deps/scaling-3d6cd737d950b19d.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-3d6cd737d950b19d.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
