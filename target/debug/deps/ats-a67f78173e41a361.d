/root/repo/target/debug/deps/ats-a67f78173e41a361.d: src/main.rs

/root/repo/target/debug/deps/ats-a67f78173e41a361: src/main.rs

src/main.rs:
