/root/repo/target/debug/deps/ats_runtime-8c4067dfd4934d4f.d: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

/root/repo/target/debug/deps/ats_runtime-8c4067dfd4934d4f: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

crates/runtime/src/lib.rs:
crates/runtime/src/model.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/time.rs:
crates/runtime/src/work.rs:
