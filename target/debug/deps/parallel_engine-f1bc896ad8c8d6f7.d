/root/repo/target/debug/deps/parallel_engine-f1bc896ad8c8d6f7.d: tests/parallel_engine.rs

/root/repo/target/debug/deps/parallel_engine-f1bc896ad8c8d6f7: tests/parallel_engine.rs

tests/parallel_engine.rs:
