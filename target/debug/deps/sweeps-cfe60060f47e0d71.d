/root/repo/target/debug/deps/sweeps-cfe60060f47e0d71.d: crates/bench/benches/sweeps.rs

/root/repo/target/debug/deps/libsweeps-cfe60060f47e0d71.rmeta: crates/bench/benches/sweeps.rs

crates/bench/benches/sweeps.rs:
