/root/repo/target/debug/deps/apps-9cab323b7b3a425c.d: crates/bench/benches/apps.rs

/root/repo/target/debug/deps/libapps-9cab323b7b3a425c.rmeta: crates/bench/benches/apps.rs

crates/bench/benches/apps.rs:
