/root/repo/target/debug/deps/catalog-389548d92d1fdf7a.d: crates/bench/src/bin/catalog.rs

/root/repo/target/debug/deps/libcatalog-389548d92d1fdf7a.rmeta: crates/bench/src/bin/catalog.rs

crates/bench/src/bin/catalog.rs:
