/root/repo/target/debug/deps/end_to_end-127b8adf55094d25.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-127b8adf55094d25: tests/end_to_end.rs

tests/end_to_end.rs:
