/root/repo/target/debug/deps/ablation-73b27d9373b78194.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-73b27d9373b78194.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
