/root/repo/target/debug/deps/figure34-a630dfc43305696f.d: crates/bench/src/bin/figure34.rs

/root/repo/target/debug/deps/libfigure34-a630dfc43305696f.rmeta: crates/bench/src/bin/figure34.rs

crates/bench/src/bin/figure34.rs:
