/root/repo/target/debug/deps/severity_accuracy-f252d36337646390.d: tests/severity_accuracy.rs

/root/repo/target/debug/deps/severity_accuracy-f252d36337646390: tests/severity_accuracy.rs

tests/severity_accuracy.rs:
