/root/repo/target/debug/deps/ats_analyzer-5f91805b1e36f6c0.d: crates/analyzer/src/lib.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/asl/mod.rs crates/analyzer/src/asl/ast.rs crates/analyzer/src/asl/eval.rs crates/analyzer/src/asl/parse.rs crates/analyzer/src/callpath.rs crates/analyzer/src/extract.rs crates/analyzer/src/ingest.rs crates/analyzer/src/patterns.rs crates/analyzer/src/phases.rs crates/analyzer/src/property.rs crates/analyzer/src/report.rs crates/analyzer/src/severity.rs

/root/repo/target/debug/deps/libats_analyzer-5f91805b1e36f6c0.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/analyzer.rs crates/analyzer/src/asl/mod.rs crates/analyzer/src/asl/ast.rs crates/analyzer/src/asl/eval.rs crates/analyzer/src/asl/parse.rs crates/analyzer/src/callpath.rs crates/analyzer/src/extract.rs crates/analyzer/src/ingest.rs crates/analyzer/src/patterns.rs crates/analyzer/src/phases.rs crates/analyzer/src/property.rs crates/analyzer/src/report.rs crates/analyzer/src/severity.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/analyzer.rs:
crates/analyzer/src/asl/mod.rs:
crates/analyzer/src/asl/ast.rs:
crates/analyzer/src/asl/eval.rs:
crates/analyzer/src/asl/parse.rs:
crates/analyzer/src/callpath.rs:
crates/analyzer/src/extract.rs:
crates/analyzer/src/ingest.rs:
crates/analyzer/src/patterns.rs:
crates/analyzer/src/phases.rs:
crates/analyzer/src/property.rs:
crates/analyzer/src/report.rs:
crates/analyzer/src/severity.rs:
