/root/repo/target/debug/deps/figure33-fa0cfd4b8c755ba7.d: crates/bench/src/bin/figure33.rs

/root/repo/target/debug/deps/libfigure33-fa0cfd4b8c755ba7.rmeta: crates/bench/src/bin/figure33.rs

crates/bench/src/bin/figure33.rs:
