/root/repo/target/debug/deps/sweep_positive-49ccb9489b6fa324.d: crates/bench/src/bin/sweep_positive.rs

/root/repo/target/debug/deps/libsweep_positive-49ccb9489b6fa324.rmeta: crates/bench/src/bin/sweep_positive.rs

crates/bench/src/bin/sweep_positive.rs:
