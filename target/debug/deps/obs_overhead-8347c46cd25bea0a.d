/root/repo/target/debug/deps/obs_overhead-8347c46cd25bea0a.d: crates/bench/src/bin/obs_overhead.rs

/root/repo/target/debug/deps/libobs_overhead-8347c46cd25bea0a.rmeta: crates/bench/src/bin/obs_overhead.rs

crates/bench/src/bin/obs_overhead.rs:
