/root/repo/target/debug/deps/overhead-3a0a2c81d875b26e.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/liboverhead-3a0a2c81d875b26e.rmeta: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
