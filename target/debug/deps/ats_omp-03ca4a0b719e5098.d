/root/repo/target/debug/deps/ats_omp-03ca4a0b719e5098.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-03ca4a0b719e5098.rmeta: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
