/root/repo/target/debug/deps/ats_fuzz-2e8707b1114fd1a7.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

/root/repo/target/debug/deps/libats_fuzz-2e8707b1114fd1a7.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

/root/repo/target/debug/deps/libats_fuzz-2e8707b1114fd1a7.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/generator.rs:
crates/fuzz/src/model.rs:
crates/fuzz/src/oracle.rs:
crates/fuzz/src/scenario.rs:
crates/fuzz/src/shrink.rs:
