/root/repo/target/debug/deps/ats-e0e45c45a734dbff.d: src/lib.rs

/root/repo/target/debug/deps/libats-e0e45c45a734dbff.rmeta: src/lib.rs

src/lib.rs:
