/root/repo/target/debug/deps/figure33-66314597cfd24636.d: crates/bench/src/bin/figure33.rs

/root/repo/target/debug/deps/libfigure33-66314597cfd24636.rmeta: crates/bench/src/bin/figure33.rs

crates/bench/src/bin/figure33.rs:
