/root/repo/target/debug/deps/catalog-b36a650ed9070eca.d: crates/bench/src/bin/catalog.rs

/root/repo/target/debug/deps/libcatalog-b36a650ed9070eca.rmeta: crates/bench/src/bin/catalog.rs

crates/bench/src/bin/catalog.rs:
