/root/repo/target/debug/deps/determinism-504411c1bfcd5079.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-504411c1bfcd5079: tests/determinism.rs

tests/determinism.rs:
