/root/repo/target/debug/deps/obs_overhead-f268e37f39fbc2a6.d: crates/bench/src/bin/obs_overhead.rs

/root/repo/target/debug/deps/libobs_overhead-f268e37f39fbc2a6.rmeta: crates/bench/src/bin/obs_overhead.rs

crates/bench/src/bin/obs_overhead.rs:
