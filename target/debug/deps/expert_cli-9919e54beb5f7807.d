/root/repo/target/debug/deps/expert_cli-9919e54beb5f7807.d: crates/bench/src/bin/expert_cli.rs

/root/repo/target/debug/deps/libexpert_cli-9919e54beb5f7807.rmeta: crates/bench/src/bin/expert_cli.rs

crates/bench/src/bin/expert_cli.rs:
