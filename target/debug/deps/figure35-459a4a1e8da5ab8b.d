/root/repo/target/debug/deps/figure35-459a4a1e8da5ab8b.d: crates/bench/src/bin/figure35.rs

/root/repo/target/debug/deps/libfigure35-459a4a1e8da5ab8b.rmeta: crates/bench/src/bin/figure35.rs

crates/bench/src/bin/figure35.rs:
