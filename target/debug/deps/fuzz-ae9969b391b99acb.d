/root/repo/target/debug/deps/fuzz-ae9969b391b99acb.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/libfuzz-ae9969b391b99acb.rmeta: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
