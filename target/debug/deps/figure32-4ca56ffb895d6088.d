/root/repo/target/debug/deps/figure32-4ca56ffb895d6088.d: crates/bench/src/bin/figure32.rs

/root/repo/target/debug/deps/libfigure32-4ca56ffb895d6088.rmeta: crates/bench/src/bin/figure32.rs

crates/bench/src/bin/figure32.rs:
