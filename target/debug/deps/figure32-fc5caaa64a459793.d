/root/repo/target/debug/deps/figure32-fc5caaa64a459793.d: crates/bench/src/bin/figure32.rs

/root/repo/target/debug/deps/libfigure32-fc5caaa64a459793.rmeta: crates/bench/src/bin/figure32.rs

crates/bench/src/bin/figure32.rs:
