/root/repo/target/debug/deps/ats_harness-ae8ff87bc23848c4.d: crates/harness/src/lib.rs crates/harness/src/correctness.rs crates/harness/src/experiment.rs crates/harness/src/generate.rs crates/harness/src/params.rs crates/harness/src/pool.rs crates/harness/src/profile.rs crates/harness/src/registry.rs crates/harness/src/resources.rs crates/harness/src/session.rs crates/harness/src/timeline.rs crates/harness/src/validation.rs

/root/repo/target/debug/deps/libats_harness-ae8ff87bc23848c4.rlib: crates/harness/src/lib.rs crates/harness/src/correctness.rs crates/harness/src/experiment.rs crates/harness/src/generate.rs crates/harness/src/params.rs crates/harness/src/pool.rs crates/harness/src/profile.rs crates/harness/src/registry.rs crates/harness/src/resources.rs crates/harness/src/session.rs crates/harness/src/timeline.rs crates/harness/src/validation.rs

/root/repo/target/debug/deps/libats_harness-ae8ff87bc23848c4.rmeta: crates/harness/src/lib.rs crates/harness/src/correctness.rs crates/harness/src/experiment.rs crates/harness/src/generate.rs crates/harness/src/params.rs crates/harness/src/pool.rs crates/harness/src/profile.rs crates/harness/src/registry.rs crates/harness/src/resources.rs crates/harness/src/session.rs crates/harness/src/timeline.rs crates/harness/src/validation.rs

crates/harness/src/lib.rs:
crates/harness/src/correctness.rs:
crates/harness/src/experiment.rs:
crates/harness/src/generate.rs:
crates/harness/src/params.rs:
crates/harness/src/pool.rs:
crates/harness/src/profile.rs:
crates/harness/src/registry.rs:
crates/harness/src/resources.rs:
crates/harness/src/session.rs:
crates/harness/src/timeline.rs:
crates/harness/src/validation.rs:
