/root/repo/target/debug/deps/apps-529ed66d9c4d856b.d: crates/bench/benches/apps.rs

/root/repo/target/debug/deps/libapps-529ed66d9c4d856b.rmeta: crates/bench/benches/apps.rs

crates/bench/benches/apps.rs:
