/root/repo/target/debug/deps/ats_fuzz-ccd54790480c617a.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

/root/repo/target/debug/deps/libats_fuzz-ccd54790480c617a.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/generator.rs:
crates/fuzz/src/model.rs:
crates/fuzz/src/oracle.rs:
crates/fuzz/src/scenario.rs:
crates/fuzz/src/shrink.rs:
