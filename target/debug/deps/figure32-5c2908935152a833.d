/root/repo/target/debug/deps/figure32-5c2908935152a833.d: crates/bench/src/bin/figure32.rs

/root/repo/target/debug/deps/libfigure32-5c2908935152a833.rmeta: crates/bench/src/bin/figure32.rs

crates/bench/src/bin/figure32.rs:
