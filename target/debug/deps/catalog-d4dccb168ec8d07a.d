/root/repo/target/debug/deps/catalog-d4dccb168ec8d07a.d: crates/bench/src/bin/catalog.rs

/root/repo/target/debug/deps/libcatalog-d4dccb168ec8d07a.rmeta: crates/bench/src/bin/catalog.rs

crates/bench/src/bin/catalog.rs:
