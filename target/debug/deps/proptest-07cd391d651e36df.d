/root/repo/target/debug/deps/proptest-07cd391d651e36df.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-07cd391d651e36df.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-07cd391d651e36df.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
