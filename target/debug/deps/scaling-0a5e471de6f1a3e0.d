/root/repo/target/debug/deps/scaling-0a5e471de6f1a3e0.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-0a5e471de6f1a3e0.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
