/root/repo/target/debug/deps/ats-2bfd0945706c6439.d: src/lib.rs

/root/repo/target/debug/deps/libats-2bfd0945706c6439.rmeta: src/lib.rs

src/lib.rs:
