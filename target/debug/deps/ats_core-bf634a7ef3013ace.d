/root/repo/target/debug/deps/ats_core-bf634a7ef3013ace.d: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/catalog.rs crates/core/src/composite.rs crates/core/src/distribution.rs crates/core/src/error.rs crates/core/src/hybrid.rs crates/core/src/pattern.rs crates/core/src/properties/mod.rs crates/core/src/properties/hybrid.rs crates/core/src/properties/mpi_coll.rs crates/core/src/properties/mpi_p2p.rs crates/core/src/properties/negative.rs crates/core/src/properties/omp.rs crates/core/src/properties/sequential.rs crates/core/src/work.rs

/root/repo/target/debug/deps/ats_core-bf634a7ef3013ace: crates/core/src/lib.rs crates/core/src/buffer.rs crates/core/src/catalog.rs crates/core/src/composite.rs crates/core/src/distribution.rs crates/core/src/error.rs crates/core/src/hybrid.rs crates/core/src/pattern.rs crates/core/src/properties/mod.rs crates/core/src/properties/hybrid.rs crates/core/src/properties/mpi_coll.rs crates/core/src/properties/mpi_p2p.rs crates/core/src/properties/negative.rs crates/core/src/properties/omp.rs crates/core/src/properties/sequential.rs crates/core/src/work.rs

crates/core/src/lib.rs:
crates/core/src/buffer.rs:
crates/core/src/catalog.rs:
crates/core/src/composite.rs:
crates/core/src/distribution.rs:
crates/core/src/error.rs:
crates/core/src/hybrid.rs:
crates/core/src/pattern.rs:
crates/core/src/properties/mod.rs:
crates/core/src/properties/hybrid.rs:
crates/core/src/properties/mpi_coll.rs:
crates/core/src/properties/mpi_p2p.rs:
crates/core/src/properties/negative.rs:
crates/core/src/properties/omp.rs:
crates/core/src/properties/sequential.rs:
crates/core/src/work.rs:
