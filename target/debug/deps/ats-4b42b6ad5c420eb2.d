/root/repo/target/debug/deps/ats-4b42b6ad5c420eb2.d: src/lib.rs

/root/repo/target/debug/deps/libats-4b42b6ad5c420eb2.rlib: src/lib.rs

/root/repo/target/debug/deps/libats-4b42b6ad5c420eb2.rmeta: src/lib.rs

src/lib.rs:
