/root/repo/target/debug/deps/ats-b2a81739b4a2dc38.d: src/lib.rs

/root/repo/target/debug/deps/libats-b2a81739b4a2dc38.rmeta: src/lib.rs

src/lib.rs:
