/root/repo/target/debug/deps/ats-ced3bdc8366ce7f5.d: src/main.rs

/root/repo/target/debug/deps/libats-ced3bdc8366ce7f5.rmeta: src/main.rs

src/main.rs:
