/root/repo/target/debug/deps/trace_bench-e5fbc3165769d6d5.d: crates/bench/src/bin/trace_bench.rs

/root/repo/target/debug/deps/libtrace_bench-e5fbc3165769d6d5.rmeta: crates/bench/src/bin/trace_bench.rs

crates/bench/src/bin/trace_bench.rs:
