/root/repo/target/debug/deps/overhead-35264c87db086b53.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/liboverhead-35264c87db086b53.rmeta: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
