/root/repo/target/debug/deps/figure33-9c33389b0036164b.d: crates/bench/src/bin/figure33.rs

/root/repo/target/debug/deps/libfigure33-9c33389b0036164b.rmeta: crates/bench/src/bin/figure33.rs

crates/bench/src/bin/figure33.rs:
