/root/repo/target/debug/deps/ats-05c740b651f87790.d: src/main.rs

/root/repo/target/debug/deps/libats-05c740b651f87790.rmeta: src/main.rs

src/main.rs:
