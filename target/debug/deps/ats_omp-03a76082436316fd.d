/root/repo/target/debug/deps/ats_omp-03a76082436316fd.d: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

/root/repo/target/debug/deps/libats_omp-03a76082436316fd.rmeta: crates/ompsim/src/lib.rs crates/ompsim/src/exchange.rs crates/ompsim/src/master.rs crates/ompsim/src/team.rs crates/ompsim/src/thread.rs

crates/ompsim/src/lib.rs:
crates/ompsim/src/exchange.rs:
crates/ompsim/src/master.rs:
crates/ompsim/src/team.rs:
crates/ompsim/src/thread.rs:
