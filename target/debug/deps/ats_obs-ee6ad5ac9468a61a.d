/root/repo/target/debug/deps/ats_obs-ee6ad5ac9468a61a.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/libats_obs-ee6ad5ac9468a61a.rmeta: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profiler.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
