/root/repo/target/debug/deps/figure33-5c4df7eeaee5d296.d: crates/bench/src/bin/figure33.rs

/root/repo/target/debug/deps/libfigure33-5c4df7eeaee5d296.rmeta: crates/bench/src/bin/figure33.rs

crates/bench/src/bin/figure33.rs:
