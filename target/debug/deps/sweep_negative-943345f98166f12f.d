/root/repo/target/debug/deps/sweep_negative-943345f98166f12f.d: crates/bench/src/bin/sweep_negative.rs

/root/repo/target/debug/deps/libsweep_negative-943345f98166f12f.rmeta: crates/bench/src/bin/sweep_negative.rs

crates/bench/src/bin/sweep_negative.rs:
