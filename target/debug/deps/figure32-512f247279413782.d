/root/repo/target/debug/deps/figure32-512f247279413782.d: crates/bench/src/bin/figure32.rs

/root/repo/target/debug/deps/libfigure32-512f247279413782.rmeta: crates/bench/src/bin/figure32.rs

crates/bench/src/bin/figure32.rs:
