/root/repo/target/debug/deps/figure34-dfe28b13e3b80370.d: crates/bench/src/bin/figure34.rs

/root/repo/target/debug/deps/libfigure34-dfe28b13e3b80370.rmeta: crates/bench/src/bin/figure34.rs

crates/bench/src/bin/figure34.rs:
