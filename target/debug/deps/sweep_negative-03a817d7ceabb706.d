/root/repo/target/debug/deps/sweep_negative-03a817d7ceabb706.d: crates/bench/src/bin/sweep_negative.rs

/root/repo/target/debug/deps/libsweep_negative-03a817d7ceabb706.rmeta: crates/bench/src/bin/sweep_negative.rs

crates/bench/src/bin/sweep_negative.rs:
