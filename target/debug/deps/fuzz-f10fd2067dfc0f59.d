/root/repo/target/debug/deps/fuzz-f10fd2067dfc0f59.d: crates/bench/src/bin/fuzz.rs

/root/repo/target/debug/deps/libfuzz-f10fd2067dfc0f59.rmeta: crates/bench/src/bin/fuzz.rs

crates/bench/src/bin/fuzz.rs:
