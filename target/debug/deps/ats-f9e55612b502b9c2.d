/root/repo/target/debug/deps/ats-f9e55612b502b9c2.d: src/main.rs

/root/repo/target/debug/deps/libats-f9e55612b502b9c2.rmeta: src/main.rs

src/main.rs:
