/root/repo/target/debug/deps/ats_bench-e756a5db2813839f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/ats_bench-e756a5db2813839f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
