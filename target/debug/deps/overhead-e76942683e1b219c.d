/root/repo/target/debug/deps/overhead-e76942683e1b219c.d: crates/bench/src/bin/overhead.rs

/root/repo/target/debug/deps/liboverhead-e76942683e1b219c.rmeta: crates/bench/src/bin/overhead.rs

crates/bench/src/bin/overhead.rs:
