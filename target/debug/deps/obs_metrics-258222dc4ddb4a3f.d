/root/repo/target/debug/deps/obs_metrics-258222dc4ddb4a3f.d: tests/obs_metrics.rs

/root/repo/target/debug/deps/obs_metrics-258222dc4ddb4a3f: tests/obs_metrics.rs

tests/obs_metrics.rs:
