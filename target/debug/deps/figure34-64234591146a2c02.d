/root/repo/target/debug/deps/figure34-64234591146a2c02.d: crates/bench/src/bin/figure34.rs

/root/repo/target/debug/deps/libfigure34-64234591146a2c02.rmeta: crates/bench/src/bin/figure34.rs

crates/bench/src/bin/figure34.rs:
