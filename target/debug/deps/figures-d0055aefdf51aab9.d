/root/repo/target/debug/deps/figures-d0055aefdf51aab9.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/libfigures-d0055aefdf51aab9.rmeta: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
