/root/repo/target/debug/deps/figure35-22018fb8c4d3ca04.d: crates/bench/src/bin/figure35.rs

/root/repo/target/debug/deps/libfigure35-22018fb8c4d3ca04.rmeta: crates/bench/src/bin/figure35.rs

crates/bench/src/bin/figure35.rs:
