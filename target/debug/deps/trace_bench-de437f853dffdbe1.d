/root/repo/target/debug/deps/trace_bench-de437f853dffdbe1.d: crates/bench/src/bin/trace_bench.rs

/root/repo/target/debug/deps/libtrace_bench-de437f853dffdbe1.rmeta: crates/bench/src/bin/trace_bench.rs

crates/bench/src/bin/trace_bench.rs:
