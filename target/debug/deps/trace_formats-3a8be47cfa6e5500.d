/root/repo/target/debug/deps/trace_formats-3a8be47cfa6e5500.d: tests/trace_formats.rs

/root/repo/target/debug/deps/trace_formats-3a8be47cfa6e5500: tests/trace_formats.rs

tests/trace_formats.rs:
