/root/repo/target/debug/deps/ats-485337c07b280324.d: src/lib.rs

/root/repo/target/debug/deps/libats-485337c07b280324.rmeta: src/lib.rs

src/lib.rs:
