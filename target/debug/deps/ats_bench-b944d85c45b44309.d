/root/repo/target/debug/deps/ats_bench-b944d85c45b44309.d: crates/bench/src/lib.rs crates/bench/src/cli.rs

/root/repo/target/debug/deps/libats_bench-b944d85c45b44309.rmeta: crates/bench/src/lib.rs crates/bench/src/cli.rs

crates/bench/src/lib.rs:
crates/bench/src/cli.rs:
