/root/repo/target/debug/deps/trace_codec-7ffb69e20c0c96fc.d: crates/bench/benches/trace_codec.rs

/root/repo/target/debug/deps/libtrace_codec-7ffb69e20c0c96fc.rmeta: crates/bench/benches/trace_codec.rs

crates/bench/benches/trace_codec.rs:
