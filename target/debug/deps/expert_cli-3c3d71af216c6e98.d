/root/repo/target/debug/deps/expert_cli-3c3d71af216c6e98.d: crates/bench/src/bin/expert_cli.rs

/root/repo/target/debug/deps/libexpert_cli-3c3d71af216c6e98.rmeta: crates/bench/src/bin/expert_cli.rs

crates/bench/src/bin/expert_cli.rs:
