/root/repo/target/debug/deps/ats_fuzz-a49f21c2f8f6f3b1.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

/root/repo/target/debug/deps/libats_fuzz-a49f21c2f8f6f3b1.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/corpus.rs crates/fuzz/src/generator.rs crates/fuzz/src/model.rs crates/fuzz/src/oracle.rs crates/fuzz/src/scenario.rs crates/fuzz/src/shrink.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/corpus.rs:
crates/fuzz/src/generator.rs:
crates/fuzz/src/model.rs:
crates/fuzz/src/oracle.rs:
crates/fuzz/src/scenario.rs:
crates/fuzz/src/shrink.rs:
