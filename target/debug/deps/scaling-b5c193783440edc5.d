/root/repo/target/debug/deps/scaling-b5c193783440edc5.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-b5c193783440edc5.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
