/root/repo/target/debug/deps/ablation-1022d9a945209c77.d: crates/bench/src/bin/ablation.rs

/root/repo/target/debug/deps/libablation-1022d9a945209c77.rmeta: crates/bench/src/bin/ablation.rs

crates/bench/src/bin/ablation.rs:
