/root/repo/target/debug/deps/ats_runtime-c982d5904463635d.d: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

/root/repo/target/debug/deps/libats_runtime-c982d5904463635d.rlib: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

/root/repo/target/debug/deps/libats_runtime-c982d5904463635d.rmeta: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

crates/runtime/src/lib.rs:
crates/runtime/src/model.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/time.rs:
crates/runtime/src/work.rs:
