/root/repo/target/debug/deps/ats_obs-c5406d6a9bb22743.d: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

/root/repo/target/debug/deps/ats_obs-c5406d6a9bb22743: crates/obs/src/lib.rs crates/obs/src/export.rs crates/obs/src/manifest.rs crates/obs/src/metrics.rs crates/obs/src/profiler.rs crates/obs/src/registry.rs crates/obs/src/span.rs

crates/obs/src/lib.rs:
crates/obs/src/export.rs:
crates/obs/src/manifest.rs:
crates/obs/src/metrics.rs:
crates/obs/src/profiler.rs:
crates/obs/src/registry.rs:
crates/obs/src/span.rs:
