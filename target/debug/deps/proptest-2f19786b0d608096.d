/root/repo/target/debug/deps/proptest-2f19786b0d608096.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-2f19786b0d608096.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
