/root/repo/target/debug/deps/scaling-195b90e44aee2b65.d: crates/bench/src/bin/scaling.rs

/root/repo/target/debug/deps/libscaling-195b90e44aee2b65.rmeta: crates/bench/src/bin/scaling.rs

crates/bench/src/bin/scaling.rs:
