/root/repo/target/debug/deps/figure35-81ac3e282195d711.d: crates/bench/src/bin/figure35.rs

/root/repo/target/debug/deps/libfigure35-81ac3e282195d711.rmeta: crates/bench/src/bin/figure35.rs

crates/bench/src/bin/figure35.rs:
