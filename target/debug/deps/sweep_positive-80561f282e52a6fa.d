/root/repo/target/debug/deps/sweep_positive-80561f282e52a6fa.d: crates/bench/src/bin/sweep_positive.rs

/root/repo/target/debug/deps/libsweep_positive-80561f282e52a6fa.rmeta: crates/bench/src/bin/sweep_positive.rs

crates/bench/src/bin/sweep_positive.rs:
