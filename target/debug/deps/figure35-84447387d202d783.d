/root/repo/target/debug/deps/figure35-84447387d202d783.d: crates/bench/src/bin/figure35.rs

/root/repo/target/debug/deps/libfigure35-84447387d202d783.rmeta: crates/bench/src/bin/figure35.rs

crates/bench/src/bin/figure35.rs:
