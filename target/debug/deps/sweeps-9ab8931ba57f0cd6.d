/root/repo/target/debug/deps/sweeps-9ab8931ba57f0cd6.d: crates/bench/benches/sweeps.rs

/root/repo/target/debug/deps/libsweeps-9ab8931ba57f0cd6.rmeta: crates/bench/benches/sweeps.rs

crates/bench/benches/sweeps.rs:
