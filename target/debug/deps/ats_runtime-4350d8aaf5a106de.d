/root/repo/target/debug/deps/ats_runtime-4350d8aaf5a106de.d: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

/root/repo/target/debug/deps/libats_runtime-4350d8aaf5a106de.rmeta: crates/runtime/src/lib.rs crates/runtime/src/model.rs crates/runtime/src/rng.rs crates/runtime/src/time.rs crates/runtime/src/work.rs

crates/runtime/src/lib.rs:
crates/runtime/src/model.rs:
crates/runtime/src/rng.rs:
crates/runtime/src/time.rs:
crates/runtime/src/work.rs:
