#!/usr/bin/env bash
# Offline test driver: compiles every crate's unit tests and the facade
# integration tests against the rlibs produced by build.sh, then runs
# them single-threaded. Known offline failures (the serde_json stub
# returns empty/err for everything) are expected; compare against a
# pristine checkout before blaming a change.
set -u
REPO=/root/repo
cd "$REPO"
DEPS=$REPO/target/debug/deps
OUT=$REPO/target/manual
dep() { ls -t "$DEPS"/lib$1-*.rlib 2>/dev/null | head -1; }

R="rustc --edition 2021 -L dependency=$DEPS -L dependency=$OUT --test"
X_runtime="--extern ats_runtime=$OUT/libats_runtime.rlib"
X_obs="--extern ats_obs=$OUT/libats_obs.rlib"
X_trace="--extern ats_trace=$OUT/libats_trace.rlib"
X_mpi="--extern ats_mpi=$OUT/libats_mpi.rlib"
X_omp="--extern ats_omp=$OUT/libats_omp.rlib"
X_core="--extern ats_core=$OUT/libats_core.rlib"
X_analyzer="--extern ats_analyzer=$OUT/libats_analyzer.rlib"
X_store="--extern ats_store=$OUT/libats_store.rlib"
X_harness="--extern ats_harness=$OUT/libats_harness.rlib"
X_fuzz="--extern ats_fuzz=$OUT/libats_fuzz.rlib"
X_serve="--extern ats_serve=$OUT/libats_serve.rlib"
X_apps="--extern ats_apps=$OUT/libats_apps.rlib"
X_ats="--extern ats=$OUT/libats.rlib"
X_serde="--extern serde=$(dep serde)"
X_sj="--extern serde_json=$(dep serde_json)"
X_pl="--extern parking_lot=$(dep parking_lot)"
X_cb="--extern crossbeam=$(dep crossbeam)"
X_bytes="--extern bytes=$(dep bytes)"
X_pt="--extern proptest=$(dep proptest)"
X_testutil="--extern ats_testutil=$OUT/libats_testutil.rlib"
X_all="$X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_store $X_harness $X_fuzz $X_serve $X_apps $X_testutil $X_serde $X_sj $X_pl $X_cb $X_bytes"

PASS=0; FAIL=0; FAILED=""
run() {
  local out
  out=$("$OUT/$1" --test-threads=1 2>&1 | grep "^test result:" | tail -1)
  echo "$1: ${out:-NO RESULT}"
  case "$out" in
    *" 0 failed"*) PASS=$((PASS+1));;
    *) FAIL=$((FAIL+1)); FAILED="$FAILED $1";;
  esac
}
build() { # name srcfile externs...
  local name=$1 src=$2; shift 2
  $R --crate-name $name "$src" -C metadata=$name -o "$OUT/$name" "$@" 2>/dev/null \
    || { echo "$name: COMPILE FAILED"; FAIL=$((FAIL+1)); FAILED="$FAILED $name"; return 1; }
  run $name
}

build testutil_t crates/testutil/src/lib.rs
build runtime_t crates/runtime/src/lib.rs $X_serde $X_sj $X_pl
build obs_t crates/obs/src/lib.rs $X_serde $X_sj $X_pl
build trace_t crates/trace/src/lib.rs $X_runtime $X_obs $X_serde $X_sj $X_pl $X_bytes
build mpi_t crates/mpisim/src/lib.rs $X_runtime $X_obs $X_trace $X_pl $X_cb $X_bytes
build omp_t crates/ompsim/src/lib.rs $X_runtime $X_trace $X_pl $X_cb
build core_t crates/core/src/lib.rs $X_runtime $X_trace $X_mpi $X_omp $X_serde $X_sj $X_bytes
build analyzer_t crates/analyzer/src/lib.rs $X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_testutil $X_serde $X_sj
build store_t crates/store/src/lib.rs $X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_serde $X_sj
build harness_t crates/harness/src/lib.rs $X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_store $X_testutil $X_serde $X_sj $X_pl $X_cb
build fuzz_t crates/fuzz/src/lib.rs $X_runtime $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_harness $X_store $X_testutil $X_serde $X_sj
build serve_t crates/serve/src/lib.rs $X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_harness $X_store $X_fuzz $X_testutil $X_serde $X_sj
build apps_t crates/apps/src/lib.rs $X_runtime $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_serde
build bench_t crates/bench/src/lib.rs $X_runtime $X_obs $X_trace $X_mpi $X_omp $X_core $X_analyzer $X_harness $X_store $X_fuzz $X_serve $X_apps $X_serde $X_sj

for it in determinism end_to_end fuzz_oracle obs_metrics parallel_engine \
          scale_stress severity_accuracy trace_formats store_incremental \
          stream_analysis serve_api; do
  build ${it}_t tests/$it.rs $X_ats $X_all
done
# tests/proptests.rs needs the real proptest macros; the offline stub
# rlib has no macro export, so the suite cannot compile here. Covered
# by `cargo test` in CI.
echo "proptests_t: SKIPPED (proptest stub rlib has no macros)"

echo
echo "suites passed: $PASS, suites with failures: $FAIL"
[ -n "$FAILED" ] && echo "failing suites:$FAILED"
exit 0
