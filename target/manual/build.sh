#!/bin/bash
# Manual offline build driver: compiles the workspace with rustc against the
# prebuilt stub-dependency rlibs in target/debug/deps (registry sources are
# absent in this container). Mirrors `cargo build && cargo test -q`.
set -u
REPO=/root/repo
DEPS=$REPO/target/debug/deps
OUT=$REPO/target/manual
mkdir -p "$OUT"

# newest rlib for an external dep name
dep() { ls -t "$DEPS"/lib$1-*.rlib 2>/dev/null | head -1; }
EXT_serde=$(dep serde)
EXT_serde_json=$(dep serde_json)
EXT_parking_lot=$(dep parking_lot)
EXT_crossbeam=$(dep crossbeam)
EXT_bytes=$(dep bytes)
EXT_proptest=$(dep proptest)
EXT_criterion=$(dep criterion)

RUSTC=${RUSTC:-rustc}
MODE=${MODE:-debug}   # debug | release
FLAGS="--edition 2021 -L dependency=$DEPS -L dependency=$OUT"
if [ "$MODE" = release ]; then FLAGS="$FLAGS -O"; fi
EXTRA=${EXTRA:-}

# build_lib <crate_name> <path> <externs...>
build_lib() {
  local name=$1 path=$2; shift 2
  local ex=""
  for e in "$@"; do ex="$ex --extern $e"; done
  $RUSTC $FLAGS $EXTRA --crate-type rlib --crate-name "$name" "$path" \
    -C metadata="$name" -o "$OUT/lib$name.rlib" $ex || return 1
}

# unit_test <crate_name> <path> <externs...>  (compile only; run separately)
unit_test() {
  local name=$1 path=$2; shift 2
  local ex=""
  for e in "$@"; do ex="$ex --extern $e"; done
  $RUSTC $FLAGS $EXTRA --test --crate-name "${name}_unit" "$path" \
    -C metadata="${name}_unit" -o "$OUT/${name}_unit" $ex || return 1
}

A() { echo "ats_runtime=$OUT/libats_runtime.rlib"; }

set -e
build_lib ats_testutil crates/testutil/src/lib.rs
build_lib ats_runtime crates/runtime/src/lib.rs "serde=$EXT_serde" "parking_lot=$EXT_parking_lot"
build_lib ats_obs crates/obs/src/lib.rs "serde=$EXT_serde" "serde_json=$EXT_serde_json" "parking_lot=$EXT_parking_lot"
build_lib ats_trace crates/trace/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json" "parking_lot=$EXT_parking_lot" "bytes=$EXT_bytes"
build_lib ats_mpi crates/mpisim/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "parking_lot=$EXT_parking_lot" "crossbeam=$EXT_crossbeam" "bytes=$EXT_bytes"
build_lib ats_omp crates/ompsim/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_trace=$OUT/libats_trace.rlib" "parking_lot=$EXT_parking_lot" "crossbeam=$EXT_crossbeam"
build_lib ats_core crates/core/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json" "bytes=$EXT_bytes"
build_lib ats_analyzer crates/analyzer/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json"
build_lib ats_store crates/store/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json"
build_lib ats_harness crates/harness/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "ats_store=$OUT/libats_store.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json" "parking_lot=$EXT_parking_lot" "crossbeam=$EXT_crossbeam"
build_lib ats_fuzz crates/fuzz/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "ats_harness=$OUT/libats_harness.rlib" "ats_store=$OUT/libats_store.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json"
build_lib ats_serve crates/serve/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "ats_store=$OUT/libats_store.rlib" "ats_harness=$OUT/libats_harness.rlib" "ats_fuzz=$OUT/libats_fuzz.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json"
build_lib ats_apps crates/apps/src/lib.rs "ats_runtime=$OUT/libats_runtime.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "serde=$EXT_serde"
build_lib ats src/lib.rs "ats_serve=$OUT/libats_serve.rlib" "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "ats_store=$OUT/libats_store.rlib" "ats_harness=$OUT/libats_harness.rlib" "ats_fuzz=$OUT/libats_fuzz.rlib" "ats_apps=$OUT/libats_apps.rlib"
build_lib ats_bench crates/bench/src/lib.rs "ats_serve=$OUT/libats_serve.rlib" "ats_runtime=$OUT/libats_runtime.rlib" "ats_obs=$OUT/libats_obs.rlib" "ats_trace=$OUT/libats_trace.rlib" "ats_mpi=$OUT/libats_mpi.rlib" "ats_omp=$OUT/libats_omp.rlib" "ats_core=$OUT/libats_core.rlib" "ats_analyzer=$OUT/libats_analyzer.rlib" "ats_harness=$OUT/libats_harness.rlib" "ats_store=$OUT/libats_store.rlib" "ats_fuzz=$OUT/libats_fuzz.rlib" "ats_apps=$OUT/libats_apps.rlib" "serde=$EXT_serde" "serde_json=$EXT_serde_json" "criterion=$EXT_criterion"
echo "ALL LIBS OK ($MODE)"
