//! The `ats` command-line interface: one entry point for the whole suite.
//!
//! ```text
//! ats catalog                         list the property-function catalog
//! ats run PROPERTY [k=v ...]         run a single-property program + analysis
//! ats timeline PROPERTY [k=v ...]    same, but print the Vampir-style timeline
//! ats score                           suite-wide correctness scorecard
//! ats validate                        semantics-preservation suite
//! ats apps                            the application collection index
//! ats resources                       the paper's ch. 2 suite collection
//! ats generate DIR                    emit generated single-property programs
//! ats analyze FILE [--json]           analyze a serialized trace (binary or JSONL)
//! ats profile PROPERTY [k=v ...]     flat time profile of a property run
//! ats asl SET.asl PROPERTY [k=v ...] evaluate a declarative property set
//! ats phases PROPERTY [k=v ...]      windowed severity series + trend
//! ```

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::harness::{correctness, generate, run_single, validation, ParamValues, RunOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => catalog(),
        Some("run") => run_cmd(&args[1..], false),
        Some("timeline") => run_cmd(&args[1..], true),
        Some("score") => score(),
        Some("validate") => validate(),
        Some("apps") => apps(),
        Some("resources") => print!("{}", ats::harness::resources::render()),
        Some("generate") => generate_cmd(&args[1..]),
        Some("analyze") => analyze_cmd(&args[1..]),
        Some("profile") => profile_cmd(&args[1..]),
        Some("asl") => asl_cmd(&args[1..]),
        Some("phases") => phases_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: ats <catalog|run|timeline|profile|phases|score|validate|apps|resources|generate|analyze|asl> [args]\n\
                 see the README for details"
            );
            std::process::exit(2);
        }
    }
}

fn catalog() {
    for spec in ats::core::CATALOG {
        println!(
            "{:<40} {:<22} {}",
            spec.name,
            spec.expected_property.unwrap_or("(negative)"),
            spec.description
        );
    }
}

fn run_cmd(args: &[String], timeline: bool) {
    let Some(name) = args.first() else {
        eprintln!("usage: ats run PROPERTY [key=value ...]");
        std::process::exit(2);
    };
    let Some(spec) = ats::core::catalog::find(name) else {
        eprintln!("unknown property `{name}`; try `ats catalog`");
        std::process::exit(2);
    };
    let kv: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    let params = match ParamValues::from_args(spec, &kv) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}\n");
            eprint!("{}", generate::usage(spec));
            std::process::exit(2);
        }
    };
    let trace = run_single(name, &params, &RunOpts::default()).expect("catalog name");
    if timeline {
        print!("{}", ats::harness::timeline::render_text(&trace, 100));
        println!();
    }
    let report = analyze(&trace, &AnalyzerConfig::default());
    println!("{}", report.render(&trace));
}

fn score() {
    let summary =
        correctness::score_catalog(&RunOpts::default().procs(8), &AnalyzerConfig::default())
            .expect("catalog runnable");
    print!("{}", summary.render());
    std::process::exit(if summary.all_correct() { 0 } else { 1 });
}

fn validate() {
    let mut ok = true;
    for r in validation::run_validation(4) {
        ok &= r.passed();
        println!(
            "{:<18} [{}]",
            r.name,
            if r.passed() { "ok" } else { "FAIL" }
        );
    }
    std::process::exit(if ok { 0 } else { 1 });
}

fn apps() {
    for spec in ats::apps::collection() {
        println!("{:<16} {}", spec.name, spec.description);
        println!("{:<16}   structure: {}", "", spec.structure);
        println!(
            "{:<16}   pathological mode shows: {}",
            "",
            spec.imbalanced_properties.join(", ")
        );
    }
}

fn profile_cmd(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("usage: ats profile PROPERTY [key=value ...]");
        std::process::exit(2);
    };
    let Some(spec) = ats::core::catalog::find(name) else {
        eprintln!("unknown property `{name}`; try `ats catalog`");
        std::process::exit(2);
    };
    let kv: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let trace = run_single(name, &params, &RunOpts::default()).expect("catalog name");
    print!("{}", ats::harness::profile::render_profile(&trace));
}

fn analyze_cmd(args: &[String]) {
    let Some(path) = args.first() else {
        eprintln!("usage: ats analyze FILE [--json]   (ATSB binary or JSONL, auto-detected)");
        std::process::exit(2);
    };
    let trace = ats::trace::io::read_path(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(2);
    });
    let report = analyze(&trace, &AnalyzerConfig::default());
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        println!("{}", report.render(&trace));
    }
}

fn phases_cmd(args: &[String]) {
    let Some(name) = args.first() else {
        eprintln!("usage: ats phases PROPERTY [key=value ...]");
        std::process::exit(2);
    };
    let Some(spec) = ats::core::catalog::find(name) else {
        eprintln!("unknown property `{name}`; try `ats catalog`");
        std::process::exit(2);
    };
    let kv: Vec<&str> = args[1..].iter().map(String::as_str).collect();
    let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let trace = run_single(name, &params, &RunOpts::default()).expect("catalog name");
    let report = ats::analyzer::analyze_phases(&trace, 8);
    println!(
        "windowed analysis: {} windows of {}",
        report.windows, report.window_len
    );
    for s in &report.series {
        let bars: String = s
            .severities
            .iter()
            .map(|v| match (v * 10.0) as usize {
                0 => '.',
                1..=2 => ':',
                3..=5 => '|',
                _ => '#',
            })
            .collect();
        println!(
            "  {:<24} [{bars}] trend {:+.2}  severities {:?}",
            s.property,
            s.trend,
            s.severities
                .iter()
                .map(|v| format!("{v:.2}"))
                .collect::<Vec<_>>()
        );
    }
}

fn asl_cmd(args: &[String]) {
    let (Some(set_path), Some(name)) = (args.first(), args.get(1)) else {
        eprintln!("usage: ats asl SET.asl PROPERTY [key=value ...]");
        std::process::exit(2);
    };
    let src = std::fs::read_to_string(set_path).unwrap_or_else(|e| {
        eprintln!("cannot read {set_path}: {e}");
        std::process::exit(2);
    });
    let set = ats::analyzer::asl::parse(&src).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let Some(spec) = ats::core::catalog::find(name) else {
        eprintln!("unknown property `{name}`; try `ats catalog`");
        std::process::exit(2);
    };
    let kv: Vec<&str> = args[2..].iter().map(String::as_str).collect();
    let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let trace = run_single(name, &params, &RunOpts::default()).expect("catalog name");
    let ex = ats::analyzer::extract::extract(&trace);
    let findings = ats::analyzer::asl::evaluate(&set, &ex, &trace).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let totals = ats::analyzer::asl::totals(&findings);
    println!(
        "{} findings from {} declared properties:",
        findings.len(),
        set.properties.len()
    );
    let mut names: Vec<_> = totals.keys().collect();
    names.sort();
    for n in names {
        println!("  {:<28} total wait {}", n, totals[n]);
    }
}

fn generate_cmd(args: &[String]) {
    let Some(dir) = args.first() else {
        eprintln!("usage: ats generate DIR");
        std::process::exit(2);
    };
    std::fs::create_dir_all(dir).expect("create dir");
    for (name, src) in generate::generate_all() {
        std::fs::write(format!("{dir}/{name}"), src).expect("write");
    }
    println!(
        "generated {} single-property programs in {dir}",
        ats::core::CATALOG.len()
    );
}
