//! # ATS-RS — facade crate
//!
//! Re-exports the full public API of the APART Test Suite reproduction so
//! that examples and downstream users can depend on a single crate.
//!
//! See the workspace README for the architecture overview and DESIGN.md for
//! the paper-to-module mapping.

pub use ats_analyzer as analyzer;
pub use ats_apps as apps;
pub use ats_core as core;
pub use ats_fuzz as fuzz;
pub use ats_harness as harness;
pub use ats_mpi as mpi;
pub use ats_obs as obs;
pub use ats_omp as omp;
pub use ats_runtime as runtime;
pub use ats_serve as serve;
pub use ats_store as store;
pub use ats_trace as trace;
