//! The parallel experiment engine's contract: any worker count yields
//! the same rows in the same order, and the oversubscription guard keeps
//! `jobs × nprocs` within the thread budget — so sweeps can saturate the
//! host without changing a single result.

use ats::harness::experiment::{Experiment, Sweep};
use ats::harness::{pool, ExperimentRow, RunOpts};

/// A severity × nprocs sweep per ISSUE 1: `late_sender` sweeps its
/// severity knob, `imbalance_at_mpi_barrier` its repetition count, both
/// across a process grid.
fn epos_sweep(property: &str, jobs: usize) -> Experiment {
    let e = Experiment::new(property).procs_grid([2, 4, 8]);
    let e = match property {
        "late_sender" => e.sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02, 0.04])),
        "imbalance_at_mpi_barrier" => e.sweep(Sweep::counts("r", [1, 2, 4])),
        other => panic!("no sweep shape for {other}"),
    };
    e.opts(RunOpts::default().jobs(jobs))
}

fn rendered(rows: &[ExperimentRow]) -> String {
    serde_json::to_string_pretty(rows).expect("rows serialize")
}

#[test]
fn jobs_one_and_jobs_eight_rows_are_identical() {
    for property in ["late_sender", "imbalance_at_mpi_barrier"] {
        let (serial_rows, serial_stats) = epos_sweep(property, 1).run_with_stats().unwrap();
        let (parallel_rows, parallel_stats) = epos_sweep(property, 8).run_with_stats().unwrap();
        assert_eq!(serial_stats.jobs, 1);
        assert!(parallel_stats.jobs > 1, "jobs=8 must run a real pool");
        let knob_values = if property == "late_sender" { 4 } else { 3 };
        assert_eq!(
            serial_rows.len(),
            3 * knob_values,
            "{property}: 3 procs × {knob_values} knob values"
        );
        // Same order, same severities — byte-identical serialized rows.
        assert_eq!(
            rendered(&serial_rows),
            rendered(&parallel_rows),
            "{property}: parallel rows diverge from serial rows"
        );
        // The sweep really sweeps: severities are positive everywhere and
        // the knob ordering survives within each process count.
        for r in &serial_rows {
            assert!(r.detected_severity > 0.0, "{property}: {r:?}");
            assert!(r.localized, "{property}: {r:?}");
        }
    }
}

#[test]
fn guard_keeps_rank_threads_within_budget() {
    use ats::mpi::SimBackend;
    // Thread backend: a P-rank configuration parks P OS threads, so the
    // guard divides the budget by the widest configuration.
    let (_, stats) = epos_sweep("late_sender", 64)
        .opts(
            RunOpts::default()
                .backend(SimBackend::Thread)
                .jobs(64)
                .thread_budget(24),
        )
        .run_with_stats()
        .unwrap();
    assert_eq!(stats.thread_budget, 24);
    assert_eq!(stats.max_nprocs, 8);
    assert_eq!(stats.backend, "thread");
    assert_eq!(stats.jobs, 3, "64 requested, 24/8 = 3 granted");
    assert!(stats.jobs * stats.max_nprocs <= stats.thread_budget);
}

#[test]
fn event_backend_frees_the_guard_from_rank_width() {
    // Discrete-event backend (the default): every configuration runs its
    // ranks as coroutines on the worker's own thread, so the same tight
    // budget grants one worker per configuration — bounded by the combo
    // count, not by nprocs.
    let (_, stats) = epos_sweep("late_sender", 64)
        .opts(RunOpts::default().jobs(64).thread_budget(24))
        .run_with_stats()
        .unwrap();
    assert_eq!(stats.backend, "event");
    assert_eq!(stats.max_nprocs, 8);
    assert_eq!(
        stats.jobs, 12,
        "one slot per config: min(64, 24, 12 combos)"
    );
}

#[test]
fn auto_jobs_resolves_to_host_parallelism() {
    let (_, stats) = epos_sweep("imbalance_at_mpi_barrier", 0)
        .run_with_stats()
        .unwrap();
    assert_eq!(stats.jobs_requested, pool::auto_jobs());
    assert!(stats.jobs >= 1);
    let per_config = stats.config_wall_secs.len();
    assert_eq!(per_config, stats.configs);
    assert!(stats.config_wall_secs.iter().all(|s| *s >= 0.0));
}
