//! Cross-crate integration tests: generate → trace → serialize → analyze
//! round trips, the paper's figure-level assertions, and suite-wide
//! correctness.

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::{composite, CompositeParams};
use ats::harness::{correctness, run_single, ParamValues, RunOpts};
use ats::mpi::SimConfig;
use ats::trace::{check_wellformed, LocationId};

fn small_params(spec: &ats::core::PropertySpec) -> ParamValues {
    let mut p = ParamValues::defaults(spec);
    p.set("r", ats::harness::ParamValue::Count(1));
    p
}

#[test]
fn every_catalog_program_roundtrips_through_serialization() {
    let opts = RunOpts::default().procs(4);
    for spec in ats::core::CATALOG {
        let trace = run_single(spec.name, &small_params(spec), &opts).unwrap();
        // Serialize and re-parse.
        let mut buf = Vec::new();
        ats::trace::io::write_jsonl(&trace, &mut buf).unwrap();
        let back = ats::trace::io::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.num_events(), trace.num_events(), "{}", spec.name);
        assert_eq!(back.comms, trace.comms, "{}", spec.name);
        // The analysis of the deserialized trace matches the original.
        let r1 = analyze(&trace, &AnalyzerConfig::default());
        let r2 = analyze(&back, &AnalyzerConfig::default());
        if let Some(expected) = spec.expected_property {
            assert_eq!(
                r1.severity_of(expected),
                r2.severity_of(expected),
                "{}: severity changed across serialization",
                spec.name
            );
        }
    }
}

#[test]
fn figure35_assertions_hold_at_paper_scale() {
    // 16 ranks as in the paper's screenshots.
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(16), move |p| {
        let world = p.comm_world();
        composite::two_communicator_composite(p, &params, &world);
    });
    assert!(check_wellformed(&trace).is_empty());
    let report = analyze(&trace, &AnalyzerConfig::default());

    // EXPERT's three panes, as described for Fig. 3.5:
    // (1) property pane: LateBroadcast found.
    let hits = report.findings_for("LateBroadcast");
    assert!(!hits.is_empty());
    // (2) call pane: located at MPI_Bcast inside late_broadcast().
    assert!(hits
        .iter()
        .any(|f| f.call_path.contains("late_broadcast") && f.call_path.ends_with("MPI_Bcast")));
    // (3) location pane: the upper communicator minus its local root
    //     (global rank 9), i.e. ranks 8 and 10..15.
    let blamed: Vec<u32> = report
        .locations_for("LateBroadcast")
        .iter()
        .map(|l| l.rank)
        .collect();
    let expected: Vec<u32> = (8..16).filter(|&r| r != 9).collect();
    assert_eq!(blamed, expected);

    // Both property sets were active at the same time, in parallel.
    assert!(report.severity_of("LateSender") > 0.0);
    assert!(report.severity_of("LateReceiver") > 0.0);
    assert!(report.severity_of("EarlyReduce") > 0.0);
    assert!(report.severity_of("WaitAtBarrier") > 0.0);
}

#[test]
fn whole_suite_correctness_scorecard_passes() {
    let summary =
        correctness::score_catalog(&RunOpts::default().procs(4), &AnalyzerConfig::default())
            .unwrap();
    assert!(summary.all_correct(), "{}", summary.render());
}

#[test]
fn instrumentation_preserves_semantics_and_negative_cases_survive_realistic_models() {
    // Validation suite (semantics preservation, paper ch. 2).
    for r in ats::harness::validation::run_validation(4) {
        assert!(r.passed(), "{:?}", r);
    }
    // Negative cases must stay clean even with a *non-zero* machine model,
    // where transport costs exist but are below any sane threshold.
    let opts = RunOpts {
        model: ats::runtime::MachineModel::default(),
        ..RunOpts::default().procs(4)
    };
    for spec in ats::core::CATALOG {
        if spec.expected_property.is_some() {
            continue;
        }
        let trace = run_single(spec.name, &ParamValues::defaults(spec), &opts).unwrap();
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "{} produced findings under the realistic model: {:?}",
            spec.name,
            report.findings
        );
    }
}

#[test]
fn composite_ranking_orders_properties_by_programmed_severity() {
    // Program two properties with very different severities; the tool must
    // rank the heavier one first (the paper: "when a program shows several
    // performance properties, whether the tool can rank them correctly").
    let base = ats::core::BaseComm::default();
    let trace = ats::mpi::run(SimConfig::with_procs(4), move |p| {
        let world = p.comm_world();
        ats::core::properties::mpi_p2p::late_sender(p, &base, 0.001, 0.050, 3, &world);
        ats::core::properties::mpi_coll::late_broadcast(p, &base, 0.001, 0.005, 1, 1, &world);
    });
    let report = analyze(&trace, &AnalyzerConfig::default());
    assert!(report.findings.len() >= 2);
    assert_eq!(
        report.findings[0].property, "LateSender",
        "the 3x50ms property must outrank the 1x5ms one: {:?}",
        report.findings
    );
    assert!(report.severity_of("LateSender") > report.severity_of("LateBroadcast"));
}

#[test]
fn hybrid_composite_detects_both_paradigms() {
    let params = CompositeParams {
        basework: 0.002,
        extrawork: 0.01,
        reps: 1,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(2), move |p| {
        let world = p.comm_world();
        composite::hybrid_composite(p, 3, &params, &world);
    });
    assert!(check_wellformed(&trace).is_empty());
    let report = analyze(&trace, &AnalyzerConfig::default());
    for prop in [
        "LateSender",
        "OmpWaitAtBarrier",
        "OmpImbalanceInRegion",
        "LateBroadcast",
    ] {
        assert!(report.severity_of(prop) > 0.0, "missing {prop}");
    }
    // Thread locations exist under both ranks.
    assert!(trace
        .locations
        .iter()
        .any(|l| l.location.rank == 1 && l.location.thread > 0));
}

#[test]
fn thresholds_control_tool_sensitivity() {
    // The paper: "automatic performance tools have different thresholds /
    // sensitivities. Therefore it is important that the test suite is
    // parametrized so that the relative severity of the properties can be
    // controlled." Verify both directions of that contract.
    let spec = ats::core::catalog::find("late_broadcast").unwrap();
    let weak = ParamValues::from_args(spec, &["extrawork=0.0004", "basework=0.01"]).unwrap();
    let strong = ParamValues::from_args(spec, &["extrawork=0.08", "basework=0.01"]).unwrap();
    let opts = RunOpts::default().procs(4);
    let weak_trace = run_single("late_broadcast", &weak, &opts).unwrap();
    let strong_trace = run_single("late_broadcast", &strong, &opts).unwrap();
    let sensitive = AnalyzerConfig::default().threshold(0.0001);
    let insensitive = AnalyzerConfig::default().threshold(0.1);
    assert!(!analyze(&weak_trace, &sensitive).is_clean());
    assert!(analyze(&weak_trace, &insensitive).is_clean());
    assert!(!analyze(&strong_trace, &insensitive).is_clean());
}

#[test]
fn location_ids_cover_exactly_the_started_ranks() {
    let trace = ats::mpi::run(SimConfig::with_procs(5), |p| {
        p.do_work(ats::runtime::VDur::from_millis(1));
    });
    let ranks: Vec<u32> = trace.locations.iter().map(|l| l.location.rank).collect();
    assert_eq!(ranks, vec![0, 1, 2, 3, 4]);
    assert!(trace.location(LocationId::rank(4)).is_some());
}

#[test]
fn analyzer_tolerates_truncated_traces() {
    // A tool must not panic on incomplete inputs: drop whole locations and
    // tails of event streams and re-analyze.
    let base = ats::core::BaseComm::default();
    let full = ats::mpi::run(SimConfig::with_procs(4), move |p| {
        let world = p.comm_world();
        ats::core::properties::mpi_p2p::late_sender(p, &base, 0.002, 0.01, 2, &world);
        ats::core::properties::mpi_coll::late_broadcast(p, &base, 0.002, 0.01, 0, 1, &world);
    });
    // Variant 1: lose a whole rank's stream (e.g. a crashed daemon).
    let mut lost_rank = full.clone();
    lost_rank.locations.remove(2);
    let r1 = analyze(&lost_rank, &AnalyzerConfig::default().threshold(0.0));
    assert!(r1.cube.total_alloc() > ats::runtime::VDur::ZERO);
    // Variant 2: truncate every stream to its first half; enter/exit
    // balance breaks, so pre-clean with the wellformedness contract in
    // mind: the analyzer's extract requires balanced frames, so a trace
    // consumer must first repair/clip — here we clip to whole frames by
    // dropping trailing events until the stack balances.
    let mut clipped = full.clone();
    for loc in &mut clipped.locations {
        loc.events.truncate(loc.events.len() / 2);
        // Repair: drop trailing events until enters/exits balance.
        loop {
            let mut depth = 0i64;
            let mut ok = true;
            for ev in &loc.events {
                match ev.kind {
                    ats::trace::EventKind::Enter { .. } => depth += 1,
                    ats::trace::EventKind::Exit { .. } => {
                        depth -= 1;
                        if depth < 0 {
                            ok = false;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if ok && depth == 0 {
                break;
            }
            loc.events.pop();
        }
    }
    let r2 = analyze(&clipped, &AnalyzerConfig::default().threshold(0.0));
    // No panic is the contract; severities are naturally smaller.
    assert!(r2.severity_of("LateSender") <= 1.0);
}

#[test]
fn analyzer_handles_foreign_traces_without_comm_defs() {
    // A trace from another tool might lack communicator definitions: the
    // rooted-collective patterns then cannot resolve roots and must skip
    // (not panic), while unrooted patterns still work.
    let base = ats::core::BaseComm::default();
    let mut trace = ats::mpi::run(SimConfig::with_procs(4), move |p| {
        let world = p.comm_world();
        ats::core::properties::mpi_coll::late_broadcast(p, &base, 0.002, 0.02, 0, 1, &world);
        ats::core::properties::mpi_coll::imbalance_at_mpi_barrier(
            p,
            &ats::core::Distr::block2(0.002, 0.02),
            1,
            &world,
        );
    });
    trace.comms.clear();
    let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
    assert_eq!(
        report.severity_of("LateBroadcast"),
        0.0,
        "root unresolvable without comm defs"
    );
    assert!(
        report.severity_of("WaitAtBarrier") > 0.0,
        "unrooted patterns keep working"
    );
}
