//! Scale smoke tests: the virtual-time substrates must stay correct and
//! fast well past the paper's 16-rank screenshots.

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::{composite, CompositeParams};
use ats::mpi::SimConfig;
use ats::trace::check_wellformed;

#[test]
fn sixty_four_rank_two_communicator_composite() {
    let params = CompositeParams {
        basework: 0.001,
        extrawork: 0.004,
        reps: 1,
        ..Default::default()
    };
    let trace = ats::mpi::run(SimConfig::with_procs(64), move |p| {
        let world = p.comm_world();
        composite::two_communicator_composite(p, &params, &world);
    });
    assert_eq!(trace.num_locations(), 64);
    assert!(check_wellformed(&trace).is_empty());
    let report = analyze(&trace, &AnalyzerConfig::default());
    // Fig 3.5 localization at 64 ranks: upper half minus local root 1
    // (global 33).
    let blamed: Vec<u32> = report
        .locations_for("LateBroadcast")
        .iter()
        .map(|l| l.rank)
        .collect();
    let expected: Vec<u32> = (32..64).filter(|&r| r != 33).collect();
    assert_eq!(blamed, expected);
}

/// Tentpole smoke: 4096 simulated ranks in one process — a scale only
/// the discrete-event backend (the default) can host; one OS thread per
/// rank would exhaust a CI runner's thread and memory limits.
#[test]
fn four_thousand_ranks_run_in_one_process() {
    use ats::runtime::VDur;
    let trace = ats::mpi::run(SimConfig::with_procs(4096), |p| {
        let world = p.comm_world();
        let n = world.size();
        let me = p.rank();
        // Staggered work, a ring token pass, and a world barrier: p2p
        // matching, the rendezvous protocol and the collective slot all
        // at full width.
        p.do_work(VDur::from_micros(((me % 7) * 50) as u64));
        let mut req = p.isend(&[me as u8], (me + 1) % n, 9, &world);
        let (msg, status) = p.recv((me + n - 1) % n, 9, &world);
        p.wait(&mut req);
        assert_eq!(msg, vec![((me + n - 1) % n) as u8]);
        assert_eq!(status.source, (me + n - 1) % n);
        p.barrier(&world);
    });
    assert_eq!(trace.num_locations(), 4096);
    assert!(check_wellformed(&trace).is_empty());
}

#[test]
fn deep_communicator_nesting() {
    // Recursively halve the world 4 times: 16 -> 8 -> 4 -> 2, with a
    // barrier at every level; communicators and collective sequence
    // numbers must stay consistent throughout.
    let trace = ats::mpi::run(SimConfig::with_procs(16), |p| {
        let mut comm = p.comm_world();
        for _level in 0..3 {
            p.barrier(&comm);
            let half = comm.size() / 2;
            let color = (comm.rank() / half) as i64;
            comm = p.comm_split(color, comm.rank() as i64, &comm).unwrap();
        }
        assert_eq!(comm.size(), 2);
        p.barrier(&comm);
    });
    assert!(check_wellformed(&trace).is_empty());
    // world + 2 + 4 + 8 subcommunicators recorded.
    assert_eq!(trace.comms.len(), 1 + 2 + 4 + 8);
}

#[test]
fn wide_omp_team_inside_each_rank() {
    let trace = ats::mpi::run(SimConfig::with_procs(4), |p| {
        ats::core::with_omp(p, |m| {
            ats::omp::parallel(m, 16, |th| {
                th.do_work(ats::runtime::VDur::from_micros(
                    (th.thread_num() as u64 + 1) * 100,
                ));
                th.barrier();
            });
        });
    });
    assert!(check_wellformed(&trace).is_empty());
    assert_eq!(trace.num_locations(), 4 * 16);
}
