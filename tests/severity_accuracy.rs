//! Exact severity accounting: under the zero-cost machine model, the
//! analyzer's total waiting time per property must equal the *closed-form*
//! value implied by the program's parameters — not merely correlate with
//! it. This is the strongest form of the paper's positive-correctness
//! requirement ("the relative severity of the properties can be controlled
//! by the user").

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::harness::{run_single, ParamValues, RunOpts};

fn total_wait(property: &str, trace: &ats::trace::Trace) -> f64 {
    let report = analyze(trace, &AnalyzerConfig::default().threshold(0.0));
    report
        .findings_for(property)
        .iter()
        .map(|f| f.wait.as_secs())
        .sum()
}

fn run(name: &str, args: &[&str], nprocs: usize) -> ats::trace::Trace {
    let spec = ats::core::catalog::find(name).unwrap();
    let params = ParamValues::from_args(spec, args).unwrap();
    run_single(name, &params, &RunOpts::default().procs(nprocs)).unwrap()
}

const EPS: f64 = 1e-9;

#[test]
fn late_sender_wait_is_pairs_times_reps_times_extra() {
    // P pairs, each waiting `extrawork` per repetition.
    for (nprocs, pairs) in [(2, 1.0), (4, 2.0), (6, 3.0), (7, 3.0)] {
        let trace = run(
            "late_sender",
            &["basework=0.003", "extrawork=0.025", "r=4"],
            nprocs,
        );
        let expect = pairs * 4.0 * 0.025;
        let got = total_wait("LateSender", &trace);
        assert!((got - expect).abs() < EPS, "P={nprocs}: {got} vs {expect}");
    }
}

#[test]
fn late_receiver_wait_mirrors_late_sender() {
    let trace = run(
        "late_receiver",
        &["basework=0.002", "extrawork=0.018", "r=3"],
        4,
    );
    let expect = 2.0 * 3.0 * 0.018;
    let got = total_wait("LateReceiver", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn barrier_wait_is_the_sum_of_gaps_to_the_slowest() {
    // linear(low, high) over P ranks: gap_i = (high-low) * (P-1-i)/(P-1);
    // total per repetition = (high-low) * P/2.
    let (low, high, p, r) = (0.004f64, 0.036f64, 8usize, 3usize);
    let trace = run(
        "imbalance_at_mpi_barrier",
        &[
            &format!("df=linear:low={low},high={high}"),
            &format!("r={r}"),
        ],
        p,
    );
    let expect = (high - low) * (p as f64 / 2.0) * r as f64;
    let got = total_wait("WaitAtBarrier", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn late_broadcast_wait_is_members_times_extra() {
    // Every non-root member waits exactly `extrawork` per repetition.
    let (p, r, extra) = (8usize, 2usize, 0.03f64);
    let trace = run(
        "late_broadcast",
        &[
            &format!("extrawork={extra}"),
            "basework=0.005",
            "root=3",
            &format!("r={r}"),
        ],
        p,
    );
    let expect = (p - 1) as f64 * r as f64 * extra;
    let got = total_wait("LateBroadcast", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn early_reduce_wait_is_root_only_extra() {
    // Only the root waits, exactly `baseextrawork` per repetition.
    let (p, r, extra) = (6usize, 3usize, 0.022f64);
    let trace = run(
        "early_reduce",
        &[
            &format!("baseextrawork={extra}"),
            "rootwork=0.004",
            "root=2",
            &format!("r={r}"),
        ],
        p,
    );
    let expect = r as f64 * extra;
    let got = total_wait("EarlyReduce", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn alltoall_wait_matches_peak_distribution() {
    // peak(low, high, n): everyone except the peak waits (high - low).
    let (p, r) = (5usize, 2usize);
    let trace = run(
        "imbalance_at_mpi_alltoall",
        &["df=peak:low=0.002,high=0.03,n=1", &format!("r={r}")],
        p,
    );
    let expect = (p - 1) as f64 * r as f64 * (0.03 - 0.002);
    let got = total_wait("WaitAtNxN", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn omp_barrier_wait_matches_cyclic_distribution() {
    // cyclic2(low, high) over 4 threads: threads 0 and 2 wait (high-low).
    let (threads, r) = (4usize, 3usize);
    let trace = run(
        "imbalance_at_omp_barrier",
        &[
            "df=cyclic2:low=0.005,high=0.02",
            &format!("nthreads={threads}"),
            &format!("r={r}"),
        ],
        1,
    );
    let expect = 2.0 * r as f64 * (0.02 - 0.005);
    let got = total_wait("OmpWaitAtBarrier", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn critical_contention_wait_is_the_serialization_triangle() {
    // T threads, zero outside work: thread k waits k*body; total =
    // body * T(T-1)/2 per repetition... with repetitions the queue refills
    // immediately, so each round adds (T-1)*body*T/... — test r=1 for the
    // closed triangle.
    let (threads, body) = (5usize, 0.012f64);
    let trace = run(
        "omp_critical_contention",
        &[
            &format!("bodywork={body}"),
            "outsidework=0.0",
            &format!("nthreads={threads}"),
            "r=1",
        ],
        1,
    );
    let expect = body * (threads * (threads - 1) / 2) as f64;
    let got = total_wait("OmpCriticalContention", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn wrong_order_wait_equals_the_programmed_delay() {
    // The early message sits unread exactly `delay` per pair per rep.
    let (p, r, delay) = (4usize, 2usize, 0.02f64);
    let trace = run(
        "messages_in_wrong_order",
        &[
            &format!("delay={delay}"),
            "basework=0.003",
            &format!("r={r}"),
        ],
        p,
    );
    let expect = 2.0 * r as f64 * delay; // 2 pairs
    let got = total_wait("MessagesWrongOrder", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn progressive_barrier_wait_sums_the_growth_series() {
    // Iteration i scaled by (1 + g*i): total wait = base_total * sum(1+g*i).
    let (p, r, g) = (4usize, 4usize, 0.5f64);
    let (low, high) = (0.002f64, 0.014f64);
    let trace = run(
        "progressive_imbalance_at_mpi_barrier",
        &[
            &format!("df=block2:low={low},high={high}"),
            &format!("growth={g}"),
            &format!("r={r}"),
        ],
        p,
    );
    // block2 over 4 ranks: ranks 0,1 wait (high-low) each per iteration.
    let per_iter_base = 2.0 * (high - low);
    let series: f64 = (0..r).map(|i| 1.0 + g * i as f64).sum();
    let expect = per_iter_base * series;
    let got = total_wait("WaitAtBarrier", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}

#[test]
fn serial_initialization_wait_is_serialwork_per_nonroot() {
    let (p, serial) = (5usize, 0.04f64);
    let trace = run(
        "serial_initialization",
        &[&format!("extrawork={serial}"), "basework=0.005", "root=0"],
        p,
    );
    let expect = (p - 1) as f64 * serial;
    let got = total_wait("WaitAtBarrier", &trace);
    assert!((got - expect).abs() < EPS, "{got} vs {expect}");
}
