//! Reproducibility: a test suite whose purpose is producing *known* timing
//! patterns must produce bit-identical traces across runs — the property
//! the paper's wall-clock calibration could only approximate, strengthened
//! here by virtual time.

use ats::harness::{run_single, ParamValue, ParamValues, RunOpts};
use ats::trace::Trace;

fn canonical(mut t: Trace) -> Trace {
    t.canonicalize();
    t
}

/// Catalog entries whose traces must be bit-identical across repeated runs.
/// `omp_critical_contention` is excluded by design: acquisition *order*
/// among equal virtual arrivals follows host scheduling (documented in
/// `ats-omp`), while total contention stays fixed — checked separately.
fn deterministic_entries() -> impl Iterator<Item = &'static ats::core::PropertySpec> {
    ats::core::CATALOG
        .iter()
        .filter(|s| s.name != "omp_critical_contention")
}

#[test]
fn every_catalog_trace_is_bit_reproducible() {
    let opts = RunOpts::default().procs(4);
    for spec in deterministic_entries() {
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(2));
        let a = canonical(run_single(spec.name, &params, &opts).unwrap());
        let b = canonical(run_single(spec.name, &params, &opts).unwrap());
        assert_eq!(a.regions, b.regions, "{}: region tables differ", spec.name);
        assert_eq!(a.comms, b.comms, "{}: comm defs differ", spec.name);
        assert_eq!(
            a.locations, b.locations,
            "{}: event streams differ",
            spec.name
        );
    }
}

#[test]
fn critical_contention_total_is_stable_even_if_order_is_not() {
    use ats::analyzer::{analyze, AnalyzerConfig};
    let spec = ats::core::catalog::find("omp_critical_contention").unwrap();
    let params = ParamValues::defaults(spec);
    let opts = RunOpts::default().procs(2);
    let mut totals = Vec::new();
    for _ in 0..3 {
        let trace = run_single(spec.name, &params, &opts).unwrap();
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        let total: f64 = report
            .findings_for("OmpCriticalContention")
            .iter()
            .map(|f| f.wait.as_secs())
            .sum();
        totals.push(total);
    }
    assert!(
        totals.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
        "aggregate contention must be schedule-independent: {totals:?}"
    );
}

#[test]
fn seeds_do_not_leak_into_virtual_time() {
    // Virtual timestamps are pure functions of the program; the RNG seed
    // only affects real-mode memory access patterns.
    let spec = ats::core::catalog::find("late_broadcast").unwrap();
    let params = ParamValues::defaults(spec);
    let a = canonical(
        run_single(
            spec.name,
            &params,
            &RunOpts {
                seed: 1,
                ..RunOpts::default().procs(4)
            },
        )
        .unwrap(),
    );
    let b = canonical(
        run_single(
            spec.name,
            &params,
            &RunOpts {
                seed: 0xDEAD_BEEF,
                ..RunOpts::default().procs(4)
            },
        )
        .unwrap(),
    );
    assert_eq!(a.locations, b.locations);
}

#[test]
fn composites_are_reproducible() {
    use ats::core::{composite, CompositeParams};
    use ats::mpi::SimConfig;
    let params = CompositeParams {
        basework: 0.002,
        extrawork: 0.008,
        reps: 1,
        ..Default::default()
    };
    let run = || {
        let params = params.clone();
        canonical(ats::mpi::run(SimConfig::with_procs(8), move |p| {
            let world = p.comm_world();
            composite::two_communicator_composite(p, &params, &world);
        }))
    };
    let a = run();
    let b = run();
    assert_eq!(a.locations, b.locations);
    assert_eq!(a.comms, b.comms);
}
