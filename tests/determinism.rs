//! Reproducibility: a test suite whose purpose is producing *known* timing
//! patterns must produce bit-identical traces across runs — the property
//! the paper's wall-clock calibration could only approximate, strengthened
//! here by virtual time.

use ats::harness::{run_single, ParamValue, ParamValues, RunOpts};
use ats::trace::Trace;

fn canonical(mut t: Trace) -> Trace {
    t.canonicalize();
    t
}

/// Catalog entries whose traces must be bit-identical across repeated runs.
/// `omp_critical_contention` and its lock-based twin `omp_lock_contention`
/// are excluded by design: acquisition *order* among equal virtual
/// arrivals follows host scheduling (documented in `ats-omp`), while total
/// contention stays fixed — checked separately.
fn deterministic_entries() -> impl Iterator<Item = &'static ats::core::PropertySpec> {
    ats::core::CATALOG
        .iter()
        .filter(|s| !matches!(s.name, "omp_critical_contention" | "omp_lock_contention"))
}

#[test]
fn every_catalog_trace_is_bit_reproducible() {
    let opts = RunOpts::default().procs(4);
    for spec in deterministic_entries() {
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(2));
        let a = canonical(run_single(spec.name, &params, &opts).unwrap());
        let b = canonical(run_single(spec.name, &params, &opts).unwrap());
        assert_eq!(a.regions, b.regions, "{}: region tables differ", spec.name);
        assert_eq!(a.comms, b.comms, "{}: comm defs differ", spec.name);
        assert_eq!(
            a.locations, b.locations,
            "{}: event streams differ",
            spec.name
        );
    }
}

#[test]
fn contention_totals_are_stable_even_if_order_is_not() {
    use ats::analyzer::{analyze, AnalyzerConfig};
    // Both contention flavors report as OmpCriticalContention.
    for (name, property) in [
        ("omp_critical_contention", "OmpCriticalContention"),
        ("omp_lock_contention", "OmpCriticalContention"),
    ] {
        let spec = ats::core::catalog::find(name).unwrap();
        let params = ParamValues::defaults(spec);
        let opts = RunOpts::default().procs(2);
        let mut totals = Vec::new();
        for _ in 0..3 {
            let trace = run_single(name, &params, &opts).unwrap();
            let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
            let total: f64 = report
                .findings_for(property)
                .iter()
                .map(|f| f.wait.as_secs())
                .sum();
            totals.push(total);
        }
        assert!(
            totals.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-9),
            "{name}: aggregate contention must be schedule-independent: {totals:?}"
        );
    }
}

#[test]
fn seeds_do_not_leak_into_virtual_time() {
    // Virtual timestamps are pure functions of the program; the RNG seed
    // only affects real-mode memory access patterns.
    let spec = ats::core::catalog::find("late_broadcast").unwrap();
    let params = ParamValues::defaults(spec);
    let a = canonical(
        run_single(
            spec.name,
            &params,
            &RunOpts {
                seed: 1,
                ..RunOpts::default().procs(4)
            },
        )
        .unwrap(),
    );
    let b = canonical(
        run_single(
            spec.name,
            &params,
            &RunOpts {
                seed: 0xDEAD_BEEF,
                ..RunOpts::default().procs(4)
            },
        )
        .unwrap(),
    );
    assert_eq!(a.locations, b.locations);
}

/// Tentpole parity: the discrete-event scheduler must be invisible in the
/// results — byte-identical ATSB traces and identical analyzer reports to
/// the one-OS-thread-per-rank backend, across a catalog sample.
#[test]
fn event_and_thread_backends_produce_identical_atsb_bytes() {
    use ats::analyzer::{analyze, AnalyzerConfig};
    use ats::mpi::SimBackend;
    let sample = [
        "late_sender",
        "late_receiver",
        "imbalance_at_mpi_barrier",
        "late_broadcast",
        "early_reduce",
        "messages_in_wrong_order",
        "imbalance_at_mpi_alltoall",
        "balanced_ring",
    ];
    for name in sample {
        let spec = ats::core::catalog::find(name).unwrap();
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(2));
        let run_on = |backend: SimBackend| {
            canonical(
                run_single(name, &params, &RunOpts::default().procs(8).backend(backend)).unwrap(),
            )
        };
        let event = run_on(SimBackend::Event);
        let thread = run_on(SimBackend::Thread);
        assert_eq!(
            ats::trace::binfmt::encode(&event),
            ats::trace::binfmt::encode(&thread),
            "{name}: ATSB bytes differ between backends"
        );
        let report_on = |t: &Trace| {
            serde_json::to_string(&analyze(t, &AnalyzerConfig::default()).findings).unwrap()
        };
        assert_eq!(
            report_on(&event),
            report_on(&thread),
            "{name}: analyzer reports differ between backends"
        );
    }
}

/// Backend parity holds through the experiment engine at any worker
/// count: rows are byte-identical for (event, thread) × (jobs 1, jobs 8).
#[test]
fn backend_parity_holds_for_any_jobs_value() {
    use ats::harness::experiment::{Experiment, Sweep};
    use ats::mpi::SimBackend;
    let rows = |backend: SimBackend, jobs: usize| {
        let (rows, stats) = Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02]))
            .procs_grid([2, 4])
            .opts(RunOpts::default().backend(backend).jobs(jobs))
            .run_with_stats()
            .unwrap();
        assert_eq!(stats.backend, backend.effective().label());
        serde_json::to_string(&rows).unwrap()
    };
    let baseline = rows(SimBackend::Event, 1);
    for (backend, jobs) in [
        (SimBackend::Event, 8),
        (SimBackend::Thread, 1),
        (SimBackend::Thread, 8),
    ] {
        assert_eq!(
            baseline,
            rows(backend, jobs),
            "{}/jobs={jobs} diverges from event/jobs=1",
            backend.label()
        );
    }
}

#[test]
fn composites_are_reproducible() {
    use ats::core::{composite, CompositeParams};
    use ats::mpi::SimConfig;
    let params = CompositeParams {
        basework: 0.002,
        extrawork: 0.008,
        reps: 1,
        ..Default::default()
    };
    let run = || {
        let params = params.clone();
        canonical(ats::mpi::run(SimConfig::with_procs(8), move |p| {
            let world = p.comm_world();
            composite::two_communicator_composite(p, &params, &world);
        }))
    };
    let a = run();
    let b = run();
    assert_eq!(a.locations, b.locations);
    assert_eq!(a.comms, b.comms);
}
