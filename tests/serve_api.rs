//! Integration tests for the `ats-serve` public API surface.
//!
//! Each test boots a real server on a loopback port with its own
//! temporary artifact store and talks to it through the typed
//! [`Client`] — the same path `curl` and the load driver take. Covered:
//! the frozen `ats-report/1` byte contract, cache read-through headers,
//! error discriminants (400/404/405/429), campaign streaming, artifact
//! fetches, Prometheus exposition and graceful drain.

use ats::harness::Session;
use ats::obs::ObsConfig;
use ats::serve::{start, Client, ServeConfig, ServerHandle};
use ats::store::CacheMode;
use ats_testutil::TempDir;

const SPEC: &str = "seed=7 nprocs=2 | whole g0:late_sender r=1";
const SPEC2: &str = "seed=8 nprocs=2 | whole g0:late_sender r=1";

fn boot(dir: &TempDir, config: ServeConfig) -> ServerHandle {
    let session = Session::builder()
        .obs(ObsConfig::fresh())
        .cache(CacheMode::ReadWrite)
        .cache_dir(dir.path())
        .build();
    start(session, config).expect("server starts")
}

fn default_boot(dir: &TempDir) -> ServerHandle {
    boot(dir, ServeConfig::default())
}

/// The offline bytes the service must reproduce for `spec`.
fn offline_report(spec: &str) -> Vec<u8> {
    let session = Session::builder().build();
    let sc = spec.parse::<ats::fuzz::Scenario>().expect("spec parses");
    let trace = ats::fuzz::oracle::execute(&sc, session.opts()).expect("spec runs");
    session.analyze(&trace).to_json().into_bytes()
}

#[test]
fn analyze_returns_frozen_report_bytes_with_cache_headers() {
    let dir = TempDir::new("serve-analyze");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    let first = client.analyze(SPEC).expect("analyze");
    assert!(!first.cached, "fresh store must miss");
    assert_eq!(first.key.len(), 32, "hex cache key: {}", first.key);
    assert_eq!(
        first.report,
        offline_report(SPEC),
        "served bytes must equal offline Report::to_json"
    );

    let second = client.analyze(SPEC).expect("replay");
    assert!(second.cached, "second request must hit the store");
    assert_eq!(second.key, first.key);
    assert_eq!(second.report, first.report, "hit replays identical bytes");
    server.shutdown();
}

#[test]
fn malformed_specs_are_400_with_the_error_discriminant() {
    let dir = TempDir::new("serve-badspec");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    for body in ["{not json", "", "seed=1 nprocs=0 |"] {
        let resp = client
            .request("POST", "/v1/analyze", Some("text/plain"), body.as_bytes())
            .expect("transport ok");
        assert_eq!(resp.status, 400, "{body:?} -> {}", resp.text());
        let doc = ats::core::json::Json::parse(resp.text().trim()).expect("error body is JSON");
        assert_eq!(
            doc.get("kind").and_then(ats::core::json::Json::as_str),
            Some("scenario"),
            "discriminant for {body:?}"
        );
        assert_eq!(
            doc.get("schema").and_then(ats::core::json::Json::as_str),
            Some("ats-serve-error/1")
        );
    }
    server.shutdown();
}

#[test]
fn artifacts_are_fetchable_by_key_and_unknown_keys_are_404() {
    let dir = TempDir::new("serve-artifacts");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    let out = client.analyze(SPEC).expect("analyze");
    let report = client
        .artifact(&out.key, "report.json")
        .expect("stored report");
    assert_eq!(report, out.report, "artifact bytes equal the served body");
    let trace = client.artifact(&out.key, "trace.atsb").expect("stored trace");
    assert!(!trace.is_empty(), "ATSB trace is published on miss");

    // Unknown (but well-formed) key -> 404 with the request discriminant.
    let resp = client
        .request(
            "GET",
            &format!("/v1/artifacts/{}/report.json", "0".repeat(32)),
            None,
            b"",
        )
        .expect("transport ok");
    assert_eq!(resp.status, 404, "{}", resp.text());
    assert!(resp.text().contains("\"kind\": \"request\"") || resp.text().contains("\"kind\":\"request\""));

    // Malformed key -> 400; missing file -> 404.
    let resp = client
        .request("GET", "/v1/artifacts/nothex/report.json", None, b"")
        .expect("transport ok");
    assert_eq!(resp.status, 400);
    let resp = client
        .request(
            "GET",
            &format!("/v1/artifacts/{}/nope.bin", out.key),
            None,
            b"",
        )
        .expect("transport ok");
    assert_eq!(resp.status, 404);
    server.shutdown();
}

#[test]
fn full_admission_queue_sheds_new_connections_with_429() {
    let dir = TempDir::new("serve-shed");
    let server = boot(
        &dir,
        ServeConfig {
            max_conns: 1,
            ..ServeConfig::default()
        },
    );
    // Occupy the only slot with a keep-alive connection.
    let mut holder = Client::new(server.addr());
    holder.healthz().expect("first connection admitted");
    assert_eq!(server.live_connections(), 1);

    let mut second = Client::new(server.addr());
    let resp = second
        .request("GET", "/healthz", None, b"")
        .expect("shed response is still a well-formed HTTP exchange");
    assert_eq!(resp.status, 429, "{}", resp.text());
    assert!(resp.text().contains("capacity"), "{}", resp.text());

    // The holder's connection still works afterwards.
    holder.healthz().expect("admitted connection survives the shed");
    server.shutdown();
}

#[test]
fn campaigns_stream_rows_in_input_order() {
    let dir = TempDir::new("serve-campaign");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    let jsonl = format!("{SPEC}\n{SPEC2}\n");
    let rows = client.campaign(&jsonl).expect("campaign streams");
    assert_eq!(rows.len(), 2);
    let rows: Vec<_> = rows.into_iter().map(|r| r.expect("row ok")).collect();
    assert_eq!(rows[0].scenario, SPEC.parse::<ats::fuzz::Scenario>().unwrap().to_string());
    assert_eq!(rows[1].scenario, SPEC2.parse::<ats::fuzz::Scenario>().unwrap().to_string());
    assert!(rows.iter().all(|r| r.findings >= 1), "late_sender must be found");

    // A second pass replays every row from the store.
    let rows = client.campaign(&jsonl).expect("warm campaign");
    for row in rows {
        assert!(row.expect("row ok").cached, "warm campaign rows replay");
    }
    server.shutdown();
}

#[test]
fn campaign_with_a_bad_line_fails_whole_request_naming_the_line() {
    let dir = TempDir::new("serve-campaign-bad");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    let jsonl = format!("{SPEC}\n{{broken\n");
    let resp = client
        .request(
            "POST",
            "/v1/campaign",
            Some("application/jsonl"),
            jsonl.as_bytes(),
        )
        .expect("transport ok");
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("line 2"), "{}", resp.text());
    server.shutdown();
}

#[test]
fn metrics_version_and_unknown_routes_behave() {
    let dir = TempDir::new("serve-meta");
    let server = default_boot(&dir);
    let mut client = Client::new(server.addr());

    client.healthz().expect("healthz");
    let version = client.version().expect("version doc");
    assert_eq!(
        version.get("schema").and_then(ats::core::json::Json::as_str),
        Some("ats-serve/1")
    );
    assert_eq!(
        version.get("report_schema").and_then(ats::core::json::Json::as_str),
        Some("ats-report/1")
    );

    let _ = client.analyze(SPEC).expect("analyze once for the counters");
    let metrics = client.metrics().expect("prometheus text");
    assert!(metrics.contains("ats_serve_requests_total"), "{metrics}");
    assert!(metrics.contains("ats_serve_connections"), "{metrics}");

    let resp = client
        .request("GET", "/nope", None, b"")
        .expect("transport ok");
    assert_eq!(resp.status, 404);
    let resp = client
        .request("GET", "/v1/analyze", None, b"")
        .expect("transport ok");
    assert_eq!(resp.status, 405, "wrong method is 405, not 404");
    server.shutdown();
}

#[test]
fn shutdown_drains_and_stops_accepting() {
    let dir = TempDir::new("serve-drain");
    let server = default_boot(&dir);
    let addr = server.addr();
    let mut client = Client::new(addr);
    client.analyze(SPEC).expect("request before drain");

    server.shutdown();
    // The port no longer accepts work: either the connect itself fails or
    // the socket is closed without an HTTP response.
    let after = Client::new(addr).request("GET", "/healthz", None, b"");
    assert!(after.is_err(), "server must be gone after shutdown");
}
