//! The on-disk trace format contract (ISSUE 2): analysis results are
//! independent of how the trace traveled — in memory, through JSONL text,
//! or through the ATSB columnar binary codec — the paper's figure-3.5
//! localization survives a binary round-trip, and pooled event buffers
//! never change a sweep row.

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::CompositeParams;
use ats::harness::experiment::{Experiment, Sweep};
use ats::harness::registry::run_composite_two_comms;
use ats::harness::{ExperimentRow, RunOpts};
use ats::trace::{binfmt, io, Trace, TracePool};

/// The Figure 3.4 composite: two communicators running different property
/// sets in parallel, at reproduction scale (realistic model, visible
/// init/finalize — the same program `ats-bench` renders).
fn composite(nprocs: usize) -> Trace {
    let params = CompositeParams {
        basework: 0.005,
        extrawork: 0.02,
        reps: 2,
        ..Default::default()
    };
    run_composite_two_comms(&params, &RunOpts::default().procs(nprocs).realistic())
}

fn findings_json(trace: &Trace) -> String {
    let report = analyze(trace, &AnalyzerConfig::default());
    serde_json::to_string_pretty(&report.findings).expect("findings serialize")
}

#[test]
fn analysis_is_identical_across_in_memory_jsonl_and_binary() {
    let trace = composite(8);
    let direct = findings_json(&trace);

    let mut jsonl = Vec::new();
    io::write_jsonl(&trace, &mut jsonl).unwrap();
    let via_jsonl = io::read_jsonl(jsonl.as_slice()).unwrap();

    let mut binary = Vec::new();
    binfmt::write_binary(&trace, &mut binary).unwrap();
    let via_binary = binfmt::read_binary(binary.as_slice()).unwrap();

    for (label, loaded) in [("jsonl", &via_jsonl), ("binary", &via_binary)] {
        assert_eq!(loaded.locations, trace.locations, "{label}: events differ");
        assert_eq!(loaded.comms, trace.comms, "{label}: comms differ");
        assert_eq!(
            findings_json(loaded),
            direct,
            "{label}: analysis diverges from the in-memory trace"
        );
    }

    // And the sniffing reader dispatches both encodings to the same trace.
    for (label, bytes) in [("jsonl", &jsonl), ("binary", &binary)] {
        let sniffed = io::read_auto(bytes.as_slice()).unwrap();
        assert_eq!(
            findings_json(&sniffed),
            direct,
            "read_auto({label}) diverges"
        );
    }
}

#[test]
fn figure35_localization_survives_a_binary_round_trip() {
    let nprocs = 16usize;
    let trace = composite(nprocs);
    let mut binary = Vec::new();
    binfmt::write_binary(&trace, &mut binary).unwrap();
    let trace = binfmt::read_binary(binary.as_slice()).unwrap();

    let report = analyze(&trace, &AnalyzerConfig::default());
    let hits = report.findings_for("LateBroadcast");
    assert!(!hits.is_empty(), "LateBroadcast not detected");
    assert!(
        hits.iter()
            .any(|f| f.call_path.contains("late_broadcast") && f.call_path.contains("MPI_Bcast")),
        "not localized at late_broadcast/MPI_Bcast"
    );
    let got: Vec<u32> = report
        .locations_for("LateBroadcast")
        .iter()
        .map(|l| l.rank)
        .collect();
    let expected: Vec<u32> = (nprocs as u32 / 2..nprocs as u32)
        .filter(|&r| r != nprocs as u32 / 2 + 1)
        .collect();
    assert_eq!(
        got, expected,
        "blamed ranks differ after the binary round-trip"
    );
}

fn sweep_rows(jobs: usize, pool: Option<TracePool>) -> Vec<ExperimentRow> {
    let mut opts = RunOpts::default().jobs(jobs);
    if let Some(p) = pool {
        opts = opts.trace_pool(p);
    }
    Experiment::new("late_sender")
        .procs_grid([2, 4])
        .sweep(Sweep::seconds("extrawork", [0.005, 0.02]))
        .opts(opts)
        .run_with_stats()
        .expect("runnable")
        .0
}

#[test]
fn pooled_sweep_rows_are_byte_identical_for_any_jobs_value() {
    let baseline = serde_json::to_string_pretty(&sweep_rows(1, None)).unwrap();
    let shared = TracePool::new();
    for jobs in [1usize, 8] {
        let rows = sweep_rows(jobs, Some(shared.clone()));
        assert_eq!(
            serde_json::to_string_pretty(&rows).unwrap(),
            baseline,
            "jobs={jobs}: pooled rows diverge from the unpooled serial baseline"
        );
    }
    // The shared pool really got exercised: the second sweep reused
    // buffers the first one recycled.
    let stats = shared.stats();
    assert!(stats.recycled > 0, "{stats:?}");
    assert!(stats.hits > 0, "{stats:?}");
}
