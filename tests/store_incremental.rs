//! The incremental campaign engine's contract (ISSUE 8): a warm re-run
//! of an unchanged campaign replays ≥ 95% of its configurations from the
//! artifact store with rows byte-identical to the cold run, and changing
//! a single parameter invalidates only the combinations that use it.

use ats::harness::cache::row_to_json;
use ats::harness::experiment::{Experiment, Sweep};
use ats::harness::{ExperimentRow, RunOpts, Session};
use ats::store::{Cache, CacheMode};
use std::path::PathBuf;

fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ats-store-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Canonical-JSON renders of the rows: the byte-identity evidence that
/// does not depend on an external serializer.
fn rendered(rows: &[ExperimentRow]) -> Vec<String> {
    rows.iter().map(|r| row_to_json(r).render()).collect()
}

/// The E-pos campaign shape from the parallel-engine test, now cached.
fn campaign(property: &str, dir: &PathBuf, jobs: usize) -> Experiment {
    let e = Experiment::new(property).procs_grid([2, 4]);
    let e = match property {
        "late_sender" => e.sweep(Sweep::seconds("extrawork", [0.005, 0.01, 0.02, 0.04])),
        "imbalance_at_mpi_barrier" => e.sweep(Sweep::counts("r", [1, 2, 4])),
        other => panic!("no sweep shape for {other}"),
    };
    e.opts(RunOpts::default().jobs(jobs))
        .cache(Cache::open(dir, CacheMode::ReadWrite).unwrap())
}

/// Acceptance: the warm re-run of an unchanged two-property campaign
/// replays every configuration (≥ 95% required, 100% achieved) with rows
/// byte-identical to the cold run, publishing nothing new.
#[test]
fn warm_rerun_replays_byte_identical_rows() {
    let dir = store_dir("warm");
    let mut total = 0usize;
    let mut hits = 0usize;
    for property in ["late_sender", "imbalance_at_mpi_barrier"] {
        let (cold_rows, cold) = campaign(property, &dir, 1).run_with_stats().unwrap();
        assert_eq!(cold.cache_hits, 0, "{property}: a fresh store has no hits");
        assert!(cold.cache_bytes_written > 0);
        let (warm_rows, warm) = campaign(property, &dir, 1).run_with_stats().unwrap();
        assert_eq!(
            rendered(&cold_rows),
            rendered(&warm_rows),
            "{property}: replayed rows must be byte-identical"
        );
        assert_eq!(warm.cache_bytes_written, 0, "{property}: hits publish nothing");
        total += warm.configs;
        hits += warm.cache_hits;
    }
    let hit_rate = hits as f64 / total as f64;
    assert!(
        hit_rate >= 0.95,
        "warm hit rate {hit_rate} below the 95% gate ({hits}/{total})"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Acceptance: swapping one sweep value re-executes only the combos that
/// use it — everything else still replays.
#[test]
fn single_parameter_change_invalidates_only_affected_combos() {
    let dir = store_dir("invalidate");
    let sweep = |values: [f64; 4]| {
        Experiment::new("late_sender")
            .procs_grid([2, 4])
            .sweep(Sweep::seconds("extrawork", values))
            .opts(RunOpts::default().jobs(1))
            .cache(Cache::open(&dir, CacheMode::ReadWrite).unwrap())
    };
    let (_, cold) = sweep([0.005, 0.01, 0.02, 0.04]).run_with_stats().unwrap();
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 8));
    // One of four values changes: 2 combos (× 2 proc counts) re-execute.
    let (_, shifted) = sweep([0.005, 0.01, 0.03, 0.04]).run_with_stats().unwrap();
    assert_eq!(
        (shifted.cache_hits, shifted.cache_misses),
        (6, 2),
        "only the combos using the changed value may miss"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Analyzer-configuration changes invalidate the whole campaign: every
/// stored report was computed under the old tool, none may replay.
#[test]
fn analyzer_change_invalidates_every_combo() {
    let dir = store_dir("analyzer");
    let sweep = |threshold: f64| {
        let mut analyzer = ats::analyzer::AnalyzerConfig::default();
        analyzer.threshold = threshold;
        Experiment::new("late_sender")
            .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
            .opts(RunOpts::default().procs(2).jobs(1))
            .analyzer(analyzer)
            .cache(Cache::open(&dir, CacheMode::ReadWrite).unwrap())
    };
    let (_, cold) = sweep(0.01).run_with_stats().unwrap();
    assert_eq!(cold.cache_misses, 2);
    let (_, retuned) = sweep(0.02).run_with_stats().unwrap();
    assert_eq!(
        (retuned.cache_hits, retuned.cache_misses),
        (0, 2),
        "a retuned analyzer must re-execute everything"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scheduling is not identity: a campaign executed serially replays
/// wholesale under a parallel worker pool (and vice versa).
#[test]
fn identical_inputs_hit_across_jobs_values() {
    let dir = store_dir("jobs");
    let (cold_rows, cold) = campaign("late_sender", &dir, 1).run_with_stats().unwrap();
    assert_eq!(cold.cache_hits, 0);
    let (warm_rows, warm) = campaign("late_sender", &dir, 8).run_with_stats().unwrap();
    assert!(warm.jobs > 1, "jobs=8 must run a real pool");
    assert_eq!(
        (warm.cache_hits, warm.cache_misses),
        (warm.configs, 0),
        "a different worker count must not invalidate anything"
    );
    assert_eq!(rendered(&cold_rows), rendered(&warm_rows));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Sessions wire the same engine end to end: a cold `rw` session
/// populates the default store location, a warm `ro` session replays
/// from it without ever writing.
#[test]
fn sessions_share_the_store_across_modes() {
    let dir = store_dir("session");
    let session = |mode: CacheMode| {
        Session::builder()
            .procs(2)
            .cache(mode)
            .cache_dir(&dir)
            .build()
    };
    let (cold_rows, cold) = session(CacheMode::ReadWrite)
        .experiment("late_sender")
        .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
        .run_with_stats()
        .unwrap();
    assert_eq!((cold.cache_mode, cold.cache_misses), ("rw", 2));
    let (warm_rows, warm) = session(CacheMode::Read)
        .experiment("late_sender")
        .sweep(Sweep::seconds("extrawork", [0.005, 0.01]))
        .run_with_stats()
        .unwrap();
    assert_eq!((warm.cache_mode, warm.cache_hits), ("ro", 2));
    assert_eq!(warm.cache_bytes_written, 0, "ro never writes");
    assert_eq!(rendered(&cold_rows), rendered(&warm_rows));
    let _ = std::fs::remove_dir_all(&dir);
}
