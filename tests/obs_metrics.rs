//! Integration contract of the self-observability layer: manifests are
//! deterministic where they promise to be, recording never changes
//! results, and every instrumented subsystem shows up in the exports.

use ats::harness::{ParamValues, Session};
use ats_fuzz::campaign::{run_campaign, FuzzConfig};
use ats_obs::ObsConfig;

fn fresh_session(jobs: usize) -> Session {
    Session::builder()
        .procs(4)
        .jobs(jobs)
        .seed(0xDE7E_12A1)
        .obs(ObsConfig::fresh())
        .build()
}

fn late_sender_params() -> ParamValues {
    ParamValues::defaults(ats::harness::spec_of("late_sender").unwrap())
}

/// Run a fixed workload (a sweep plus a single analysis) and return the
/// session's manifest.
fn manifest_for(jobs: usize) -> ats_obs::RunManifest {
    let session = fresh_session(jobs);
    let exp = session
        .experiment("late_sender")
        .sweep(ats::harness::experiment::Sweep::seconds(
            "extrawork",
            [0.01, 0.02, 0.04],
        ));
    exp.run().unwrap();
    session
        .run_and_analyze("late_sender", &late_sender_params())
        .unwrap();
    session.manifest("obs_metrics").unwrap()
}

#[test]
fn deterministic_manifest_is_jobs_invariant() {
    let serial = manifest_for(1);
    let parallel = manifest_for(4);
    assert_eq!(
        serial.deterministic_json(),
        parallel.deterministic_json(),
        "deterministic manifest section must not depend on worker count"
    );
    // And the deterministic section actually carries the workload.
    assert!(serial.metrics["ats_mpisim_runs_total"] >= 4);
    assert!(serial.metrics["ats_mpisim_events_total"] > 0);
    assert!(serial.metrics["ats_analyzer_analyses_total"] >= 4);
}

#[test]
fn span_totals_reconcile_with_wall_time() {
    let session = fresh_session(1);
    let started = std::time::Instant::now();
    session
        .run_and_analyze("late_sender", &late_sender_params())
        .unwrap();
    let wall = started.elapsed().as_secs_f64();
    let h = session.obs().unwrap();
    // Every analyzer pass ran exactly once...
    assert_eq!(h.analyzer.extract_time.count(), 1);
    assert_eq!(h.analyzer.severity_time.count(), 1);
    // ...and the serial pass timings sum to no more than the elapsed wall
    // time (generous factor: coarse clocks can round individual spans up).
    let span_total = h.analyzer.extract_time.sum_secs()
        + h.analyzer.late_sender_time.sum_secs()
        + h.analyzer.late_receiver_time.sum_secs()
        + h.analyzer.wrong_order_time.sum_secs()
        + h.analyzer.collective_time.sum_secs()
        + h.analyzer.critical_time.sum_secs()
        + h.analyzer.severity_time.sum_secs();
    assert!(
        span_total <= wall * 2.0 + 0.05,
        "span total {span_total}s vs wall {wall}s"
    );
}

#[test]
fn recording_does_not_change_traces() {
    let observed = fresh_session(1);
    let unobserved = Session::builder().procs(4).seed(0xDE7E_12A1).build();
    assert!(unobserved.obs().is_none());
    let params = late_sender_params();
    let a = observed.run("late_sender", &params).unwrap();
    let b = unobserved.run("late_sender", &params).unwrap();
    let mut bytes_a = Vec::new();
    let mut bytes_b = Vec::new();
    ats::trace::binfmt::write_binary(&a, &mut bytes_a).unwrap();
    ats::trace::binfmt::write_binary(&b, &mut bytes_b).unwrap();
    assert_eq!(bytes_a, bytes_b, "observability must not perturb traces");
    // The observed run did record.
    assert!(observed.obs().unwrap().mpi.events.get() > 0);
}

#[test]
fn prometheus_export_covers_every_instrumented_subsystem() {
    let session = fresh_session(2);
    session
        .run_and_analyze("late_sender", &late_sender_params())
        .unwrap();
    // A tiny fuzz campaign through the same session's registry.
    let cfg = FuzzConfig {
        count: 2,
        ..FuzzConfig::for_session(&session)
    };
    run_campaign(&cfg).unwrap();
    let text = session.prometheus().unwrap();
    for prefix in [
        "ats_mpisim_",
        "ats_trace_",
        "ats_pool_",
        "ats_analyzer_",
        "ats_fuzz_",
    ] {
        assert!(text.contains(prefix), "missing {prefix} in:\n{text}");
    }
    let h = session.obs().unwrap();
    assert!(h.fuzz.scenarios.get() >= 2);
    assert!(h.pool.tasks.get() >= 2);
}

#[test]
fn manifest_config_excludes_execution_details() {
    let m = manifest_for(3);
    let config = serde_json::to_string(&m.config).unwrap();
    assert!(!config.contains("jobs"), "config leaked jobs: {config}");
    assert!(
        !config.contains("thread_budget"),
        "config leaked budget: {config}"
    );
}
