//! The streaming-ingest contract (PR 9 tentpole): analyzing a trace by
//! streaming its column blocks — one location at a time, reused buffers,
//! never materializing the whole trace — must produce a report identical
//! to materializing and analyzing in memory. Checked differentially over
//! the full positive catalog, both rank-execution backends, and both
//! on-disk formats; where JSON export is available the comparison is to
//! the byte.

use ats::analyzer::{analyze, analyze_stream, AnalysisReport, AnalyzerConfig};
use ats::harness::{run_single, ParamValue, ParamValues, RunOpts};
use ats::mpi::SimBackend;
use ats::trace::{binfmt, io, Trace};

/// Positive catalog entries: every spec with a localized expected
/// property — the traces whose findings the analyzer must reproduce
/// exactly through the streaming path.
fn positives() -> impl Iterator<Item = &'static ats::core::PropertySpec> {
    ats::core::CATALOG
        .iter()
        .filter(|s| s.expected_property.is_some())
}

fn assert_reports_identical(ctx: &str, direct: &AnalysisReport, streamed: &AnalysisReport) {
    assert_eq!(
        direct.threshold,
        streamed.threshold,
        "{ctx}: threshold diverged"
    );
    assert_eq!(
        direct.findings.len(),
        streamed.findings.len(),
        "{ctx}: finding count diverged"
    );
    for (d, s) in direct.findings.iter().zip(&streamed.findings) {
        assert_eq!(d.property, s.property, "{ctx}");
        assert_eq!(d.call_path, s.call_path, "{ctx}: {}", d.property);
        assert_eq!(d.wait, s.wait, "{ctx}: {}", d.property);
        assert_eq!(
            d.severity.to_bits(),
            s.severity.to_bits(),
            "{ctx}: {} severity not bit-identical",
            d.property
        );
        assert_eq!(d.locations, s.locations, "{ctx}: {}", d.property);
    }
}

/// Whether the JSONL leg is usable: the offline test harness links a
/// stub serde that cannot round-trip JSON, in which case only the
/// binary leg carries the differential check (CI exercises both).
fn jsonl_round_trips(trace: &Trace) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    io::write_jsonl(trace, &mut buf).ok()?;
    io::read_auto(buf.as_slice()).ok()?;
    Some(buf)
}

#[test]
fn streaming_matches_materializing_across_the_positive_catalog() {
    let config = AnalyzerConfig::default();
    let mut legs = 0usize;
    let mut jsonl_legs = 0usize;
    for spec in positives() {
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(2));
        for backend in [SimBackend::Event, SimBackend::Thread] {
            let opts = RunOpts::default().procs(4).backend(backend);
            let trace = run_single(spec.name, &params, &opts)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            let direct = analyze(&trace, &config);

            let ctx = format!("{} [{backend:?}] atsb", spec.name);
            let mut atsb = Vec::new();
            binfmt::write_binary(&trace, &mut atsb).unwrap();
            let (streamed, stats) = analyze_stream(atsb.as_slice(), &config)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_reports_identical(&ctx, &direct, &streamed);
            assert_eq!(stats.events as usize, trace.num_events(), "{ctx}");
            assert_eq!(stats.locations as usize, trace.locations.len(), "{ctx}");
            assert_eq!(stats.bytes as usize, atsb.len(), "{ctx}: bytes consumed");
            legs += 1;

            if let Some(jsonl) = jsonl_round_trips(&trace) {
                let ctx = format!("{} [{backend:?}] jsonl", spec.name);
                let (streamed, stats) = analyze_stream(jsonl.as_slice(), &config)
                    .unwrap_or_else(|e| panic!("{ctx}: {e}"));
                assert_reports_identical(&ctx, &direct, &streamed);
                assert_eq!(stats.bytes as usize, jsonl.len(), "{ctx}: bytes consumed");
                // With real serde the exported documents must match to
                // the byte, not just field by field.
                assert_eq!(direct.to_json(), streamed.to_json(), "{ctx}: JSON export");
                jsonl_legs += 1;
            } else {
                eprintln!("skipping {} [{backend:?}] jsonl: JSON round-trip unavailable in this environment", spec.name);
            }
        }
    }
    assert!(
        legs >= 40,
        "positive catalog unexpectedly small: {legs} binary legs"
    );
    // Either every JSONL leg ran (real serde) or none did (stub).
    assert!(
        jsonl_legs == 0 || jsonl_legs == legs,
        "JSONL availability varied mid-run: {jsonl_legs}/{legs}"
    );
}
