//! Integration tests for the `ats-fuzz` subsystem: cross-worker
//! determinism of generation and oracle verdicts, the oracle catching a
//! deliberately mis-calibrated analyzer, shrinking the witness to a
//! minimal scenario, and reproducing it from the persisted corpus.

use ats_analyzer::AnalyzerConfig;
use ats_fuzz::campaign::{run_campaign, scenario_seed, FuzzConfig};
use ats_fuzz::{corpus, generate, shrink, GenConfig, OracleConfig, ViolationKind};
use ats_harness::RunOpts;
use std::path::PathBuf;

/// Same seed ⇒ byte-identical scenario and identical oracle verdicts,
/// whether the campaign runs serially or on four workers.
#[test]
fn campaign_verdicts_are_identical_across_worker_counts() {
    let mk = |jobs: usize| FuzzConfig {
        base_seed: 0x5EED_F00D,
        count: 6, // covers >= 3 distinct scenario seeds as required
        jobs,
        shrink: false,
        ..FuzzConfig::default()
    };
    let serial = run_campaign(&mk(1)).expect("serial campaign");
    let parallel = run_campaign(&mk(4)).expect("parallel campaign");
    assert_eq!(serial.verdicts.len(), parallel.verdicts.len());
    for (a, b) in serial.verdicts.iter().zip(&parallel.verdicts) {
        // Verdicts carry index, seed, phase/event counts, and violations:
        // byte-compare their JSON forms.
        assert_eq!(
            serde_json::to_string(a).unwrap(),
            serde_json::to_string(b).unwrap(),
            "index {} diverges across jobs=1 vs jobs=4",
            a.index
        );
    }
    // And the scenarios themselves regenerate byte-identically.
    for v in &serial.verdicts {
        let once = serde_json::to_string(&generate(v.seed, &GenConfig::default())).unwrap();
        let twice = serde_json::to_string(&generate(v.seed, &GenConfig::default())).unwrap();
        assert_eq!(once, twice);
    }
}

/// With the honest default analyzer, a 200-scenario campaign is clean:
/// zero violations, zero generator nondeterminism. This is the same run
/// the CI smoke job performs through the `fuzz` binary.
#[test]
#[ignore = "minutes-long; run explicitly or via the fuzz bench binary"]
fn honest_analyzer_survives_two_hundred_scenarios() {
    let cfg = FuzzConfig {
        count: 200,
        ..FuzzConfig::default()
    };
    let result = run_campaign(&cfg).expect("campaign");
    assert_eq!(result.stats.violations, 0, "{:#?}", result.minimized);
    assert_eq!(result.stats.regen_mismatches, 0);
}

/// The full defect-to-regression-guard loop: a mis-calibrated analyzer
/// (threshold 0.9 — it misses everything) yields Missed violations; the
/// shrinker reduces the witness to at most two phases; the minimized spec
/// persists to a corpus and replaying it reproduces the same failure.
#[test]
fn broken_analyzer_is_caught_shrunk_persisted_and_reproduced() {
    let broken = OracleConfig {
        analyzer: AnalyzerConfig::default().threshold(0.9),
        ..OracleConfig::default()
    };
    let opts = RunOpts::default();
    let gen_cfg = GenConfig::default();

    // Find a violating scenario (with a broken analyzer, almost any).
    let (sc, violations) = (0..50u64)
        .map(|i| scenario_seed(0xBAD_CA5E, i as usize))
        .find_map(|seed| {
            let sc = generate(seed, &gen_cfg);
            let v = ats_fuzz::oracle::violations_of(&sc, &broken, &opts).expect("oracle");
            (!v.is_empty()).then_some((sc, v))
        })
        .expect("a broken analyzer must violate some scenario");
    assert!(violations.iter().any(|v| v.kind == ViolationKind::Missed));

    // Shrink: the witness collapses to a near-minimal scenario.
    let out = shrink(&sc, &violations, &broken, &opts, 150);
    assert!(
        out.phases_after <= 2,
        "shrinker left {} phases: {}",
        out.phases_after,
        out.scenario
    );

    // Persist to a scratch corpus next to the system temp dir.
    let dir = std::env::temp_dir().join(format!("ats-fuzz-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let run = ats_fuzz::check(&out.scenario, &broken, &opts).expect("check minimized");
    let spec_path: PathBuf =
        corpus::persist(&dir, &out.scenario, &out.violations, &run.trace).expect("persist");
    assert!(spec_path.exists());

    // Replay from disk with the same broken analyzer: the failure
    // reproduces with the same (kind, property) identity.
    let results = corpus::replay(&dir, &broken, &opts).expect("replay");
    assert_eq!(results.len(), 1);
    let replayed: Vec<_> = results[0].violations.iter().map(|v| v.key()).collect();
    assert!(
        out.violations.iter().any(|v| replayed.contains(&v.key())),
        "replayed violations {replayed:?} lost the original identity"
    );

    // And with the honest analyzer the same corpus is clean — exactly
    // what the regression guard asserts after a fix lands.
    let honest = corpus::replay(&dir, &OracleConfig::default(), &opts).expect("replay honest");
    assert!(
        honest[0].violations.is_empty(),
        "{:#?}",
        honest[0].violations
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Scenario seeds derived from a base seed are stable across releases:
/// they are part of the corpus provenance story (a persisted scenario
/// records the seed it came from).
#[test]
fn scenario_seed_derivation_is_pinned() {
    let a = scenario_seed(0, 0);
    let b = scenario_seed(0, 1);
    let c = scenario_seed(1, 0);
    assert_ne!(a, b);
    assert_ne!(a, c);
    // Re-deriving gives the same values (pure function of base + index).
    assert_eq!(a, scenario_seed(0, 0));
    assert_eq!(b, scenario_seed(0, 1));
}
