//! Property-based tests over the suite's core invariants.
//!
//! These are the "laws" DESIGN.md commits to: distribution algebra, trace
//! well-formedness for arbitrary property programs, analyzer severity
//! bounds, send/receive matching bijections, and parameter-string round
//! trips.

use ats::analyzer::{analyze, AnalyzerConfig};
use ats::core::Distr;
use ats::harness::{run_single, ParamValue, ParamValues, RunOpts};
use ats::trace::check_wellformed;
use proptest::prelude::*;

/// Strategy: an arbitrary parameterized distribution.
fn distr_strategy() -> impl Strategy<Value = Distr> {
    let v = 0.0..0.1f64;
    prop_oneof![
        (0.0..0.1f64).prop_map(Distr::same),
        (v.clone(), v.clone()).prop_map(|(a, b)| Distr::cyclic2(a, b)),
        (v.clone(), v.clone()).prop_map(|(a, b)| Distr::block2(a, b)),
        (v.clone(), v.clone()).prop_map(|(a, b)| Distr::linear(a, b)),
        (v.clone(), v.clone(), 0usize..16).prop_map(|(a, b, n)| Distr::peak(a, b, n)),
        (v.clone(), v.clone(), v.clone()).prop_map(|(a, b, c)| Distr::cyclic3(a, b, c)),
        (v.clone(), v.clone(), v).prop_map(|(a, b, c)| Distr::block3(a, b, c)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Scaling law: df(me, sz, k·s) == k·df(me, sz, s).
    #[test]
    fn distribution_scaling_is_linear(
        df in distr_strategy(),
        sz in 1usize..32,
        scale in 0.1..4.0f64,
    ) {
        for me in 0..sz {
            let direct = df.value(me, sz, scale);
            let scaled = df.value(me, sz, 1.0) * scale;
            prop_assert!((direct - scaled).abs() < 1e-9);
        }
    }

    /// Values are bounded by the distribution's parameter extremes.
    #[test]
    fn distribution_values_within_parameter_range(
        df in distr_strategy(),
        sz in 1usize..32,
    ) {
        let values = df.values(sz, 1.0);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // All parameter magnitudes are in [0, 0.1].
        prop_assert!(lo >= -1e-12);
        prop_assert!(hi <= 0.1 + 1e-12);
    }

    /// The imbalance statistic equals max - min of the assigned values.
    #[test]
    fn imbalance_matches_minmax(df in distr_strategy(), sz in 1usize..24) {
        let v = df.values(sz, 1.0);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((df.imbalance(sz, 1.0) - (hi - lo)).abs() < 1e-12);
    }

    /// Parse/print round trip for distribution specs.
    #[test]
    fn distribution_spec_roundtrip(df in distr_strategy()) {
        let printed = df.to_string();
        let parsed: Distr = printed.parse().expect("own output parses");
        prop_assert_eq!(parsed, df);
    }

    /// Arbitrary imbalance programs produce wellformed traces and bounded
    /// severities, and detected waits never exceed total allocation time.
    #[test]
    fn barrier_programs_wellformed_and_bounded(
        df in distr_strategy(),
        nprocs in 2usize..9,
        reps in 1usize..4,
    ) {
        let spec = ats::core::catalog::find("imbalance_at_mpi_barrier").unwrap();
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(reps));
        // Inject the generated distribution through its string form.
        let tokens = format!("df={df}");
        let params = if matches!(df, Distr::Custom(_)) {
            params
        } else {
            ParamValues::from_args(spec, &[&tokens, &format!("r={reps}")]).unwrap()
        };
        let trace = run_single(
            "imbalance_at_mpi_barrier",
            &params,
            &RunOpts::default().procs(nprocs),
        )
        .unwrap();
        prop_assert!(check_wellformed(&trace).is_empty());
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        let sev = report.severity_of("WaitAtBarrier");
        prop_assert!((0.0..=1.0).contains(&sev), "severity {sev}");
        // Balanced inputs yield zero severity; imbalanced inputs nonzero.
        if df.is_balanced(nprocs) {
            prop_assert_eq!(sev, 0.0);
        } else if df.imbalance(nprocs, 1.0) > 1e-3 {
            prop_assert!(sev > 0.0);
        }
    }

    /// Late-sender programs: every send matches exactly one receive, and
    /// the analyzer's total wait equals reps x extrawork x pairs.
    #[test]
    fn late_sender_wait_arithmetic(
        extra_ms in 1u64..60,
        reps in 1usize..4,
        pairs in 1usize..4,
    ) {
        let nprocs = pairs * 2;
        let spec = ats::core::catalog::find("late_sender").unwrap();
        let params = ParamValues::from_args(
            spec,
            &[
                &format!("extrawork={}", extra_ms as f64 / 1000.0),
                "basework=0.002",
                &format!("r={reps}"),
            ],
        )
        .unwrap();
        let trace = run_single("late_sender", &params, &RunOpts::default().procs(nprocs)).unwrap();
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        let total_wait: f64 = report
            .findings_for("LateSender")
            .iter()
            .map(|f| f.wait.as_secs())
            .sum();
        let expected = extra_ms as f64 / 1000.0 * reps as f64 * pairs as f64;
        prop_assert!(
            (total_wait - expected).abs() < 1e-9,
            "wait {total_wait} != programmed {expected}"
        );
    }

    /// Parameter assignments round-trip through their CLI representation.
    #[test]
    fn param_cli_roundtrip(extra in 0.001..0.2f64, reps in 1usize..20, root in 0usize..4) {
        let spec = ats::core::catalog::find("late_broadcast").unwrap();
        let params = ParamValues::from_args(
            spec,
            &[
                &format!("extrawork={extra}"),
                &format!("r={reps}"),
                &format!("root={root}"),
            ],
        )
        .unwrap();
        let cli = params.to_cli();
        let tokens: Vec<&str> = cli.split(' ').collect();
        let back = ParamValues::from_args(spec, &tokens).unwrap();
        prop_assert_eq!(params, back);
    }
}

proptest! {
    // Heavier cases: fewer iterations.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fuzz the whole catalog: a random entry with a randomly scaled
    /// severity knob and process count must run, produce a wellformed
    /// trace, and (for positive cases with a visible knob) be detected.
    #[test]
    fn random_catalog_entry_runs_and_detects(
        idx in 0usize..ats::core::CATALOG.len(),
        knob_ms in 5u64..60,
        nprocs in 2usize..7,
    ) {
        let spec = &ats::core::CATALOG[idx];
        let mut params = ParamValues::defaults(spec);
        params.set("r", ParamValue::Count(1));
        // Scale whichever severity knob the entry has.
        for knob in ["extrawork", "baseextrawork", "singlework", "masterwork",
                     "bodywork", "delay"] {
            if spec.params.iter().any(|p| p.name == knob) {
                params.set(knob, ParamValue::Seconds(knob_ms as f64 / 1000.0));
            }
        }
        // Keep root valid for the given nprocs.
        if spec.params.iter().any(|p| p.name == "root") {
            params.set("root", ParamValue::Count(knob_ms as usize % nprocs));
        }
        let trace = run_single(spec.name, &params, &RunOpts::default().procs(nprocs)).unwrap();
        prop_assert!(check_wellformed(&trace).is_empty(), "{} malformed", spec.name);
        let report = analyze(&trace, &AnalyzerConfig::default());
        match spec.expected_property {
            Some(expected) => {
                prop_assert!(
                    report.severity_of(expected) > 0.0,
                    "{}: {expected} undetected at {} procs, params {}",
                    spec.name, nprocs, params.to_cli()
                );
            }
            None => {
                prop_assert!(
                    report.is_clean(),
                    "{}: negative case found {:?}",
                    spec.name,
                    report.findings
                );
            }
        }
    }

    /// Traces serialize/deserialize losslessly for arbitrary programs.
    #[test]
    fn trace_serialization_lossless(
        df in distr_strategy(),
        nprocs in 2usize..6,
    ) {
        let spec = ats::core::catalog::find("imbalance_at_mpi_alltoall").unwrap();
        let params = match ParamValues::from_args(spec, &[&format!("df={df}"), "r=1"]) {
            Ok(p) => p,
            Err(_) => ParamValues::defaults(spec),
        };
        let trace = run_single(
            "imbalance_at_mpi_alltoall",
            &params,
            &RunOpts::default().procs(nprocs),
        )
        .unwrap();
        let mut buf = Vec::new();
        ats::trace::io::write_jsonl(&trace, &mut buf).unwrap();
        let back = ats::trace::io::read_jsonl(buf.as_slice()).unwrap();
        prop_assert_eq!(&back.locations, &trace.locations);
        prop_assert_eq!(&back.regions, &trace.regions);
        prop_assert_eq!(&back.comms, &trace.comms);
    }

    /// OpenMP programs: join time equals the slowest thread, regardless of
    /// the distribution shape.
    #[test]
    fn omp_join_equals_slowest_thread(
        df in distr_strategy(),
        nthreads in 1usize..7,
    ) {
        use ats::omp::{parallel, run_omp, OmpConfig};
        use ats::runtime::MachineModel;
        let dfc = df.clone();
        let trace = run_omp(
            OmpConfig { model: MachineModel::zero(), ..Default::default() },
            move |m| {
                parallel(m, nthreads, |th| {
                    ats::core::par_do_omp_work(th, &dfc, 1.0);
                });
            },
        );
        prop_assert!(check_wellformed(&trace).is_empty());
        let slowest = df
            .values(nthreads, 1.0)
            .into_iter()
            .fold(0.0f64, f64::max)
            .max(0.0);
        let end = trace.end_time().as_secs();
        prop_assert!((end - slowest).abs() < 1e-9, "end {end} vs slowest {slowest}");
    }
}
