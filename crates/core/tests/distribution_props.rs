//! Property-based tests for distribution edge cases (paper §3.1.2):
//! degenerate group sizes, remainder ranks of the three-way shapes,
//! zero-width blocks, and structural invariants that must hold for every
//! shape at every size.

use ats_core::Distr;
use proptest::prelude::*;

/// Finite, reasonably-sized work values (seconds-ish magnitudes).
fn work_value() -> impl Strategy<Value = f64> {
    (0.0f64..10.0).prop_map(|v| (v * 1e6).round() / 1e6)
}

/// Any parameterized (non-custom) shape with values from `work_value`.
fn any_distr() -> impl Strategy<Value = Distr> {
    prop_oneof![
        work_value().prop_map(Distr::same),
        (work_value(), work_value()).prop_map(|(l, h)| Distr::cyclic2(l, h)),
        (work_value(), work_value()).prop_map(|(l, h)| Distr::block2(l, h)),
        (work_value(), work_value()).prop_map(|(l, h)| Distr::linear(l, h)),
        (work_value(), work_value(), 0usize..32).prop_map(|(l, h, n)| Distr::peak(l, h, n)),
        (work_value(), work_value(), work_value()).prop_map(|(l, m, h)| Distr::cyclic3(l, m, h)),
        (work_value(), work_value(), work_value()).prop_map(|(l, m, h)| Distr::block3(l, m, h)),
    ]
}

proptest! {
    /// Every shape yields exactly one value per participant, all finite.
    #[test]
    fn values_cover_the_group(d in any_distr(), sz in 1usize..40) {
        let vals = d.values(sz, 1.0);
        prop_assert_eq!(vals.len(), sz);
        prop_assert!(vals.iter().all(|v| v.is_finite()));
    }

    /// A group of one is always balanced: whatever the shape, a single
    /// participant cannot be imbalanced against anyone.
    #[test]
    fn singleton_groups_are_balanced(d in any_distr()) {
        prop_assert!(d.is_balanced(1));
        prop_assert_eq!(d.imbalance(1, 1.0), 0.0);
    }

    /// `df_peak` at `sz = 1`: the clamped peak rank *is* rank 0, so the
    /// sole participant receives `high`, not `low`.
    #[test]
    fn peak_singleton_takes_high(low in work_value(), high in work_value(), n in 0usize..32) {
        let d = Distr::peak(low, high, n);
        prop_assert_eq!(d.values(1, 1.0), vec![high]);
    }

    /// `df_peak`: exactly one participant gets `high` (all others `low`),
    /// and an out-of-range peak index clamps to the last rank.
    #[test]
    fn peak_has_exactly_one_peak(
        low in work_value(),
        extra in 0.001f64..10.0,
        n in 0usize..32,
        sz in 1usize..20,
    ) {
        let high = low + extra; // strictly distinguishable from low
        let d = Distr::peak(low, high, n);
        let vals = d.values(sz, 1.0);
        let peaks = vals.iter().filter(|&&v| (v - high).abs() < 1e-12).count();
        prop_assert_eq!(peaks, 1, "{:?}", vals);
        let expected_idx = n.min(sz - 1);
        prop_assert!((vals[expected_idx] - high).abs() < 1e-12);
    }

    /// `df_cyclic3` remainder ranks: rank `i` always gets the `i % 3`-th
    /// value, regardless of how the group size relates to 3.
    #[test]
    fn cyclic3_remainder_ranks(
        low in work_value(), med in work_value(), high in work_value(),
        sz in 1usize..30,
    ) {
        let d = Distr::cyclic3(low, med, high);
        let vals = d.values(sz, 1.0);
        for (i, v) in vals.iter().enumerate() {
            let expect = [low, med, high][i % 3];
            prop_assert!((v - expect).abs() < 1e-12, "rank {i} of {sz}: {v} != {expect}");
        }
    }

    /// `df_block3` with fewer participants than blocks: ceil-sized blocks
    /// mean small groups lose the *later* blocks entirely — `sz = 2`
    /// yields `[low, med]` (no high block), `sz = 1` just `[low]`.
    #[test]
    fn block3_small_groups_drop_later_blocks(
        low in work_value(), med in work_value(), high in work_value(),
    ) {
        let d = Distr::block3(low, med, high);
        prop_assert_eq!(d.values(1, 1.0), vec![low]);
        prop_assert_eq!(d.values(2, 1.0), vec![low, med]);
        prop_assert_eq!(d.values(3, 1.0), vec![low, med, high]);
    }

    /// `df_block3` block widths at any size: the first two blocks take
    /// `ceil(sz/3)` members each and the last takes the remainder (which
    /// may be zero-width).
    #[test]
    fn block3_widths_follow_ceil(
        low in 0.0f64..1.0, med in 2.0f64..3.0, high in 4.0f64..5.0,
        sz in 1usize..40,
    ) {
        let d = Distr::block3(low, med, high);
        let vals = d.values(sz, 1.0);
        let third = sz.div_ceil(3);
        let lows = vals.iter().filter(|&&v| v < 1.5).count();
        let meds = vals.iter().filter(|&&v| (1.5..3.5).contains(&v)).count();
        let highs = vals.iter().filter(|&&v| v > 3.5).count();
        prop_assert_eq!(lows, third.min(sz));
        prop_assert_eq!(meds, sz.saturating_sub(third).min(third));
        prop_assert_eq!(highs, sz.saturating_sub(2 * third));
    }

    /// `df_block2` zero-width second block: with `sz = 1` the first
    /// (ceil-sized) block swallows the whole group and `high` never
    /// appears.
    #[test]
    fn block2_singleton_is_all_low(low in work_value(), high in work_value()) {
        let d = Distr::block2(low, high);
        prop_assert_eq!(d.values(1, 1.0), vec![low]);
    }

    /// `df_block2` split point: exactly `ceil(sz/2)` members get `low`.
    #[test]
    fn block2_first_block_is_ceil_half(sz in 1usize..40) {
        let d = Distr::block2(1.0, 2.0);
        let vals = d.values(sz, 1.0);
        let lows = vals.iter().filter(|&&v| v == 1.0).count();
        prop_assert_eq!(lows, sz.div_ceil(2));
        // And the blocks are contiguous.
        prop_assert!(vals.windows(2).all(|w| w[0] <= w[1]));
    }

    /// `df_linear` degenerate group: a singleton takes `low` exactly
    /// (never NaN from the 0/0 interpolation).
    #[test]
    fn linear_singleton_takes_low(low in work_value(), high in work_value()) {
        let d = Distr::linear(low, high);
        prop_assert_eq!(d.values(1, 1.0), vec![low]);
    }

    /// `df_linear` endpoints and monotonicity for `sz >= 2`.
    #[test]
    fn linear_hits_both_endpoints(low in work_value(), high in work_value(), sz in 2usize..40) {
        let d = Distr::linear(low, high);
        let vals = d.values(sz, 1.0);
        prop_assert!((vals[0] - low).abs() < 1e-9);
        prop_assert!((vals[sz - 1] - high).abs() < 1e-9);
        if high >= low {
            prop_assert!(vals.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        } else {
            prop_assert!(vals.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        }
    }

    /// Scaling is proportional for every shape, rank, and size.
    #[test]
    fn scale_is_proportional(d in any_distr(), sz in 1usize..20, scale in 0.0f64..100.0) {
        let base = d.values(sz, 1.0);
        let scaled = d.values(sz, scale);
        for (b, s) in base.iter().zip(&scaled) {
            prop_assert!((b * scale - s).abs() < 1e-9 * (1.0 + b.abs() * scale));
        }
    }

    /// Imbalance is non-negative and zero exactly when balanced.
    #[test]
    fn imbalance_is_nonnegative(d in any_distr(), sz in 1usize..20) {
        let imb = d.imbalance(sz, 1.0);
        prop_assert!(imb >= 0.0);
        if d.is_balanced(sz) {
            prop_assert!(imb < 1e-9);
        } else {
            prop_assert!(imb > 0.0);
        }
    }

    /// Display/FromStr round-trips for every generated shape.
    #[test]
    fn display_parse_round_trips(d in any_distr()) {
        let printed = d.to_string();
        let back: Distr = printed.parse().unwrap();
        prop_assert_eq!(back, d);
    }
}
