//! The property catalog: machine-readable metadata about every property
//! function in the suite.
//!
//! This is the information the paper's single-property test-program
//! generator extracts from the C function signatures with PDT; here it is
//! first-class data, consumed by `ats-harness` to generate runnable test
//! programs, drive parameter sweeps, and score analyzer output against the
//! *expected* finding and its location.

use serde::Serialize;

/// Which programming paradigm a property function exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Paradigm {
    /// MPI point-to-point.
    MpiP2p,
    /// MPI collective.
    MpiCollective,
    /// OpenMP.
    Omp,
    /// Combined MPI × OpenMP.
    Hybrid,
    /// Single-process / serialization.
    Sequential,
    /// Well-tuned negative case.
    Negative,
}

/// Type of one property-function parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ParamKind {
    /// Work amount in seconds.
    Seconds,
    /// Non-negative integer (repetitions, root rank, thread count, ...).
    Count,
    /// A distribution spec (see [`crate::Distr`]'s `FromStr`).
    Distribution,
}

/// One parameter of a property function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ParamSpec {
    /// Parameter name as it appears on generated command lines.
    pub name: &'static str,
    /// Parameter type.
    pub kind: ParamKind,
    /// Default value (in the command-line syntax).
    pub default: &'static str,
    /// Inclusive lower bound of the legal range (command-line syntax);
    /// `""` means unbounded below. Distribution parameters leave both
    /// bounds empty.
    pub min: &'static str,
    /// Inclusive upper bound of the legal range; `""` means unbounded
    /// above (e.g. a root rank, bounded only by the communicator size).
    pub max: &'static str,
    /// Human-readable meaning.
    pub help: &'static str,
}

impl ParamSpec {
    /// The declared `[min, max]` range as floats, substituting `0` /
    /// `+inf` for missing bounds. Meaningful for `Seconds` and `Count`
    /// parameters; `Distribution` parameters report the full range.
    pub fn range_f64(&self) -> (f64, f64) {
        let lo = self.min.parse::<f64>().unwrap_or(0.0);
        let hi = self.max.parse::<f64>().unwrap_or(f64::INFINITY);
        (lo, hi)
    }

    /// True if either bound is declared.
    pub fn has_range(&self) -> bool {
        !self.min.is_empty() || !self.max.is_empty()
    }

    /// Render the declared range as `[min, max]` (with `..` for a
    /// missing bound), or `None` when no bound is declared.
    pub fn range_display(&self) -> Option<String> {
        if !self.has_range() {
            return None;
        }
        let lo = if self.min.is_empty() { ".." } else { self.min };
        let hi = if self.max.is_empty() { ".." } else { self.max };
        Some(format!("[{lo}, {hi}]"))
    }
}

/// Metadata for one property function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PropertySpec {
    /// Function name (also the trace region the function frames).
    pub name: &'static str,
    /// Paradigm.
    pub paradigm: Paradigm,
    /// Parameters, in call order.
    pub params: &'static [ParamSpec],
    /// What the function produces.
    pub description: &'static str,
    /// The analyzer property a correct tool must report for this function
    /// (`None` for negative cases, which must yield no finding).
    pub expected_property: Option<&'static str>,
    /// The MPI/OpenMP call region at which the property must be localized.
    pub localized_at: &'static str,
    /// Whether the function appears in the paper's prototype list
    /// (§3.1.5) or is an ATS-RS extension from the ASL catalog.
    pub in_paper_prototype: bool,
}

const P_REPS: ParamSpec = ParamSpec {
    name: "r",
    kind: ParamKind::Count,
    default: "3",
    min: "1",
    max: "64",
    help: "repetitions of the property body",
};
const P_ROOT: ParamSpec = ParamSpec {
    name: "root",
    kind: ParamKind::Count,
    default: "0",
    min: "0",
    max: "",
    help: "root rank (communicator-local)",
};
const P_BASEWORK: ParamSpec = ParamSpec {
    name: "basework",
    kind: ParamKind::Seconds,
    default: "0.01",
    min: "0",
    max: "1",
    help: "work performed by every rank",
};
const P_EXTRAWORK: ParamSpec = ParamSpec {
    name: "extrawork",
    kind: ParamKind::Seconds,
    default: "0.04",
    min: "0",
    max: "1",
    help: "additional work for the late side (the severity knob)",
};
const P_ROOTWORK: ParamSpec = ParamSpec {
    name: "rootwork",
    kind: ParamKind::Seconds,
    default: "0.005",
    min: "0",
    max: "1",
    help: "work performed by the root",
};
const P_BASEEXTRA: ParamSpec = ParamSpec {
    name: "baseextrawork",
    kind: ParamKind::Seconds,
    default: "0.04",
    min: "0",
    max: "1",
    help: "additional work for the non-root ranks (the severity knob)",
};
const P_DISTR: ParamSpec = ParamSpec {
    name: "df",
    kind: ParamKind::Distribution,
    default: "block2:low=0.01,high=0.05",
    min: "",
    max: "",
    help: "work distribution over the group",
};
const P_NTHREADS: ParamSpec = ParamSpec {
    name: "nthreads",
    kind: ParamKind::Count,
    default: "4",
    min: "1",
    max: "16",
    help: "OpenMP team size",
};
const P_WORK: ParamSpec = ParamSpec {
    name: "work",
    kind: ParamKind::Seconds,
    default: "0.01",
    min: "0",
    max: "1",
    help: "balanced per-participant work",
};

/// The full catalog.
pub const CATALOG: &[PropertySpec] = &[
    // ---- MPI point-to-point (paper prototype) --------------------------
    PropertySpec {
        name: "late_sender",
        paradigm: Paradigm::MpiP2p,
        params: &[P_BASEWORK, P_EXTRAWORK, P_REPS],
        description: "receiver blocks in MPI_Recv because the send is posted late",
        expected_property: Some("LateSender"),
        localized_at: "MPI_Recv",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "late_receiver",
        paradigm: Paradigm::MpiP2p,
        params: &[P_BASEWORK, P_EXTRAWORK, P_REPS],
        description: "synchronous sender blocks because the receive is posted late",
        expected_property: Some("LateReceiver"),
        localized_at: "MPI_Ssend",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "late_sender_at_wait",
        paradigm: Paradigm::MpiP2p,
        params: &[
            P_BASEWORK,
            P_EXTRAWORK,
            ParamSpec {
                name: "postwork",
                kind: ParamKind::Seconds,
                default: "0.01",
                min: "0",
                max: "1",
                help: "work overlapped between MPI_Irecv and MPI_Wait",
            },
            P_REPS,
        ],
        description: "late sender surfacing at MPI_Wait after an overlapped MPI_Irecv",
        expected_property: Some("LateSender"),
        localized_at: "MPI_Wait",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "messages_in_wrong_order",
        paradigm: Paradigm::MpiP2p,
        params: &[
            P_BASEWORK,
            ParamSpec {
                name: "delay",
                kind: ParamKind::Seconds,
                default: "0.04",
                min: "0",
                max: "1",
                help: "gap between the early (wrong-order) and the awaited message",
            },
            P_REPS,
        ],
        description: "receiver blocks for one message while a later one already waits unread",
        expected_property: Some("MessagesWrongOrder"),
        localized_at: "MPI_Recv",
        in_paper_prototype: false,
    },
    // ---- MPI collective (paper prototype) ------------------------------
    PropertySpec {
        name: "imbalance_at_mpi_barrier",
        paradigm: Paradigm::MpiCollective,
        params: &[P_DISTR, P_REPS],
        description: "distribution-shaped work in front of MPI_Barrier",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "imbalance_at_mpi_alltoall",
        paradigm: Paradigm::MpiCollective,
        params: &[P_DISTR, P_REPS],
        description: "distribution-shaped work in front of MPI_Alltoall (wait at N×N)",
        expected_property: Some("WaitAtNxN"),
        localized_at: "MPI_Alltoall",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "late_broadcast",
        paradigm: Paradigm::MpiCollective,
        params: &[P_BASEWORK, P_EXTRAWORK, P_ROOT, P_REPS],
        description: "non-root ranks wait in MPI_Bcast for a late root",
        expected_property: Some("LateBroadcast"),
        localized_at: "MPI_Bcast",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "late_scatter",
        paradigm: Paradigm::MpiCollective,
        params: &[P_BASEWORK, P_EXTRAWORK, P_ROOT, P_REPS],
        description: "non-root ranks wait in MPI_Scatter for a late root",
        expected_property: Some("LateScatter"),
        localized_at: "MPI_Scatter",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "late_scatterv",
        paradigm: Paradigm::MpiCollective,
        params: &[P_BASEWORK, P_EXTRAWORK, P_ROOT, P_REPS],
        description: "irregular variant of late_scatter",
        expected_property: Some("LateScatter"),
        localized_at: "MPI_Scatterv",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "early_reduce",
        paradigm: Paradigm::MpiCollective,
        params: &[P_ROOTWORK, P_BASEEXTRA, P_ROOT, P_REPS],
        description: "an early root waits in MPI_Reduce for delayed members",
        expected_property: Some("EarlyReduce"),
        localized_at: "MPI_Reduce",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "early_gather",
        paradigm: Paradigm::MpiCollective,
        params: &[P_ROOTWORK, P_BASEEXTRA, P_ROOT, P_REPS],
        description: "an early root waits in MPI_Gather for delayed members",
        expected_property: Some("EarlyGather"),
        localized_at: "MPI_Gather",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "early_gatherv",
        paradigm: Paradigm::MpiCollective,
        params: &[P_ROOTWORK, P_BASEEXTRA, P_ROOT, P_REPS],
        description: "irregular variant of early_gather",
        expected_property: Some("EarlyGather"),
        localized_at: "MPI_Gatherv",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "imbalance_at_mpi_allreduce",
        paradigm: Paradigm::MpiCollective,
        params: &[P_DISTR, P_REPS],
        description: "distribution-shaped work in front of MPI_Allreduce",
        expected_property: Some("WaitAtNxN"),
        localized_at: "MPI_Allreduce",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "imbalance_at_mpi_scan",
        paradigm: Paradigm::MpiCollective,
        // Descending by default: a scan only produces prefix waits when
        // *lower* ranks arrive later.
        params: &[
            ParamSpec {
                name: "df",
                kind: ParamKind::Distribution,
                default: "block2:low=0.05,high=0.01",
                min: "",
                max: "",
                help: "work distribution (descending shapes produce prefix waits)",
            },
            P_REPS,
        ],
        description: "distribution-shaped work in front of MPI_Scan",
        expected_property: Some("WaitAtNxN"),
        localized_at: "MPI_Scan",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "progressive_imbalance_at_mpi_barrier",
        paradigm: Paradigm::MpiCollective,
        params: &[
            P_DISTR,
            ParamSpec {
                name: "growth",
                kind: ParamKind::Seconds,
                default: "0.5",
                min: "0",
                max: "4",
                help: "per-iteration scale growth (iteration i runs at 1 + growth*i)",
            },
            P_REPS,
        ],
        description: "barrier imbalance whose severity grows with the iteration number \
                      (the paper's scale-factor remark)",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "growing_imbalance_at_mpi_barrier",
        paradigm: Paradigm::MpiCollective,
        params: &[
            P_BASEWORK,
            ParamSpec {
                name: "extrastep",
                kind: ParamKind::Seconds,
                default: "0.01",
                min: "0",
                max: "1",
                help: "per-iteration increase of the heavy half's extra work",
            },
            P_REPS,
        ],
        description: "barrier imbalance whose waiting *fraction* grows over the run",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    // ---- OpenMP (paper prototype) ---------------------------------------
    PropertySpec {
        name: "imbalance_in_omp_pregion",
        paradigm: Paradigm::Omp,
        params: &[P_NTHREADS, P_DISTR, P_REPS],
        description: "thread-level load imbalance visible at the region join",
        expected_property: Some("OmpImbalanceInRegion"),
        localized_at: "omp_parallel",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "imbalance_at_omp_barrier",
        paradigm: Paradigm::Omp,
        params: &[P_NTHREADS, P_DISTR, P_REPS],
        description: "thread-level load imbalance in front of an explicit barrier",
        expected_property: Some("OmpWaitAtBarrier"),
        localized_at: "omp_barrier",
        in_paper_prototype: true,
    },
    PropertySpec {
        name: "imbalance_in_omp_loop",
        paradigm: Paradigm::Omp,
        params: &[P_NTHREADS, P_DISTR, P_REPS],
        description: "statically-scheduled loop with shaped iteration costs",
        expected_property: Some("OmpWaitAtBarrier"),
        localized_at: "omp_for",
        in_paper_prototype: true,
    },
    // ---- OpenMP extensions ----------------------------------------------
    PropertySpec {
        name: "imbalance_at_omp_sections",
        paradigm: Paradigm::Omp,
        params: &[P_NTHREADS, P_DISTR, P_REPS],
        description: "sections of unequal cost",
        expected_property: Some("OmpWaitAtBarrier"),
        localized_at: "omp_sections",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "unparallelized_in_omp_single",
        paradigm: Paradigm::Omp,
        params: &[
            P_NTHREADS,
            ParamSpec {
                name: "singlework",
                kind: ParamKind::Seconds,
                default: "0.02",
                min: "0",
                max: "1",
                help: "serialized work inside the single construct",
            },
            P_REPS,
        ],
        description: "the team idles while one thread executes a single construct",
        expected_property: Some("OmpWaitAtBarrier"),
        localized_at: "omp_single",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "unparallelized_in_omp_master",
        paradigm: Paradigm::Omp,
        params: &[
            P_NTHREADS,
            ParamSpec {
                name: "masterwork",
                kind: ParamKind::Seconds,
                default: "0.02",
                min: "0",
                max: "1",
                help: "serialized work on the master thread",
            },
            ParamSpec {
                name: "otherwork",
                kind: ParamKind::Seconds,
                default: "0.002",
                min: "0",
                max: "1",
                help: "work on the non-master threads",
            },
            P_REPS,
        ],
        description: "master-only work leaving the team idle until the join",
        expected_property: Some("OmpImbalanceInRegion"),
        localized_at: "omp_parallel",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "omp_critical_contention",
        paradigm: Paradigm::Omp,
        params: &[
            P_NTHREADS,
            ParamSpec {
                name: "bodywork",
                kind: ParamKind::Seconds,
                default: "0.01",
                min: "0",
                max: "1",
                help: "time inside the critical section per visit",
            },
            ParamSpec {
                name: "outsidework",
                kind: ParamKind::Seconds,
                default: "0.0",
                min: "0",
                max: "1",
                help: "parallel work between visits",
            },
            P_REPS,
        ],
        description: "all threads contend on one named critical section",
        expected_property: Some("OmpCriticalContention"),
        localized_at: "omp_critical",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "progressive_imbalance_at_omp_barrier",
        paradigm: Paradigm::Omp,
        params: &[
            P_NTHREADS,
            P_DISTR,
            ParamSpec {
                name: "growth",
                kind: ParamKind::Seconds,
                default: "0.5",
                min: "0",
                max: "4",
                help: "per-iteration scale growth",
            },
            P_REPS,
        ],
        description: "OpenMP barrier imbalance ramping with the iteration number",
        expected_property: Some("OmpWaitAtBarrier"),
        localized_at: "omp_barrier",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "omp_lock_contention",
        paradigm: Paradigm::Omp,
        params: &[
            P_NTHREADS,
            ParamSpec {
                name: "bodywork",
                kind: ParamKind::Seconds,
                default: "0.01",
                min: "0",
                max: "1",
                help: "time holding the lock per visit",
            },
            ParamSpec {
                name: "outsidework",
                kind: ParamKind::Seconds,
                default: "0.0",
                min: "0",
                max: "1",
                help: "parallel work between visits",
            },
            P_REPS,
        ],
        description: "all threads contend on one explicit lock object",
        expected_property: Some("OmpCriticalContention"),
        localized_at: "omp_lock",
        in_paper_prototype: false,
    },
    // ---- Hybrid ----------------------------------------------------------
    PropertySpec {
        name: "omp_imbalance_at_mpi_barrier",
        paradigm: Paradigm::Hybrid,
        params: &[P_NTHREADS, P_DISTR, P_REPS],
        description: "per-rank thread imbalance feeding an MPI barrier",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "mpi_in_omp_serial",
        paradigm: Paradigm::Hybrid,
        params: &[P_NTHREADS, P_BASEWORK, P_EXTRAWORK, P_REPS],
        description: "master-only MPI exchange between parallel phases",
        expected_property: Some("LateSender"),
        localized_at: "MPI_Recv",
        in_paper_prototype: false,
    },
    // ---- Sequential -------------------------------------------------------
    PropertySpec {
        name: "serial_initialization",
        paradigm: Paradigm::Sequential,
        params: &[P_ROOT, P_BASEWORK, P_EXTRAWORK],
        description: "one rank's long sequential phase delays everyone",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "dominating_sequential_phases",
        paradigm: Paradigm::Sequential,
        params: &[P_ROOT, P_BASEWORK, P_EXTRAWORK, P_REPS],
        description: "alternating parallel and root-only sequential phases",
        expected_property: Some("WaitAtBarrier"),
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    // ---- Negative ----------------------------------------------------------
    PropertySpec {
        name: "balanced_mpi_barrier",
        paradigm: Paradigm::Negative,
        params: &[P_WORK, P_REPS],
        description: "balanced work + barrier; no property present",
        expected_property: None,
        localized_at: "MPI_Barrier",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "balanced_mpi_p2p",
        paradigm: Paradigm::Negative,
        params: &[P_WORK, P_REPS],
        description: "balanced even/odd exchange; no property present",
        expected_property: None,
        localized_at: "MPI_Recv",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "balanced_ring",
        paradigm: Paradigm::Negative,
        params: &[P_WORK, P_REPS],
        description: "balanced ring shift; no property present",
        expected_property: None,
        localized_at: "MPI_Recv",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "balanced_mpi_collectives",
        paradigm: Paradigm::Negative,
        params: &[P_WORK, P_ROOT, P_REPS],
        description: "balanced bcast + reduce; no property present",
        expected_property: None,
        localized_at: "MPI_Bcast",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "balanced_omp_region",
        paradigm: Paradigm::Negative,
        params: &[P_NTHREADS, P_WORK, P_REPS],
        description: "balanced parallel region; no property present",
        expected_property: None,
        localized_at: "omp_parallel",
        in_paper_prototype: false,
    },
    PropertySpec {
        name: "balanced_omp_loop",
        paradigm: Paradigm::Negative,
        params: &[P_NTHREADS, P_WORK, P_REPS],
        description: "balanced static worksharing loop; no property present",
        expected_property: None,
        localized_at: "omp_for",
        in_paper_prototype: false,
    },
];

/// Look up a property by name.
pub fn find(name: &str) -> Option<&'static PropertySpec> {
    CATALOG.iter().find(|p| p.name == name)
}

/// All properties of one paradigm.
pub fn by_paradigm(paradigm: Paradigm) -> Vec<&'static PropertySpec> {
    CATALOG.iter().filter(|p| p.paradigm == paradigm).collect()
}

/// The 13 functions of the paper's prototype (§3.1.5).
pub fn paper_prototype() -> Vec<&'static PropertySpec> {
    CATALOG.iter().filter(|p| p.in_paper_prototype).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_prototype_has_exactly_thirteen_functions() {
        // 2 p2p + 8 collective + 3 OpenMP, as listed in §3.1.5.
        assert_eq!(paper_prototype().len(), 13);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = CATALOG.iter().map(|p| p.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn negative_cases_expect_nothing() {
        for p in by_paradigm(Paradigm::Negative) {
            assert!(p.expected_property.is_none(), "{}", p.name);
        }
    }

    #[test]
    fn positive_cases_expect_something() {
        for p in CATALOG.iter().filter(|p| p.paradigm != Paradigm::Negative) {
            assert!(p.expected_property.is_some(), "{}", p.name);
        }
    }

    #[test]
    fn find_works() {
        assert!(find("late_sender").is_some());
        assert!(find("nonexistent").is_none());
        assert_eq!(find("late_broadcast").unwrap().localized_at, "MPI_Bcast");
    }

    #[test]
    fn every_numeric_param_declares_a_range_containing_its_default() {
        for p in CATALOG {
            for param in p.params {
                match param.kind {
                    ParamKind::Seconds | ParamKind::Count => {
                        assert!(
                            param.has_range(),
                            "{}.{} has no range metadata",
                            p.name,
                            param.name
                        );
                        let (lo, hi) = param.range_f64();
                        let d: f64 = param.default.parse().unwrap();
                        assert!(
                            lo <= d && d <= hi,
                            "{}.{}: default {d} outside [{lo}, {hi}]",
                            p.name,
                            param.name
                        );
                    }
                    ParamKind::Distribution => {
                        assert!(
                            !param.has_range(),
                            "{}.{}: distributions take no numeric range",
                            p.name,
                            param.name
                        );
                        assert_eq!(param.range_f64(), (0.0, f64::INFINITY));
                    }
                }
            }
        }
    }

    #[test]
    fn range_display_renders_bounds() {
        assert_eq!(P_REPS.range_display().unwrap(), "[1, 64]");
        assert_eq!(P_ROOT.range_display().unwrap(), "[0, ..]");
        assert!(P_DISTR.range_display().is_none());
    }

    #[test]
    fn defaults_parse_under_their_kind() {
        for p in CATALOG {
            for param in p.params {
                match param.kind {
                    ParamKind::Seconds => {
                        param
                            .default
                            .parse::<f64>()
                            .unwrap_or_else(|_| panic!("{}.{} default", p.name, param.name));
                    }
                    ParamKind::Count => {
                        param
                            .default
                            .parse::<usize>()
                            .unwrap_or_else(|_| panic!("{}.{} default", p.name, param.name));
                    }
                    ParamKind::Distribution => {
                        param
                            .default
                            .parse::<crate::distribution::Distr>()
                            .unwrap_or_else(|_| panic!("{}.{} default", p.name, param.name));
                    }
                }
            }
        }
    }
}
