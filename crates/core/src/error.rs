//! The suite-wide error type.
//!
//! Every fallible ATS subsystem — the property-run dispatcher, the trace
//! readers, the analyzer's ingest path, the fuzzer's scenario/oracle/corpus
//! machinery — reports failures through one [`Error`] so callers (bins,
//! CI scripts, the fuzz campaign) can branch on a stable machine-readable
//! [`ErrorKind`] discriminant instead of string-matching rendered messages.
//!
//! The attribution contract of the old harness `RunError` is preserved:
//! [`Error::in_config`] attaches the property name and full parameter
//! assignment exactly once, so a failing configuration inside a
//! pool-parallel sweep is identifiable from the error alone, without
//! re-running the sweep serially.

use ats_trace::io::TraceIoError;

/// Stable failure category. The [`ErrorKind::as_str`] discriminants are a
/// compatibility surface: scripts may match on them, so variants may be
/// added but existing strings never change meaning.
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// No catalog entry with the requested property name.
    UnknownProperty,
    /// A parameter assignment that the catalog rejects.
    InvalidParam,
    /// A failure attributed to one concrete run configuration.
    Config,
    /// Underlying I/O failure while reading or writing a trace.
    TraceIo,
    /// Structurally invalid trace bytes (bad header, truncation, …).
    TraceFormat,
    /// A fuzz scenario that fails validation or deserialization.
    Scenario,
    /// The fuzz oracle could not predict or check a scenario.
    Oracle,
    /// Corpus persistence (save/load/replay) failed.
    Corpus,
    /// A fuzz campaign failed outside any single scenario.
    Campaign,
    /// The content-addressed artifact store failed (I/O, index, or
    /// integrity verification).
    Store,
    /// An analyzer report document that fails wire-schema validation
    /// (unknown schema tag, missing or mistyped field).
    Report,
    /// A service request the campaign server rejects (bad route, body,
    /// or protocol use).
    Request,
}

impl ErrorKind {
    /// The stable machine-readable discriminant for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::UnknownProperty => "unknown_property",
            ErrorKind::InvalidParam => "invalid_param",
            ErrorKind::Config => "config",
            ErrorKind::TraceIo => "trace_io",
            ErrorKind::TraceFormat => "trace_format",
            ErrorKind::Scenario => "scenario",
            ErrorKind::Oracle => "oracle",
            ErrorKind::Corpus => "corpus",
            ErrorKind::Campaign => "campaign",
            ErrorKind::Store => "store",
            ErrorKind::Report => "report",
            ErrorKind::Request => "request",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The suite-wide error: a [`ErrorKind`] plus a rendered message, with
/// optional attribution to the property configuration it arose from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    message: String,
    property: Option<String>,
    params: Option<String>,
}

impl Error {
    /// A new error of `kind` with a rendered `message`.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        Error {
            kind,
            message: message.into(),
            property: None,
            params: None,
        }
    }

    /// No catalog entry named `name`.
    pub fn unknown_property(name: &str) -> Self {
        Error::new(
            ErrorKind::UnknownProperty,
            format!("unknown property function `{name}`"),
        )
    }

    /// A parameter assignment the catalog rejects.
    pub fn invalid_param(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::InvalidParam, message)
    }

    /// A fuzz scenario failing validation or deserialization.
    pub fn scenario(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Scenario, message)
    }

    /// An oracle prediction/check failure.
    pub fn oracle(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Oracle, message)
    }

    /// A corpus persistence failure.
    pub fn corpus(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Corpus, message)
    }

    /// A fuzz-campaign failure outside any single scenario.
    pub fn campaign(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Campaign, message)
    }

    /// An artifact-store failure (I/O, index, or integrity verification).
    pub fn store(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Store, message)
    }

    /// A report document failing wire-schema validation.
    pub fn report(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Report, message)
    }

    /// A service request the campaign server rejects.
    pub fn request(message: impl Into<String>) -> Self {
        Error::new(ErrorKind::Request, message)
    }

    /// The stable failure category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The message without any configuration attribution prefix.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The property name this error is attributed to, if any.
    pub fn property(&self) -> Option<&str> {
        self.property.as_deref()
    }

    /// The `k=v …` parameter assignment this error is attributed to.
    pub fn params(&self) -> Option<&str> {
        self.params.as_deref()
    }

    /// Attach the configuration (property + parameters, in command-line
    /// `k=v …` syntax) this error arose from. Already-attributed errors
    /// pass through unchanged, so attribution inside a pool-parallel sweep
    /// is applied exactly once however many layers re-wrap the error.
    pub fn in_config(self, property: &str, params: &str) -> Error {
        if self.kind == ErrorKind::Config {
            return self;
        }
        Error {
            kind: ErrorKind::Config,
            message: self.to_string(),
            property: Some(property.to_owned()),
            params: Some(params.to_owned()),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (&self.property, &self.params) {
            (Some(p), Some(ps)) => write!(f, "property `{p}` ({ps}): {}", self.message),
            (Some(p), None) => write!(f, "property `{p}`: {}", self.message),
            _ => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for Error {}

impl From<TraceIoError> for Error {
    fn from(e: TraceIoError) -> Self {
        let kind = match &e {
            TraceIoError::Format(_) => ErrorKind::TraceFormat,
            _ => ErrorKind::TraceIo,
        };
        Error::new(kind, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_stable_discriminants() {
        assert_eq!(ErrorKind::UnknownProperty.as_str(), "unknown_property");
        assert_eq!(ErrorKind::Config.as_str(), "config");
        assert_eq!(ErrorKind::TraceFormat.as_str(), "trace_format");
        assert_eq!(ErrorKind::Oracle.as_str(), "oracle");
    }

    #[test]
    fn in_config_attributes_exactly_once() {
        let err = Error::unknown_property("late_sender").in_config("late_sender", "r=3");
        assert_eq!(err.kind(), ErrorKind::Config);
        assert_eq!(err.property(), Some("late_sender"));
        assert_eq!(err.params(), Some("r=3"));
        let msg = err.to_string();
        assert!(msg.contains("late_sender"), "{msg}");
        assert!(msg.contains("r=3"), "{msg}");
        // Idempotent: re-wrapping in a different config changes nothing.
        let rewrapped = err.clone().in_config("other", "x=1");
        assert_eq!(rewrapped, err);
    }

    #[test]
    fn trace_io_errors_map_to_stable_kinds() {
        let fmt: Error = TraceIoError::Format("bad header".into()).into();
        assert_eq!(fmt.kind(), ErrorKind::TraceFormat);
        assert!(fmt.to_string().contains("bad header"));
        let io: Error =
            TraceIoError::Io(std::io::Error::new(std::io::ErrorKind::Other, "disk")).into();
        assert_eq!(io.kind(), ErrorKind::TraceIo);
    }
}
