//! A small, self-contained JSON value — the suite's canonical document
//! representation.
//!
//! The suite's wire and on-disk documents (the store's `entry.json` and
//! `index.json`, the key-ingredient documents its cache keys hash, the
//! `ats-report/1` analyzer wire schema, every `ats-serve` response body)
//! must render *canonically*: the same content always produces the same
//! bytes, on every platform, forever — a cache key is only as stable as
//! its serializer, and a frozen wire schema is only as stable as its
//! formatter. Rather than pin that guarantee on an external crate's
//! formatting choices, the suite owns a deliberately tiny JSON model:
//!
//! * objects are [`BTreeMap`]s, so members always render in sorted key
//!   order regardless of insertion order;
//! * integers ([`Json::Int`], an `i128` covering all of `i64` and `u64`)
//!   render exactly, never through floating point;
//! * floats render via Rust's shortest-round-trip `Display`, so
//!   `parse(render(x)) == x` for every finite `f64`;
//! * rendering is compact (no whitespace) for hashing, with a pretty
//!   variant for the human-inspected manifests.
//!
//! The parser accepts standard JSON (objects, arrays, strings with
//! escapes and surrogate pairs, numbers, booleans, null) and is the read
//! path for store manifests and service requests — documents written by
//! one process are re-verified by another without any serde machinery in
//! between. (This module grew up in `ats-store` and moved here once the
//! analyzer's wire schema and the campaign service needed it too;
//! `ats_store::Json` remains a re-export.)

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node. Construct with [`Json::obj`]/[`Json::arr`] and
/// the `From` impls; render with [`Json::render`]; read back with
/// [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer, exact over the full `i64` ∪ `u64` range.
    Int(i128),
    /// A floating-point number (finite; NaN/∞ are unrepresentable in
    /// JSON and render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps members canonically sorted.
    Obj(BTreeMap<String, Json>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i128)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(BTreeMap::new())
    }

    /// An empty array.
    pub fn arr() -> Json {
        Json::Arr(Vec::new())
    }

    /// Builder-style member insertion; panics if `self` is not an object
    /// (a construction bug, not a data condition).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Insert or replace a member; panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Obj(map) => {
                map.insert(key.to_owned(), value.into());
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Append an element; panics if `self` is not an array.
    pub fn push(&mut self, value: impl Into<Json>) {
        match self {
            Json::Arr(items) => items.push(value.into()),
            other => panic!("Json::push on non-array {other:?}"),
        }
    }

    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload as `u64`, if this is a non-negative integer in
    /// range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Integer payload as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// Numeric payload as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(f) => Some(*f),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Mutable element access, if this is an array.
    pub fn as_arr_mut(&mut self) -> Option<&mut Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable member access, if this is an object.
    pub fn as_obj_mut(&mut self) -> Option<&mut BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// Canonical compact rendering: sorted object keys, no whitespace,
    /// exact integers, shortest-round-trip floats. This is the byte
    /// stream cache keys are hashed over.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Human-oriented rendering (two-space indent), same canonical member
    /// order. Used for on-disk manifests.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(map) => {
                let members: Vec<(&String, &Json)> = map.iter().collect();
                write_seq(out, indent, depth, members.len(), '{', '}', |out, i| {
                    write_escaped(out, members[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    members[i].1.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Parse standard JSON text. Errors carry a byte offset and reason.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    // Rust's Display is the shortest string that round-trips; force a
    // decimal point so the value stays number-typed when re-read by
    // strict tooling expecting a float.
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
    out.push(close);
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                map.insert(key, parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("lone high surrogate".into());
                            }
                            let lo = parse_hex4(bytes, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control character in string".into()),
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let chunk = bytes
        .get(at..at + 4)
        .ok_or_else(|| "truncated \\u escape".to_owned())?;
    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape: {e}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if float {
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_canonical_and_sorted() {
        let a = Json::obj()
            .with("zulu", 1u64)
            .with("alpha", "x")
            .with("mid", Json::arr());
        let b = Json::obj()
            .with("mid", Json::arr())
            .with("alpha", "x")
            .with("zulu", 1u64);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.render(), r#"{"alpha":"x","mid":[],"zulu":1}"#);
    }

    #[test]
    fn numbers_render_exactly() {
        assert_eq!(Json::from(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Json::from(-42i64).render(), "-42");
        assert_eq!(Json::from(0.005f64).render(), "0.005");
        assert_eq!(Json::from(1.0f64).render(), "1.0");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.005, 1.0 / 3.0, 1e-12, 123456.789e300, -0.0, 2.2250738585072014e-308] {
            let rendered = Json::from(f).render();
            let back = Json::parse(&rendered).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), f.to_bits(), "{rendered}");
        }
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "quote\" slash\\ newline\n tab\t nul\u{0} émoji🙂";
        let rendered = Json::from(s).render();
        assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        // Surrogate-pair escapes parse to the astral character.
        assert_eq!(
            Json::parse(r#""\ud83d\ude42""#).unwrap().as_str(),
            Some("🙂")
        );
    }

    #[test]
    fn documents_round_trip_via_parse() {
        let doc = Json::obj()
            .with("schema", "test/1")
            .with("count", 3u64)
            .with("ratio", 0.25f64)
            .with("flags", vec![true, false])
            .with("inner", Json::obj().with("deep", Json::Null));
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "\"unterminated", "01x", "nul", "{\"a\":1}]",
            "\"\\ud800\"", "-",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn accessors_read_expected_payloads() {
        let doc = Json::parse(r#"{"n": 7, "s": "x", "f": 1.5, "b": true, "a": [1], "big": 18446744073709551615}"#)
            .unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(7));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(doc.get("big").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(doc.get("big").and_then(Json::as_i64), None);
        assert_eq!(doc.get("missing"), None);
    }
}
