//! Specification of distribution (paper §3.1.2).
//!
//! A distribution maps a participant's rank/id and the group size to an
//! amount of work (or data), scaled by a proportional factor. The paper
//! defines seven distribution shapes with one to three parameters; this
//! module ports all of them as one [`Distr`] enum — the enum plays both the
//! roles of the C prototype's *distribution function pointer* and its
//! *distribution descriptor* (there is no function-pointer/void* indirection
//! to reproduce in a typed language; custom shapes plug in through
//! [`Distr::Custom`]).

use ats_runtime::VDur;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// A work/data distribution over the members of a parallel group.
///
/// All values are in abstract units — seconds when driving `do_work`,
/// elements when driving irregular-buffer allocation — and are multiplied
/// by the `scale` argument of [`Distr::value`].
#[derive(Clone, Serialize, Deserialize)]
pub enum Distr {
    /// Everyone gets `val` (paper: `df_same`).
    Same {
        /// The common value.
        val: f64,
    },
    /// Ranks alternate `low`, `high`, `low`, ... (paper: `df_cyclic2`).
    Cyclic2 {
        /// Value for even ranks.
        low: f64,
        /// Value for odd ranks.
        high: f64,
    },
    /// First half `low`, second half `high` (paper: `df_block2`).
    Block2 {
        /// Value for the first block.
        low: f64,
        /// Value for the second block.
        high: f64,
    },
    /// Linear interpolation from `low` (rank 0) to `high` (last rank)
    /// (paper: `df_linear`).
    Linear {
        /// Value at rank 0.
        low: f64,
        /// Value at the last rank.
        high: f64,
    },
    /// Rank `n` gets `high`, everyone else `low` (paper: `df_peak`).
    Peak {
        /// Value for non-peak ranks.
        low: f64,
        /// Value for the peak rank.
        high: f64,
        /// The peak rank (clamped into the group).
        n: usize,
    },
    /// Ranks cycle `low`, `med`, `high` (paper: `df_cyclic3`).
    Cyclic3 {
        /// First value in the cycle.
        low: f64,
        /// Second value.
        med: f64,
        /// Third value.
        high: f64,
    },
    /// Three blocks of `low`, `med`, `high` (paper: `df_block3`).
    Block3 {
        /// Value for the first third.
        low: f64,
        /// Value for the middle third.
        med: f64,
        /// Value for the last third.
        high: f64,
    },
    /// A user-supplied shape, as the paper allows ("users can provide
    /// their own distribution functions"). Not serializable.
    #[serde(skip)]
    Custom(Arc<dyn Fn(usize, usize) -> f64 + Send + Sync>),
}

impl fmt::Debug for Distr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distr::Same { val } => write!(f, "same(val={val})"),
            Distr::Cyclic2 { low, high } => write!(f, "cyclic2(low={low},high={high})"),
            Distr::Block2 { low, high } => write!(f, "block2(low={low},high={high})"),
            Distr::Linear { low, high } => write!(f, "linear(low={low},high={high})"),
            Distr::Peak { low, high, n } => write!(f, "peak(low={low},high={high},n={n})"),
            Distr::Cyclic3 { low, med, high } => {
                write!(f, "cyclic3(low={low},med={med},high={high})")
            }
            Distr::Block3 { low, med, high } => {
                write!(f, "block3(low={low},med={med},high={high})")
            }
            Distr::Custom(_) => write!(f, "custom(..)"),
        }
    }
}

impl PartialEq for Distr {
    fn eq(&self, other: &Self) -> bool {
        format!("{self:?}") == format!("{other:?}") && !matches!(self, Distr::Custom(_))
    }
}

impl Distr {
    /// Everyone gets `val`.
    pub fn same(val: f64) -> Self {
        Distr::Same { val }
    }

    /// Alternate `low`/`high`.
    pub fn cyclic2(low: f64, high: f64) -> Self {
        Distr::Cyclic2 { low, high }
    }

    /// Two blocks.
    pub fn block2(low: f64, high: f64) -> Self {
        Distr::Block2 { low, high }
    }

    /// Linear ramp.
    pub fn linear(low: f64, high: f64) -> Self {
        Distr::Linear { low, high }
    }

    /// Single peak at rank `n`.
    pub fn peak(low: f64, high: f64, n: usize) -> Self {
        Distr::Peak { low, high, n }
    }

    /// Three-way cycle.
    pub fn cyclic3(low: f64, med: f64, high: f64) -> Self {
        Distr::Cyclic3 { low, med, high }
    }

    /// Three blocks.
    pub fn block3(low: f64, med: f64, high: f64) -> Self {
        Distr::Block3 { low, med, high }
    }

    /// A custom shape.
    pub fn custom(f: impl Fn(usize, usize) -> f64 + Send + Sync + 'static) -> Self {
        Distr::Custom(Arc::new(f))
    }

    /// The value assigned to participant `me` of `sz`, scaled by `scale`.
    /// This is the paper's `df(me, sz, sf, dd)`.
    pub fn value(&self, me: usize, sz: usize, scale: f64) -> f64 {
        assert!(sz > 0, "distribution over an empty group");
        assert!(me < sz, "rank {me} out of range for group of {sz}");
        let raw = match self {
            Distr::Same { val } => *val,
            Distr::Cyclic2 { low, high } => {
                if me.is_multiple_of(2) {
                    *low
                } else {
                    *high
                }
            }
            Distr::Block2 { low, high } => {
                if me < sz.div_ceil(2) {
                    *low
                } else {
                    *high
                }
            }
            Distr::Linear { low, high } => {
                if sz == 1 {
                    *low
                } else {
                    low + (high - low) * me as f64 / (sz - 1) as f64
                }
            }
            Distr::Peak { low, high, n } => {
                if me == (*n).min(sz - 1) {
                    *high
                } else {
                    *low
                }
            }
            Distr::Cyclic3 { low, med, high } => match me % 3 {
                0 => *low,
                1 => *med,
                _ => *high,
            },
            Distr::Block3 { low, med, high } => {
                let third = sz.div_ceil(3);
                if me < third {
                    *low
                } else if me < 2 * third {
                    *med
                } else {
                    *high
                }
            }
            Distr::Custom(f) => f(me, sz),
        };
        raw * scale
    }

    /// All `sz` values at once.
    pub fn values(&self, sz: usize, scale: f64) -> Vec<f64> {
        (0..sz).map(|me| self.value(me, sz, scale)).collect()
    }

    /// The value as a work duration (seconds → [`VDur`], clamped at 0).
    pub fn work(&self, me: usize, sz: usize, scale: f64) -> VDur {
        VDur::from_secs(self.value(me, sz, scale))
    }

    /// The value as an element count (rounded, clamped at 0).
    pub fn count(&self, me: usize, sz: usize, scale: f64) -> usize {
        self.value(me, sz, scale).max(0.0).round() as usize
    }

    /// Largest minus smallest assigned value: the *absolute imbalance*
    /// this distribution programs into a group of `sz`.
    pub fn imbalance(&self, sz: usize, scale: f64) -> f64 {
        let v = self.values(sz, scale);
        let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// True if every participant receives the same value (a *negative*
    /// test-case distribution).
    pub fn is_balanced(&self, sz: usize) -> bool {
        let v = self.values(sz, 1.0);
        v.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12)
    }

    /// A short shape name (`"same"`, `"cyclic2"`, ...).
    pub fn shape_name(&self) -> &'static str {
        match self {
            Distr::Same { .. } => "same",
            Distr::Cyclic2 { .. } => "cyclic2",
            Distr::Block2 { .. } => "block2",
            Distr::Linear { .. } => "linear",
            Distr::Peak { .. } => "peak",
            Distr::Cyclic3 { .. } => "cyclic3",
            Distr::Block3 { .. } => "block3",
            Distr::Custom(_) => "custom",
        }
    }
}

/// Error from parsing a distribution specification string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDistrError(String);

impl fmt::Display for ParseDistrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution spec: {}", self.0)
    }
}

impl std::error::Error for ParseDistrError {}

impl FromStr for Distr {
    type Err = ParseDistrError;

    /// Parse `"shape:key=val,key=val"` specs, the format used by the
    /// generated single-property test programs' command lines, e.g.
    /// `"cyclic2:low=0.01,high=0.05"` or `"peak:low=0.01,high=0.2,n=3"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (shape, rest) = s.split_once(':').unwrap_or((s, ""));
        let mut low = None;
        let mut high = None;
        let mut med = None;
        let mut val = None;
        let mut n = None;
        for kv in rest.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| ParseDistrError(format!("missing '=' in `{kv}`")))?;
            let parse_f = || {
                v.parse::<f64>()
                    .map_err(|_| ParseDistrError(format!("bad number `{v}` for `{k}`")))
            };
            match k.trim() {
                "low" => low = Some(parse_f()?),
                "high" => high = Some(parse_f()?),
                "med" => med = Some(parse_f()?),
                "val" => val = Some(parse_f()?),
                "n" => {
                    n = Some(
                        v.parse::<usize>()
                            .map_err(|_| ParseDistrError(format!("bad index `{v}` for `n`")))?,
                    )
                }
                other => return Err(ParseDistrError(format!("unknown key `{other}`"))),
            }
        }
        let req = |o: Option<f64>, k: &str| {
            o.ok_or_else(|| ParseDistrError(format!("{shape} requires `{k}`")))
        };
        match shape.trim() {
            "same" => Ok(Distr::same(req(val, "val")?)),
            "cyclic2" => Ok(Distr::cyclic2(req(low, "low")?, req(high, "high")?)),
            "block2" => Ok(Distr::block2(req(low, "low")?, req(high, "high")?)),
            "linear" => Ok(Distr::linear(req(low, "low")?, req(high, "high")?)),
            "peak" => Ok(Distr::peak(
                req(low, "low")?,
                req(high, "high")?,
                n.ok_or_else(|| ParseDistrError("peak requires `n`".into()))?,
            )),
            "cyclic3" => Ok(Distr::cyclic3(
                req(low, "low")?,
                req(med, "med")?,
                req(high, "high")?,
            )),
            "block3" => Ok(Distr::block3(
                req(low, "low")?,
                req(med, "med")?,
                req(high, "high")?,
            )),
            other => Err(ParseDistrError(format!("unknown shape `{other}`"))),
        }
    }
}

impl fmt::Display for Distr {
    /// Inverse of [`FromStr`]: `peak(low=1,high=2,n=0)` prints as
    /// `peak:low=1,high=2,n=0`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Distr::Same { val } => write!(f, "same:val={val}"),
            Distr::Cyclic2 { low, high } => write!(f, "cyclic2:low={low},high={high}"),
            Distr::Block2 { low, high } => write!(f, "block2:low={low},high={high}"),
            Distr::Linear { low, high } => write!(f, "linear:low={low},high={high}"),
            Distr::Peak { low, high, n } => write!(f, "peak:low={low},high={high},n={n}"),
            Distr::Cyclic3 { low, med, high } => {
                write!(f, "cyclic3:low={low},med={med},high={high}")
            }
            Distr::Block3 { low, med, high } => {
                write!(f, "block3:low={low},med={med},high={high}")
            }
            Distr::Custom(_) => write!(f, "custom"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_is_flat() {
        let d = Distr::same(0.5);
        assert_eq!(d.values(4, 2.0), vec![1.0; 4]);
        assert!(d.is_balanced(4));
        assert_eq!(d.imbalance(4, 1.0), 0.0);
    }

    #[test]
    fn cyclic2_alternates() {
        let d = Distr::cyclic2(1.0, 2.0);
        assert_eq!(d.values(5, 1.0), vec![1.0, 2.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn block2_halves() {
        let d = Distr::block2(1.0, 2.0);
        assert_eq!(d.values(4, 1.0), vec![1.0, 1.0, 2.0, 2.0]);
        // Odd sizes: the first block gets the extra member.
        assert_eq!(d.values(5, 1.0), vec![1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn linear_ramps() {
        let d = Distr::linear(0.0, 3.0);
        assert_eq!(d.values(4, 1.0), vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(d.values(1, 1.0), vec![0.0], "singleton takes low");
    }

    #[test]
    fn peak_singles_out_one_rank() {
        let d = Distr::peak(1.0, 9.0, 2);
        assert_eq!(d.values(4, 1.0), vec![1.0, 1.0, 9.0, 1.0]);
        // Peak index beyond the group clamps to the last rank.
        let d = Distr::peak(1.0, 9.0, 100);
        assert_eq!(d.values(3, 1.0), vec![1.0, 1.0, 9.0]);
    }

    #[test]
    fn cyclic3_and_block3() {
        let c = Distr::cyclic3(1.0, 2.0, 3.0);
        assert_eq!(c.values(6, 1.0), vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let b = Distr::block3(1.0, 2.0, 3.0);
        assert_eq!(b.values(6, 1.0), vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        // ceil-sized blocks: 3 + 3 + 1 members.
        assert_eq!(b.values(7, 1.0), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 3.0]);
    }

    #[test]
    fn scale_factor_is_proportional() {
        let d = Distr::linear(1.0, 2.0);
        for me in 0..4 {
            assert!((d.value(me, 4, 3.0) - 3.0 * d.value(me, 4, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn custom_shape() {
        let d = Distr::custom(|me, sz| (me * sz) as f64);
        assert_eq!(d.values(3, 1.0), vec![0.0, 3.0, 6.0]);
        assert_eq!(d.shape_name(), "custom");
    }

    #[test]
    fn work_clamps_negative_to_zero() {
        let d = Distr::linear(-1.0, 1.0);
        assert_eq!(d.work(0, 3, 1.0), VDur::ZERO);
        assert_eq!(d.work(2, 3, 1.0), VDur::from_secs(1.0));
    }

    #[test]
    fn count_rounds() {
        let d = Distr::same(2.6);
        assert_eq!(d.count(0, 1, 1.0), 3);
        assert_eq!(d.count(0, 1, 0.1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        Distr::same(1.0).value(4, 4, 1.0);
    }

    #[test]
    fn parse_roundtrip_all_shapes() {
        for spec in [
            "same:val=0.5",
            "cyclic2:low=0.01,high=0.05",
            "block2:low=1,high=2",
            "linear:low=0,high=1",
            "peak:low=0.1,high=0.9,n=3",
            "cyclic3:low=1,med=2,high=3",
            "block3:low=1,med=2,high=3",
        ] {
            let d: Distr = spec.parse().unwrap();
            let printed = d.to_string();
            let d2: Distr = printed.parse().unwrap();
            assert_eq!(d, d2, "roundtrip failed for {spec}");
        }
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!("wiggle:low=1".parse::<Distr>().is_err());
        assert!("peak:low=1,high=2".parse::<Distr>().is_err(), "missing n");
        assert!("same:".parse::<Distr>().is_err(), "missing val");
        assert!("cyclic2:low=x,high=1".parse::<Distr>().is_err());
        assert!("cyclic2:low,high=1".parse::<Distr>().is_err());
    }

    #[test]
    fn imbalance_reflects_spread() {
        assert_eq!(Distr::cyclic2(1.0, 3.0).imbalance(4, 2.0), 4.0);
        assert_eq!(Distr::peak(0.0, 5.0, 0).imbalance(8, 1.0), 5.0);
    }

    #[test]
    fn balanced_detection_edge_cases() {
        assert!(Distr::cyclic2(2.0, 2.0).is_balanced(8));
        assert!(!Distr::cyclic2(2.0, 2.1).is_balanced(8));
        assert!(Distr::linear(1.0, 2.0).is_balanced(1), "singleton is flat");
        assert!(Distr::peak(1.0, 2.0, 0).is_balanced(1));
    }
}
