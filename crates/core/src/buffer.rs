//! MPI buffer management (paper §3.1.3).
//!
//! The C prototype manages buffers through `mpi_buf_t` (regular) and
//! `mpi_vbuf_t` (irregular, with per-rank counts derived from a
//! distribution function), plus a `set_base_comm` default used by the
//! property functions. This module ports all three; the process-global
//! default becomes the explicit [`BaseComm`] value that property functions
//! take as a parameter — same information, no hidden global state.

use crate::distribution::Distr;
use ats_mpi::Datatype;
use bytes::{BufMut, BytesMut};

/// A regular typed message buffer (`mpi_buf_t`): `cnt` elements of `type`.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiBuf {
    /// Element type.
    pub dtype: Datatype,
    /// Element count.
    pub count: usize,
    /// Backing storage, always `count * dtype.size()` bytes.
    pub data: BytesMut,
}

/// The paper's `alloc_mpi_buf`: a zero-initialized buffer of `cnt`
/// elements. (Deallocation is ownership — `free_mpi_buf` is `drop`.)
pub fn alloc_mpi_buf(dtype: Datatype, count: usize) -> MpiBuf {
    let mut data = BytesMut::with_capacity(count * dtype.size());
    data.put_bytes(0, count * dtype.size());
    MpiBuf { dtype, count, data }
}

impl MpiBuf {
    /// The payload as bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable payload bytes.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Payload size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Overwrite the payload from raw bytes (must match the buffer size).
    pub fn fill_from(&mut self, bytes: &[u8]) {
        assert_eq!(
            bytes.len(),
            self.data.len(),
            "payload size mismatch: buffer holds {} bytes",
            self.data.len()
        );
        self.data.copy_from_slice(bytes);
    }

    /// Fill with a deterministic per-element pattern (for validation
    /// kernels that check data integrity through communication).
    pub fn fill_pattern(&mut self, seed: u8) {
        for (i, b) in self.data.iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8);
        }
    }
}

/// An irregular collective buffer (`mpi_vbuf_t`): per-rank element counts
/// derived from a distribution, plus the flattened root-side payload.
#[derive(Debug, Clone, PartialEq)]
pub struct MpiVBuf {
    /// Element type.
    pub dtype: Datatype,
    /// Per-rank element counts.
    pub counts: Vec<usize>,
    /// Per-rank displacements (element offsets into [`MpiVBuf::data`]).
    pub displs: Vec<usize>,
    /// Root-side flattened payload (`sum(counts)` elements).
    pub data: BytesMut,
    /// The rank whose buffer carries the full payload.
    pub root: usize,
}

/// The paper's `alloc_mpi_vbuf`: counts per rank come from the
/// distribution (`df(i, sz, scale)` elements for rank `i`).
pub fn alloc_mpi_vbuf(
    dtype: Datatype,
    df: &Distr,
    scale: f64,
    root: usize,
    comm_size: usize,
) -> MpiVBuf {
    assert!(root < comm_size, "root out of range");
    let counts: Vec<usize> = (0..comm_size)
        .map(|i| df.count(i, comm_size, scale))
        .collect();
    let mut displs = Vec::with_capacity(comm_size);
    let mut off = 0;
    for &c in &counts {
        displs.push(off);
        off += c;
    }
    let mut data = BytesMut::with_capacity(off * dtype.size());
    data.put_bytes(0, off * dtype.size());
    MpiVBuf {
        dtype,
        counts,
        displs,
        data,
        root,
    }
}

impl MpiVBuf {
    /// Per-rank byte counts (elements × element size).
    pub fn byte_counts(&self) -> Vec<usize> {
        self.counts.iter().map(|&c| c * self.dtype.size()).collect()
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> usize {
        self.data.len()
    }

    /// The byte range belonging to `rank`.
    pub fn slice_for(&self, rank: usize) -> &[u8] {
        let s = self.displs[rank] * self.dtype.size();
        let e = s + self.counts[rank] * self.dtype.size();
        &self.data[s..e]
    }
}

/// The suite-wide default message shape (the paper's `set_base_comm`
/// global, made explicit). Property functions that the paper parameterizes
/// only by work amounts use this for their communication buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaseComm {
    /// Element type of default buffers.
    pub dtype: Datatype,
    /// Element count of default buffers.
    pub count: usize,
}

impl Default for BaseComm {
    /// 256 doubles (2 KiB): comfortably eager, large enough to be visible
    /// in traces.
    fn default() -> Self {
        BaseComm {
            dtype: Datatype::Float64,
            count: 256,
        }
    }
}

impl BaseComm {
    /// Allocate the default buffer.
    pub fn alloc(&self) -> MpiBuf {
        alloc_mpi_buf(self.dtype, self.count)
    }

    /// Default payload size in bytes.
    pub fn bytes(&self) -> usize {
        self.count * self.dtype.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_zeroes_and_sizes() {
        let b = alloc_mpi_buf(Datatype::Int32, 10);
        assert_eq!(b.len_bytes(), 40);
        assert!(b.bytes().iter().all(|&x| x == 0));
    }

    #[test]
    fn fill_and_read_back() {
        let mut b = alloc_mpi_buf(Datatype::Byte, 4);
        b.fill_from(&[1, 2, 3, 4]);
        assert_eq!(b.bytes(), &[1, 2, 3, 4]);
        b.fill_pattern(10);
        assert_eq!(b.bytes(), &[10, 11, 12, 13]);
    }

    #[test]
    #[should_panic(expected = "payload size mismatch")]
    fn fill_from_checks_size() {
        alloc_mpi_buf(Datatype::Byte, 2).fill_from(&[1, 2, 3]);
    }

    #[test]
    fn vbuf_counts_follow_distribution() {
        let df = Distr::linear(1.0, 4.0);
        let v = alloc_mpi_vbuf(Datatype::Float64, &df, 1.0, 0, 4);
        assert_eq!(v.counts, vec![1, 2, 3, 4]);
        assert_eq!(v.displs, vec![0, 1, 3, 6]);
        assert_eq!(v.total_bytes(), 10 * 8);
        assert_eq!(v.byte_counts(), vec![8, 16, 24, 32]);
    }

    #[test]
    fn vbuf_slices_partition_payload() {
        let df = Distr::cyclic2(2.0, 3.0);
        let v = alloc_mpi_vbuf(Datatype::Int32, &df, 1.0, 1, 3);
        let total: usize = (0..3).map(|r| v.slice_for(r).len()).sum();
        assert_eq!(total, v.total_bytes());
        assert_eq!(v.slice_for(0).len(), 8);
        assert_eq!(v.slice_for(1).len(), 12);
    }

    #[test]
    fn base_comm_default_is_eager_sized() {
        let base = BaseComm::default();
        assert_eq!(base.bytes(), 2048);
        assert_eq!(base.alloc().len_bytes(), 2048);
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn vbuf_root_bounds_checked() {
        alloc_mpi_vbuf(Datatype::Byte, &Distr::same(1.0), 1.0, 5, 4);
    }
}
