//! Specification of parallel work (paper §3.1.1).
//!
//! `do_work` itself lives on the substrate handles ([`ats_mpi::Proc`] and
//! [`ats_omp::OmpThread`]); this module supplies the two parallel wrappers
//! from the paper, which look up the caller's rank/id and group size and
//! hand the distribution's verdict to the sequential work function:
//!
//! ```c
//! void par_do_mpi_work(distr_func_t df, distr_t* dd, double sf, MPI_Comm c);
//! void par_do_omp_work(distr_func_t df, distr_t* dd, double sf);
//! ```

use crate::distribution::Distr;
use ats_mpi::{Comm, Proc};
use ats_omp::OmpThread;

/// The paper's `par_do_mpi_work`: every member of `comm` calls this, and
/// each performs the amount of work the distribution assigns to its rank.
pub fn par_do_mpi_work(p: &mut Proc, df: &Distr, scale: f64, comm: &Comm) {
    let amount = df.work(comm.rank(), comm.size(), scale);
    p.do_work(amount);
}

/// The paper's `par_do_omp_work`: every thread of the active team calls
/// this, and each performs its distribution-assigned amount of work.
pub fn par_do_omp_work(th: &mut OmpThread<'_>, df: &Distr, scale: f64) {
    let amount = df.work(th.thread_num(), th.num_threads(), scale);
    th.do_work(amount);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_omp::{parallel, run_omp, OmpConfig};
    use ats_runtime::{MachineModel, VDur, VTime};
    use ats_trace::TraceStats;

    fn zero_mpi(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn mpi_ranks_get_distribution_assigned_work() {
        let df = Distr::linear(0.010, 0.040);
        let trace = ats_mpi::run(zero_mpi(4), |p| {
            let c = p.comm_world();
            par_do_mpi_work(p, &df, 1.0, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.010 + 0.010 * p.rank() as f64));
        });
        let stats = TraceStats::compute(&trace);
        let r = trace.find_region("do_work").unwrap();
        assert_eq!(stats.region_total(r).visits, 4);
    }

    #[test]
    fn omp_threads_get_distribution_assigned_work() {
        let df = Distr::cyclic2(0.002, 0.006);
        run_omp(
            OmpConfig {
                model: MachineModel::zero(),
                ..Default::default()
            },
            |m| {
                parallel(m, 4, |th| {
                    par_do_omp_work(th, &df, 1.0);
                    let expect = if th.thread_num() % 2 == 0 {
                        0.002
                    } else {
                        0.006
                    };
                    assert_eq!(th.clock(), VTime::from_secs(expect));
                });
            },
        );
    }

    #[test]
    fn scale_factor_scales_work() {
        let df = Distr::same(0.004);
        ats_mpi::run(zero_mpi(2), |p| {
            let c = p.comm_world();
            par_do_mpi_work(p, &df, 2.5, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.010));
        });
    }
}
