//! MPI communication patterns (paper §3.1.4).
//!
//! Reusable building blocks called by all processes of a communicator,
//! "much like a collective operation", designed to work with as little
//! context as possible: any process count, any concurrent traffic.
//!
//! * [`sendrecv`] — the paper's `mpi_commpattern_sendrecv`: even/odd
//!   pairwise exchange, the skeleton of *Late Sender* / *Late Receiver*;
//! * [`shift`] — the paper's `mpi_commpattern_shift`: a cyclic ring shift
//!   where every process both sends and receives.

use crate::buffer::MpiBuf;
use ats_mpi::{Comm, Proc};

/// Transfer direction, the paper's `DIR_UP` / `DIR_DOWN`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `sendrecv`: even ranks send to the next higher (odd) rank.
    /// `shift`: rank `i` sends to `(i + 1) mod size`.
    Up,
    /// `sendrecv`: odd ranks send to the next lower (even) rank.
    /// `shift`: rank `i` sends to `(i - 1) mod size`.
    Down,
}

/// Message mode flags, the paper's `use_isend` / `use_irecv` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatternMode {
    /// Use nonblocking sends completed by `MPI_Wait`.
    pub use_isend: bool,
    /// Use nonblocking receives completed by `MPI_Wait`.
    pub use_irecv: bool,
    /// Use synchronous-mode (rendezvous) sends; required to make the
    /// *Late Receiver* property observable with eager-sized buffers.
    pub use_ssend: bool,
}

const PATTERN_TAG: i32 = 4711;

/// Even/odd pairwise exchange. With [`Dir::Up`], even ranks send to their
/// odd neighbour `rank + 1`; with [`Dir::Down`], odd ranks send to `rank -
/// 1`. With an odd number of processes the last process sits out, exactly
/// as in the paper. `dir` and `mode` must be equal on all callers.
pub fn sendrecv(p: &mut Proc, buf: &MpiBuf, dir: Dir, mode: PatternMode, comm: &Comm) {
    let me = comm.rank();
    let sz = comm.size();
    let pairs = sz / 2 * 2;
    if me >= pairs {
        return; // odd process count: the last rank does not participate
    }
    let even = me.is_multiple_of(2);
    let peer = if even { me + 1 } else { me - 1 };
    let i_send = match dir {
        Dir::Up => even,
        Dir::Down => !even,
    };
    if i_send {
        match (mode.use_isend, mode.use_ssend) {
            (true, _) => {
                let mut req = p.isend(buf.bytes(), peer, PATTERN_TAG, comm);
                p.wait(&mut req);
            }
            (false, true) => p.ssend(buf.bytes(), peer, PATTERN_TAG, comm),
            (false, false) => p.send(buf.bytes(), peer, PATTERN_TAG, comm),
        }
    } else if mode.use_irecv {
        let mut req = p.irecv(peer, PATTERN_TAG, comm);
        p.wait(&mut req);
    } else {
        let _ = p.recv(peer, PATTERN_TAG, comm);
    }
}

/// Cyclic shift: every process sends `sbuf` to its neighbour in `dir` and
/// receives into `rbuf` from the opposite neighbour. Internally the send is
/// always posted nonblocking before the receive so the ring cannot deadlock
/// at any message size, matching the paper's "should work regardless of the
/// number of processors" requirement.
pub fn shift(
    p: &mut Proc,
    sbuf: &MpiBuf,
    rbuf: &mut MpiBuf,
    dir: Dir,
    mode: PatternMode,
    comm: &Comm,
) {
    let me = comm.rank();
    let sz = comm.size();
    if sz == 1 {
        rbuf.fill_from(sbuf.bytes());
        return;
    }
    let (to, from) = match dir {
        Dir::Up => ((me + 1) % sz, (me + sz - 1) % sz),
        Dir::Down => ((me + sz - 1) % sz, (me + 1) % sz),
    };
    let mut sreq = p.isend(sbuf.bytes(), to, PATTERN_TAG, comm);
    let data = if mode.use_irecv {
        let mut rreq = p.irecv(from, PATTERN_TAG, comm);
        let (data, _) = p.wait(&mut rreq).expect("recv request yields data");
        data
    } else {
        let (data, _) = p.recv(from, PATTERN_TAG, comm);
        data
    };
    p.wait(&mut sreq);
    rbuf.fill_from(&data);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::alloc_mpi_buf;
    use ats_mpi::{run, Datatype, SimConfig};
    use ats_runtime::{MachineModel, VDur, VTime};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn sendrecv_up_pairs_even_to_odd() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let mut buf = alloc_mpi_buf(Datatype::Byte, 8);
            buf.fill_pattern(p.rank() as u8);
            sendrecv(p, &buf, Dir::Up, PatternMode::default(), &c);
            // The pattern itself checks nothing about payloads (receive
            // data is pattern-internal); what matters is that it completes
            // for every mode — payload flow is covered by the substrate
            // tests. Just ensure clocks advanced consistently.
            assert_eq!(p.clock(), VTime::ZERO);
        });
    }

    #[test]
    fn sendrecv_all_modes_complete() {
        for mode in [
            PatternMode::default(),
            PatternMode {
                use_isend: true,
                ..Default::default()
            },
            PatternMode {
                use_irecv: true,
                ..Default::default()
            },
            PatternMode {
                use_isend: true,
                use_irecv: true,
                use_ssend: false,
            },
            PatternMode {
                use_ssend: true,
                ..Default::default()
            },
        ] {
            run(cfg(4), move |p| {
                let c = p.comm_world();
                let buf = alloc_mpi_buf(Datatype::Float64, 16);
                sendrecv(p, &buf, Dir::Up, mode, &c);
                sendrecv(p, &buf, Dir::Down, mode, &c);
            });
        }
    }

    #[test]
    fn sendrecv_odd_process_count_last_rank_sits_out() {
        run(cfg(5), |p| {
            let c = p.comm_world();
            let buf = alloc_mpi_buf(Datatype::Byte, 4);
            sendrecv(p, &buf, Dir::Up, PatternMode::default(), &c);
            if p.rank() == 4 {
                assert_eq!(p.clock(), VTime::ZERO, "last rank idles");
            }
        });
    }

    #[test]
    fn sendrecv_down_reverses_direction_wait_side() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            let buf = alloc_mpi_buf(Datatype::Byte, 4);
            // Rank 1 (odd) sends late; rank 0 (even) receives and waits.
            if p.rank() == 1 {
                p.do_work(VDur::from_millis(20));
            }
            sendrecv(p, &buf, Dir::Down, PatternMode::default(), &c);
            if p.rank() == 0 {
                assert_eq!(p.clock(), VTime::from_secs(0.020), "late-sender wait");
            }
        });
    }

    #[test]
    fn shift_moves_data_around_the_ring() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let mut sbuf = alloc_mpi_buf(Datatype::Byte, 4);
            sbuf.fill_from(&[p.rank() as u8; 4]);
            let mut rbuf = alloc_mpi_buf(Datatype::Byte, 4);
            shift(p, &sbuf, &mut rbuf, Dir::Up, PatternMode::default(), &c);
            let expect = ((p.rank() + 3) % 4) as u8;
            assert_eq!(rbuf.bytes(), &[expect; 4], "receive from lower neighbour");
            shift(p, &sbuf, &mut rbuf, Dir::Down, PatternMode::default(), &c);
            let expect = ((p.rank() + 1) % 4) as u8;
            assert_eq!(rbuf.bytes(), &[expect; 4], "receive from upper neighbour");
        });
    }

    #[test]
    fn shift_single_process_is_a_self_copy() {
        run(cfg(1), |p| {
            let c = p.comm_world();
            let mut sbuf = alloc_mpi_buf(Datatype::Byte, 2);
            sbuf.fill_from(&[7, 8]);
            let mut rbuf = alloc_mpi_buf(Datatype::Byte, 2);
            shift(p, &sbuf, &mut rbuf, Dir::Up, PatternMode::default(), &c);
            assert_eq!(rbuf.bytes(), &[7, 8]);
        });
    }

    #[test]
    fn shift_does_not_deadlock_with_rendezvous_sizes() {
        let mut config = cfg(4);
        config.model.eager_threshold = 8; // force rendezvous
        run(config, |p| {
            let c = p.comm_world();
            let sbuf = alloc_mpi_buf(Datatype::Byte, 64);
            let mut rbuf = alloc_mpi_buf(Datatype::Byte, 64);
            shift(p, &sbuf, &mut rbuf, Dir::Up, PatternMode::default(), &c);
        });
    }

    #[test]
    fn shift_with_irecv_mode() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            let mut sbuf = alloc_mpi_buf(Datatype::Byte, 1);
            sbuf.fill_from(&[p.rank() as u8]);
            let mut rbuf = alloc_mpi_buf(Datatype::Byte, 1);
            let mode = PatternMode {
                use_irecv: true,
                ..Default::default()
            };
            shift(p, &sbuf, &mut rbuf, Dir::Up, mode, &c);
            assert_eq!(rbuf.bytes()[0], ((p.rank() + 2) % 3) as u8);
        });
    }
}
