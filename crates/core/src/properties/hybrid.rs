//! Hybrid MPI × OpenMP performance properties.
//!
//! The paper extends its catalog to "a hybrid MPI/OpenMP programming
//! style, especially with the Hitachi SR-8000 in mind" [Gerndt 2002]. The
//! canonical hybrid pathologies are cross-level: imbalance *inside* a
//! rank's thread team turning into MPI wait states *between* ranks, and
//! thread idleness while the master communicates. These functions build
//! exactly those shapes from the two substrates.

use super::frame_mpi;
use crate::buffer::BaseComm;
use crate::distribution::Distr;
use crate::hybrid::with_omp;
use crate::pattern::{sendrecv, Dir, PatternMode};
use ats_mpi::{Comm, Proc};
use ats_omp::parallel;
use ats_runtime::VDur;

/// *OpenMP Imbalance feeding an MPI Barrier*: every rank runs a thread
/// team whose load depends on the rank (`rank_df`) and thread (`thread_df`),
/// then all ranks synchronize. Detectable at two levels: imbalance at the
/// join inside each rank, and wait-at-barrier between ranks.
pub fn omp_imbalance_at_mpi_barrier(
    p: &mut Proc,
    nthreads: usize,
    rank_df: &Distr,
    thread_df: &Distr,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "omp_imbalance_at_mpi_barrier", |p| {
        let rank_scale = rank_df.value(comm.rank(), comm.size(), 1.0);
        for _ in 0..r {
            with_omp(p, |m| {
                parallel(m, nthreads, |th| {
                    let w = thread_df.work(th.thread_num(), th.num_threads(), rank_scale);
                    th.do_work(w);
                });
            });
            p.barrier(comm);
        }
    });
}

/// *Idle Threads during MPI*: each repetition alternates a balanced
/// parallel phase with a master-only MPI exchange — while the even/odd
/// `sendrecv` runs, the rank's worker threads do not exist (the paper's
/// "idle threads" property for master-only communication styles).
/// `commdelay` adds artificial skew so the exchange also contains a
/// late-sender component.
pub fn mpi_in_omp_serial(
    p: &mut Proc,
    base: &BaseComm,
    nthreads: usize,
    threadwork: f64,
    commdelay: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "mpi_in_omp_serial", |p| {
        let buf = base.alloc();
        for _ in 0..r {
            with_omp(p, |m| {
                parallel(m, nthreads, |th| {
                    th.do_work(VDur::from_secs(threadwork));
                });
            });
            if comm.rank().is_multiple_of(2) {
                p.do_work(VDur::from_secs(commdelay));
            }
            sendrecv(p, &buf, Dir::Up, PatternMode::default(), comm);
        }
    });
}

/// *Nested Imbalance*: an imbalanced inner team inside each member of an
/// imbalanced outer team, inside every rank — the stress case the paper
/// sketches for testing tools on "several OpenMP thread groups, each
/// executing different or the same sets of performance property functions
/// in parallel".
pub fn nested_omp_imbalance(
    p: &mut Proc,
    outer_threads: usize,
    inner_threads: usize,
    df: &Distr,
    r: usize,
    comm: &Comm,
) {
    let _ = comm;
    frame_mpi(p, "nested_omp_imbalance", |p| {
        for _ in 0..r {
            with_omp(p, |m| {
                parallel(m, outer_threads, |outer| {
                    let outer_id = outer.thread_num();
                    let outer_n = outer.num_threads();
                    parallel(outer, inner_threads, |inner| {
                        let scale = df.value(outer_id, outer_n, 1.0);
                        let w = df.work(inner.thread_num(), inner.num_threads(), scale);
                        inner.do_work(w);
                    });
                });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VTime};
    use ats_trace::check_wellformed;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn hybrid_imbalance_aligns_at_global_max() {
        let rank_df = Distr::linear(1.0, 2.0);
        let thread_df = Distr::linear(0.005, 0.010);
        ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            omp_imbalance_at_mpi_barrier(p, 2, &rank_df, &thread_df, 1, &c);
            // Slowest: rank 1 (scale 2.0) thread 1 (10ms) = 20ms.
            assert_eq!(p.clock(), VTime::from_secs(0.020));
        });
    }

    #[test]
    fn hybrid_trace_has_both_levels() {
        let rank_df = Distr::same(1.0);
        let thread_df = Distr::cyclic2(0.002, 0.006);
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            omp_imbalance_at_mpi_barrier(p, 3, &rank_df, &thread_df, 2, &c);
        });
        assert!(trace.find_region("omp_parallel").is_some());
        assert!(trace.find_region("MPI_Barrier").is_some());
        assert!(check_wellformed(&trace).is_empty());
        // 2 ranks x (1 master + 2 spawned x 2 reps): locations merge per
        // (rank, thread) id, so at least 2 x 3.
        assert!(trace.num_locations() >= 6);
    }

    #[test]
    fn mpi_in_omp_serial_creates_late_sender() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_in_omp_serial(p, &BaseComm::default(), 2, 0.004, 0.030, 1, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.034));
        });
        assert!(trace.find_region("mpi_in_omp_serial").is_some());
    }

    #[test]
    fn nested_imbalance_completes_wellformed() {
        let df = Distr::linear(0.001, 0.004);
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            nested_omp_imbalance(p, 2, 2, &df, 2, &c);
        });
        assert!(check_wellformed(&trace).is_empty());
        assert!(trace.find_region("nested_omp_imbalance").is_some());
    }
}
