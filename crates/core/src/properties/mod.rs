//! Performance property functions (paper §3.1.5).
//!
//! Each function, when executed by all members of a communicator (or by a
//! thread team), produces one well-defined performance property with a
//! severity controlled by its parameters. The functions are deliberately
//! context-free: any process count, any communicator, any surrounding
//! traffic.
//!
//! Every property function wraps its body in a trace region named after
//! itself, so analyzers can localize the property in the call tree — that
//! localization is exactly what the paper's Figure 3.5 demonstrates with
//! EXPERT finding *Late Broadcast* inside `late_broadcast()`.
//!
//! The module split mirrors the paper's catalog:
//!
//! * [`mpi_p2p`] — MPI point-to-point properties (late sender/receiver);
//! * [`mpi_coll`] — MPI collective properties (imbalance at barrier /
//!   alltoall, late broadcast/scatter\[v\], early reduce/gather\[v\], plus the
//!   allreduce/scan extensions from the ASL catalog);
//! * [`omp`] — OpenMP properties (imbalance in parallel region / at
//!   barrier / in loop, plus sections, single/master serialization, and
//!   critical-section contention);
//! * [`hybrid`] — MPI × OpenMP composites;
//! * [`sequential`] — single-process pathologies;
//! * [`negative`] — well-tuned programs that must produce *no* findings.

pub mod hybrid;
pub mod mpi_coll;
pub mod mpi_p2p;
pub mod negative;
pub mod omp;
pub mod sequential;

use ats_mpi::Proc;
use ats_omp::Master;
use ats_trace::RegionKind;

/// Open a property frame on an MPI rank.
pub(crate) fn frame_mpi<R>(p: &mut Proc, name: &str, body: impl FnOnce(&mut Proc) -> R) -> R {
    p.enter_region(name, RegionKind::Property);
    let out = body(p);
    p.exit_region(name);
    out
}

/// Open a property frame on an OpenMP master.
pub(crate) fn frame_omp<M: Master, R>(m: &mut M, name: &str, body: impl FnOnce(&mut M) -> R) -> R {
    let id = m.collector().intern(name, RegionKind::Property);
    let t = m.clock();
    m.local_mut().enter(t, id);
    let out = body(m);
    let t = m.clock();
    m.local_mut().exit(t, id);
    out
}
