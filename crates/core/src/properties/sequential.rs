//! Sequential performance properties.
//!
//! The paper's future-work list asks for "test functions for sequential
//! performance properties". In a parallel test program the sequential
//! pathologies that matter to a parallel-performance tool are phases that
//! *serialize* the computation; these functions produce the two canonical
//! shapes.

use super::frame_mpi;
use ats_mpi::{Comm, Proc};
use ats_runtime::VDur;

/// *Serial Initialization* (Amdahl bottleneck): rank `root` performs a
/// long sequential phase while everyone else waits at a barrier before the
/// parallel computation starts.
pub fn serial_initialization(
    p: &mut Proc,
    root: usize,
    serialwork: f64,
    parwork: f64,
    comm: &Comm,
) {
    frame_mpi(p, "serial_initialization", |p| {
        if comm.rank() == root {
            p.do_work(VDur::from_secs(serialwork));
        }
        p.barrier(comm);
        p.do_work(VDur::from_secs(parwork));
    });
}

/// *Dominating Sequential Phase*: alternating balanced parallel phases
/// with root-only sequential phases, repeated — the classic
/// insufficient-parallelization profile.
pub fn dominating_sequential_phases(
    p: &mut Proc,
    root: usize,
    serialwork: f64,
    parwork: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "dominating_sequential_phases", |p| {
        for _ in 0..r {
            p.do_work(VDur::from_secs(parwork));
            p.barrier(comm);
            if comm.rank() == root {
                p.do_work(VDur::from_secs(serialwork));
            }
            p.barrier(comm);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VTime};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn serial_init_delays_everyone() {
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            serial_initialization(p, 0, 0.050, 0.010, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.060));
        });
    }

    #[test]
    fn dominating_phases_cost_serial_plus_parallel() {
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            dominating_sequential_phases(p, 1, 0.020, 0.005, 3, &c);
            assert_eq!(p.clock(), VTime::from_secs(3.0 * 0.025));
        });
    }

    #[test]
    fn frames_present() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            serial_initialization(p, 0, 0.001, 0.001, &c);
            dominating_sequential_phases(p, 0, 0.001, 0.001, 1, &c);
        });
        assert!(trace.find_region("serial_initialization").is_some());
        assert!(trace.find_region("dominating_sequential_phases").is_some());
    }
}
