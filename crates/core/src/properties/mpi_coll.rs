//! MPI collective performance properties.
//!
//! Ports of the paper's eight collective prototype functions (signatures
//! reproduced below) plus the allreduce/scan extensions its future-work
//! section calls for:
//!
//! ```c
//! void imbalance_at_mpi_barrier(distr_func_t df, distr_t* dd, int r, MPI_Comm c);
//! void imbalance_at_mpi_alltoall(distr_func_t df, distr_t* dd, int r, MPI_Comm c);
//! void late_broadcast(double basework, double rootextrawork, int root, int r, MPI_Comm c);
//! void late_scatter(double basework, double rootextrawork, int root, int r, MPI_Comm c);
//! void late_scatterv(double basework, double rootextrawork, int root, int r, MPI_Comm c);
//! void early_reduce(double rootwork, double baseextrawork, int root, int r, MPI_Comm c);
//! void early_gather(double rootwork, double baseextrawork, int root, int r, MPI_Comm c);
//! void early_gatherv(double rootwork, double baseextrawork, int root, int r, MPI_Comm c);
//! ```

use super::frame_mpi;
use crate::buffer::{alloc_mpi_vbuf, BaseComm};
use crate::distribution::Distr;
use crate::work::par_do_mpi_work;
use ats_mpi::{Comm, Datatype, Proc, ReduceOp};

/// *Imbalance at `MPI_Barrier`* (paper Fig. 3.2): distribution-shaped work
/// followed by a barrier, repeated `r` times. Every participant's barrier
/// wait equals the gap between its work and the slowest member's.
pub fn imbalance_at_mpi_barrier(p: &mut Proc, df: &Distr, r: usize, comm: &Comm) {
    frame_mpi(p, "imbalance_at_mpi_barrier", |p| {
        for _ in 0..r {
            par_do_mpi_work(p, df, 1.0, comm);
            p.barrier(comm);
        }
    });
}

/// *Wait at N×N* — imbalance in front of an `MPI_Alltoall`, which cannot
/// start until its last participant arrives.
pub fn imbalance_at_mpi_alltoall(p: &mut Proc, base: &BaseComm, df: &Distr, r: usize, comm: &Comm) {
    frame_mpi(p, "imbalance_at_mpi_alltoall", |p| {
        // Equal per-destination chunks of the base size.
        let send = vec![0u8; base.bytes() * comm.size()];
        for _ in 0..r {
            par_do_mpi_work(p, df, 1.0, comm);
            let _ = p.alltoall(&send, comm);
        }
    });
}

/// *Imbalance at `MPI_Allreduce`* (ASL extension): like the alltoall
/// variant, for the reduction-to-all collective.
pub fn imbalance_at_mpi_allreduce(
    p: &mut Proc,
    base: &BaseComm,
    df: &Distr,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "imbalance_at_mpi_allreduce", |p| {
        let mine = vec![0u8; base.bytes()];
        for _ in 0..r {
            par_do_mpi_work(p, df, 1.0, comm);
            let _ = p.allreduce(&mine, ReduceOp::Sum, Datatype::Float64, comm);
        }
    });
}

/// *Imbalance at `MPI_Scan`* (ASL extension): descending work ramp in
/// front of a prefix reduction — rank `i` waits on every heavier rank
/// `j < i`.
pub fn imbalance_at_mpi_scan(p: &mut Proc, base: &BaseComm, df: &Distr, r: usize, comm: &Comm) {
    frame_mpi(p, "imbalance_at_mpi_scan", |p| {
        let mine = vec![0u8; base.bytes()];
        for _ in 0..r {
            par_do_mpi_work(p, df, 1.0, comm);
            let _ = p.scan(&mine, ReduceOp::Sum, Datatype::Float64, comm);
        }
    });
}

/// *Progressive Imbalance at `MPI_Barrier`*: the paper's remark made
/// concrete — "the severity of the pattern is a function of the iteration
/// number ... easily implemented by using the scale factor parameter".
/// Iteration `i` runs the distribution scaled by `1 + growth·i`, so the
/// imbalance ramps up over the run.
pub fn progressive_imbalance_at_mpi_barrier(
    p: &mut Proc,
    df: &Distr,
    growth: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "progressive_imbalance_at_mpi_barrier", |p| {
        for i in 0..r {
            par_do_mpi_work(p, df, 1.0 + growth * i as f64, comm);
            p.barrier(comm);
        }
    });
}

/// *Growing Imbalance at `MPI_Barrier`*: the heavy half's *extra* work
/// grows by `extrastep` every iteration while the base stays fixed, so the
/// waiting *fraction* of each iteration rises — the shape windowed (phase)
/// analysis exists to detect. (Contrast with
/// [`progressive_imbalance_at_mpi_barrier`], which scales work and wait
/// together and therefore keeps the waiting fraction constant.)
pub fn growing_imbalance_at_mpi_barrier(
    p: &mut Proc,
    basework: f64,
    extrastep: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "growing_imbalance_at_mpi_barrier", |p| {
        for i in 0..r {
            let dd = Distr::block2(basework, basework + extrastep * (i + 1) as f64);
            par_do_mpi_work(p, &dd, 1.0, comm);
            p.barrier(comm);
        }
    });
}

/// Work distribution for the rooted "late" properties: everyone does
/// `basework`, the root does `basework + rootextrawork`.
fn late_root_distr(basework: f64, rootextrawork: f64, root: usize) -> Distr {
    Distr::peak(basework, basework + rootextrawork, root)
}

/// Work distribution for the rooted "early" properties: the root does only
/// `rootwork`, everyone else `rootwork + baseextrawork`.
fn early_root_distr(rootwork: f64, baseextrawork: f64, root: usize) -> Distr {
    // `peak` assigns `high` to the peak rank; here the root is the *light*
    // one, so the names invert: high = rootwork, low = rootwork + extra.
    Distr::peak(rootwork + baseextrawork, rootwork, root)
}

/// *Late Broadcast*: all non-root ranks wait inside `MPI_Bcast` because
/// the root enters `rootextrawork` late.
pub fn late_broadcast(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    rootextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_broadcast", |p| {
        let dd = late_root_distr(basework, rootextrawork, root);
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let mut buf = base.alloc().data.to_vec();
            p.bcast(&mut buf, root, comm);
        }
    });
}

/// *Late Scatter*: like [`late_broadcast`] for `MPI_Scatter`.
pub fn late_scatter(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    rootextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_scatter", |p| {
        let dd = late_root_distr(basework, rootextrawork, root);
        let send = vec![0u8; base.bytes() * comm.size()];
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let _ = p.scatter(&send, root, comm);
        }
    });
}

/// *Late Scatterv*: the irregular variant; per-rank chunk sizes ramp
/// linearly so the trace also exercises the v-buffer machinery.
pub fn late_scatterv(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    rootextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_scatterv", |p| {
        let dd = late_root_distr(basework, rootextrawork, root);
        // Chunk sizes from 1x to 2x the base count across ranks.
        let counts_df = Distr::linear(base.count as f64, 2.0 * base.count as f64);
        let vbuf = alloc_mpi_vbuf(base.dtype, &counts_df, 1.0, root, comm.size());
        let byte_counts = vbuf.byte_counts();
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let _ = p.scatterv(&vbuf.data, &byte_counts, root, comm);
        }
    });
}

/// *Early Reduce*: the root enters `MPI_Reduce` with almost no work and
/// waits for the contributions of the `baseextrawork`-delayed members.
pub fn early_reduce(
    p: &mut Proc,
    base: &BaseComm,
    rootwork: f64,
    baseextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "early_reduce", |p| {
        let dd = early_root_distr(rootwork, baseextrawork, root);
        let mine = vec![0u8; base.bytes()];
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let _ = p.reduce(&mine, ReduceOp::Sum, Datatype::Float64, root, comm);
        }
    });
}

/// *Early Gather*: like [`early_reduce`] for `MPI_Gather`.
pub fn early_gather(
    p: &mut Proc,
    base: &BaseComm,
    rootwork: f64,
    baseextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "early_gather", |p| {
        let dd = early_root_distr(rootwork, baseextrawork, root);
        let mine = vec![0u8; base.bytes()];
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let _ = p.gather(&mine, root, comm);
        }
    });
}

/// *Early Gatherv*: the irregular variant of [`early_gather`]; each rank
/// contributes a rank-dependent amount.
pub fn early_gatherv(
    p: &mut Proc,
    base: &BaseComm,
    rootwork: f64,
    baseextrawork: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "early_gatherv", |p| {
        let dd = early_root_distr(rootwork, baseextrawork, root);
        let counts_df = Distr::linear(base.count as f64, 2.0 * base.count as f64);
        let my_count = counts_df.count(comm.rank(), comm.size(), 1.0);
        let mine = vec![0u8; my_count * base.dtype.size()];
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            let _ = p.gatherv(&mine, root, comm);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur, VTime};
    use ats_trace::{check_wellformed, EventKind, TraceStats};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    fn base() -> BaseComm {
        BaseComm::default()
    }

    #[test]
    fn imbalance_at_barrier_aligns_at_max() {
        let df = Distr::linear(0.010, 0.040);
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            imbalance_at_mpi_barrier(p, &df, 2, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.080));
        });
    }

    #[test]
    fn imbalance_at_barrier_trace_has_r_barriers() {
        let df = Distr::block2(0.001, 0.003);
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            imbalance_at_mpi_barrier(p, &df, 5, &c);
        });
        let stats = TraceStats::compute(&trace);
        let bar = trace.find_region("MPI_Barrier").unwrap();
        assert_eq!(stats.region_total(bar).visits, 4 * 5);
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn late_broadcast_makes_members_wait_for_root() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            late_broadcast(p, &base(), 0.005, 0.050, 1, 1, &c);
            // Everyone leaves the bcast at the root's entry: 55ms.
            assert_eq!(p.clock(), VTime::from_secs(0.055));
        });
        // Non-root members entered the bcast at 5ms and left at 55ms.
        let loc0 = trace.location(ats_trace::LocationId::rank(0)).unwrap();
        let coll = loc0
            .events
            .iter()
            .find(|e| {
                matches!(
                    e.kind,
                    EventKind::CollEnd {
                        op: ats_trace::CollOp::Bcast,
                        ..
                    }
                )
            })
            .expect("bcast record");
        match coll.kind {
            EventKind::CollEnd { entered, root, .. } => {
                assert_eq!(entered, VTime::from_secs(0.005));
                assert_eq!(root, Some(1));
                assert_eq!(coll.time, VTime::from_secs(0.055));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn early_reduce_root_absorbs_the_wait() {
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            early_reduce(p, &base(), 0.002, 0.030, 0, 1, &c);
            if p.rank() == 0 {
                // Root: 2ms work, waits in reduce until members at 32ms.
                assert_eq!(p.clock(), VTime::from_secs(0.032));
            }
        });
    }

    #[test]
    fn late_scatter_and_scatterv_complete_and_frame() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            late_scatter(p, &base(), 0.001, 0.010, 0, 2, &c);
            late_scatterv(p, &base(), 0.001, 0.010, 0, 2, &c);
        });
        for name in [
            "late_scatter",
            "late_scatterv",
            "MPI_Scatter",
            "MPI_Scatterv",
        ] {
            assert!(trace.find_region(name).is_some(), "missing {name}");
        }
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn early_gather_and_gatherv_complete_and_frame() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            early_gather(p, &base(), 0.001, 0.010, 2, 2, &c);
            early_gatherv(p, &base(), 0.001, 0.010, 2, 2, &c);
        });
        for name in ["early_gather", "early_gatherv", "MPI_Gather", "MPI_Gatherv"] {
            assert!(trace.find_region(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn alltoall_imbalance_synchronizes_at_max() {
        let df = Distr::peak(0.001, 0.021, 3);
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            imbalance_at_mpi_alltoall(p, &base(), &df, 1, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.021));
        });
    }

    #[test]
    fn allreduce_and_scan_extensions_run() {
        let df = Distr::cyclic2(0.001, 0.003);
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            imbalance_at_mpi_allreduce(p, &base(), &df, 2, &c);
            imbalance_at_mpi_scan(p, &base(), &df, 2, &c);
        });
        assert!(trace.find_region("MPI_Allreduce").is_some());
        assert!(trace.find_region("MPI_Scan").is_some());
    }

    #[test]
    fn rooted_properties_work_on_subcommunicators() {
        // The paper's Fig 3.4/3.5 scenario: late_broadcast on the upper
        // half with communicator-local root 1 → global ranks 9..15 wait
        // for global rank 9 (here scaled down to 8 ranks).
        ats_mpi::run(cfg(8), |p| {
            let c = p.comm_world();
            let color = (p.rank() / 4) as i64;
            let half = p.comm_split(color, p.rank() as i64, &c).unwrap();
            if color == 1 {
                late_broadcast(p, &base(), 0.002, 0.020, 1, 1, &half);
                assert_eq!(p.clock(), VTime::from_secs(0.022));
            }
        });
    }

    #[test]
    fn growing_imbalance_accumulates_per_iteration_steps() {
        ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            growing_imbalance_at_mpi_barrier(p, 0.002, 0.004, 3, &c);
            // Heavy half: sum of (base + step*(i+1)) = 3*2 + 4+8+12 = 30ms.
            assert_eq!(p.clock(), VTime::from_secs(0.030));
        });
    }

    #[test]
    fn severity_scales_with_extrawork() {
        // The wait programmed by late_broadcast is monotone in
        // rootextrawork — the property the severity sweeps rely on.
        let mut makespans = Vec::new();
        for extra in [0.01, 0.02, 0.04] {
            let trace = ats_mpi::run(cfg(4), move |p| {
                let c = p.comm_world();
                late_broadcast(p, &BaseComm::default(), 0.001, extra, 0, 2, &c);
            });
            makespans.push(trace.end_time());
        }
        assert!(makespans[0] < makespans[1]);
        assert!(makespans[1] < makespans[2]);
    }
}
