//! OpenMP performance properties.
//!
//! Ports of the paper's three prototype functions:
//!
//! ```c
//! void imbalance_in_omp_pregion(distr_func_t df, distr_t* dd, int r);
//! void imbalance_at_omp_barrier(distr_func_t df, distr_t* dd, int r);
//! void imbalance_in_omp_loop(distr_func_t df, distr_t* dd, int r);
//! ```
//!
//! plus the worksharing/synchronization properties the ASL catalog lists
//! as required for a complete OpenMP suite: sections imbalance,
//! `single`/`master` serialization, critical-section contention, and
//! frequent-synchronization overhead.
//!
//! All functions take any [`Master`] — a standalone program, an MPI rank
//! (hybrid), or an enclosing thread (nested parallelism) — plus the team
//! size, which in the C original is implicit in `OMP_NUM_THREADS`.

use super::frame_omp;
use crate::distribution::Distr;
use crate::work::par_do_omp_work;
use ats_omp::{parallel, Master, Schedule};
use ats_runtime::VDur;

/// *Imbalance in Parallel Region*: each repetition forks a team whose
/// threads perform distribution-shaped work; the join makes the imbalance
/// visible as master-side idle time.
pub fn imbalance_in_omp_pregion<M: Master>(m: &mut M, nthreads: usize, df: &Distr, r: usize) {
    frame_omp(m, "imbalance_in_omp_pregion", |m| {
        for _ in 0..r {
            parallel(m, nthreads, |th| {
                par_do_omp_work(th, df, 1.0);
            });
        }
    });
}

/// *Imbalance at OpenMP Barrier* (the paper's fully-listed example): one
/// parallel region; inside, `r` iterations of shaped work followed by an
/// explicit barrier.
pub fn imbalance_at_omp_barrier<M: Master>(m: &mut M, nthreads: usize, df: &Distr, r: usize) {
    frame_omp(m, "imbalance_at_omp_barrier", |m| {
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                par_do_omp_work(th, df, 1.0);
                th.barrier();
            }
        });
    });
}

/// *Progressive Imbalance at OpenMP Barrier*: per-iteration scale factor,
/// the shared-memory twin of
/// [`crate::properties::mpi_coll::progressive_imbalance_at_mpi_barrier`].
pub fn progressive_imbalance_at_omp_barrier<M: Master>(
    m: &mut M,
    nthreads: usize,
    df: &Distr,
    growth: f64,
    r: usize,
) {
    frame_omp(m, "progressive_imbalance_at_omp_barrier", |m| {
        parallel(m, nthreads, |th| {
            for i in 0..r {
                par_do_omp_work(th, df, 1.0 + growth * i as f64);
                th.barrier();
            }
        });
    });
}

/// *Imbalance in OpenMP Loop*: a statically-scheduled worksharing loop
/// with one iteration per thread, where iteration `i` costs `df(i)` — the
/// implicit barrier at loop end collects the waits.
pub fn imbalance_in_omp_loop<M: Master>(m: &mut M, nthreads: usize, df: &Distr, r: usize) {
    frame_omp(m, "imbalance_in_omp_loop", |m| {
        parallel(m, nthreads, |th| {
            let n = th.num_threads();
            for _ in 0..r {
                th.for_loop(n, Schedule::Static(Some(1)), |th, i| {
                    th.do_work(df.work(i, n, 1.0));
                });
            }
        });
    });
}

/// *Imbalance in OpenMP Loop (dynamic)* — extension: the same shaped loop
/// under `schedule(dynamic)`, which *repairs* most of the imbalance; the
/// pair (static, dynamic) gives an analyzer a positive/negative contrast
/// on the same code shape.
pub fn imbalance_in_omp_loop_dynamic<M: Master>(
    m: &mut M,
    nthreads: usize,
    df: &Distr,
    iters_per_thread: usize,
    r: usize,
) {
    frame_omp(m, "imbalance_in_omp_loop_dynamic", |m| {
        parallel(m, nthreads, |th| {
            let n = th.num_threads();
            let iters = n * iters_per_thread;
            for _ in 0..r {
                th.for_loop(iters, Schedule::Dynamic(1), |th, i| {
                    th.do_work(df.work(i % n, n, 1.0));
                });
            }
        });
    });
}

/// *Imbalance at OpenMP Sections* — extension: one section per thread,
/// with section `i` costing `df(i)`.
pub fn imbalance_at_omp_sections<M: Master>(m: &mut M, nthreads: usize, df: &Distr, r: usize) {
    frame_omp(m, "imbalance_at_omp_sections", |m| {
        parallel(m, nthreads, |th| {
            let n = th.num_threads();
            for _ in 0..r {
                // One section per thread, each with its own cost.
                let costs: Vec<VDur> = (0..n).map(|i| df.work(i, n, 1.0)).collect();
                shaped_sections(th, costs);
            }
        });
    });
}

/// A boxed section body pinned to the team lifetime.
type SectionBody<'t> = Box<dyn FnMut(&mut ats_omp::OmpThread<'t>)>;

/// Run one fixed-cost section per team member (helper that pins the
/// section closures to the thread's team lifetime).
fn shaped_sections<'t>(th: &mut ats_omp::OmpThread<'t>, costs: Vec<VDur>) {
    let mut bodies: Vec<SectionBody<'t>> = costs
        .into_iter()
        .map(|c| Box::new(move |th: &mut ats_omp::OmpThread<'t>| th.do_work(c)) as SectionBody<'t>)
        .collect();
    let mut refs: Vec<&mut dyn FnMut(&mut ats_omp::OmpThread<'t>)> =
        bodies.iter_mut().map(|b| b.as_mut() as _).collect();
    th.sections(&mut refs);
}

/// *Serialization in `single`* — extension (ASL: "unparallelized code in
/// single region"): all threads idle at the implicit barrier while thread
/// 0 executes `singlework` seconds.
pub fn unparallelized_in_omp_single<M: Master>(
    m: &mut M,
    nthreads: usize,
    singlework: f64,
    r: usize,
) {
    frame_omp(m, "unparallelized_in_omp_single", |m| {
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                th.single(|th| th.do_work(VDur::from_secs(singlework)));
            }
        });
    });
}

/// *Serialization in `master`* — extension: the master computes
/// `masterwork` while the team computes only `otherwork`; the join
/// collects the idle time.
pub fn unparallelized_in_omp_master<M: Master>(
    m: &mut M,
    nthreads: usize,
    masterwork: f64,
    otherwork: f64,
    r: usize,
) {
    frame_omp(m, "unparallelized_in_omp_master", |m| {
        for _ in 0..r {
            parallel(m, nthreads, |th| {
                th.master_only(|th| th.do_work(VDur::from_secs(masterwork)));
                if th.thread_num() != 0 {
                    th.do_work(VDur::from_secs(otherwork));
                }
            });
        }
    });
}

/// *Critical-Section Contention* — extension: every thread repeatedly
/// enters the same named critical section for `bodywork` seconds, with
/// `outsidework` seconds of parallel work between visits. With
/// `outsidework < (nthreads − 1) · bodywork` the lock is the bottleneck.
pub fn omp_critical_contention<M: Master>(
    m: &mut M,
    nthreads: usize,
    bodywork: f64,
    outsidework: f64,
    r: usize,
) {
    frame_omp(m, "omp_critical_contention", |m| {
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                th.do_work(VDur::from_secs(outsidework));
                th.critical("ats_contended", |th| th.do_work(VDur::from_secs(bodywork)));
            }
        });
    });
}

/// *Lock Contention* — extension: all threads hammer one explicit lock
/// object (`omp_set_lock` style), the lock-based twin of
/// [`omp_critical_contention`].
pub fn omp_lock_contention<M: Master>(
    m: &mut M,
    nthreads: usize,
    bodywork: f64,
    outsidework: f64,
    r: usize,
) {
    frame_omp(m, "omp_lock_contention", |m| {
        let lock = std::sync::Arc::new(ats_omp::VirtualMutex::new());
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                th.do_work(VDur::from_secs(outsidework));
                th.with_lock(&lock, |th| th.do_work(VDur::from_secs(bodywork)));
            }
        });
    });
}

/// *Frequent Synchronization* — extension: almost no work between many
/// barriers, so the barrier overhead itself dominates. Only visible with a
/// non-zero machine model.
pub fn omp_frequent_barrier<M: Master>(m: &mut M, nthreads: usize, work: f64, r: usize) {
    frame_omp(m, "omp_frequent_barrier", |m| {
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                th.do_work(VDur::from_secs(work));
                th.barrier();
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_omp::{run_omp, OmpConfig};
    use ats_runtime::{MachineModel, VTime};
    use ats_trace::{check_wellformed, TraceStats};

    fn zero_cfg() -> OmpConfig {
        OmpConfig {
            model: MachineModel::zero(),
            ..Default::default()
        }
    }

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    #[test]
    fn pregion_imbalance_ends_at_slowest_thread() {
        let df = Distr::linear(0.010, 0.040);
        let trace = run_omp(zero_cfg(), |m| {
            imbalance_in_omp_pregion(m, 4, &df, 2);
            assert_eq!(m.clock(), t(80));
        });
        assert!(check_wellformed(&trace).is_empty());
        assert!(trace.find_region("imbalance_in_omp_pregion").is_some());
    }

    #[test]
    fn barrier_imbalance_accumulates_over_reps() {
        let df = Distr::cyclic2(0.005, 0.020);
        run_omp(zero_cfg(), |m| {
            imbalance_at_omp_barrier(m, 4, &df, 3);
            assert_eq!(m.clock(), t(60), "3 reps x 20ms max work");
        });
    }

    #[test]
    fn loop_imbalance_static_matches_distribution() {
        let df = Distr::peak(0.002, 0.030, 1);
        run_omp(zero_cfg(), |m| {
            imbalance_in_omp_loop(m, 4, &df, 1);
            assert_eq!(m.clock(), t(30), "peak iteration dominates");
        });
    }

    #[test]
    fn dynamic_variant_balances_the_same_shape() {
        // Same total work, many chunks: dynamic scheduling packs it.
        let df = Distr::cyclic2(0.004, 0.012);
        let (mut static_end, mut dynamic_end) = (VTime::ZERO, VTime::ZERO);
        run_omp(zero_cfg(), |m| {
            imbalance_in_omp_loop(m, 4, &df, 4);
            static_end = m.clock();
        });
        run_omp(zero_cfg(), |m| {
            imbalance_in_omp_loop_dynamic(m, 4, &df, 4, 1);
            dynamic_end = m.clock();
        });
        assert!(
            dynamic_end < static_end,
            "dynamic ({dynamic_end}) must beat static ({static_end})"
        );
    }

    #[test]
    fn sections_imbalance_runs_and_frames() {
        let df = Distr::block2(0.002, 0.010);
        let trace = run_omp(zero_cfg(), |m| {
            imbalance_at_omp_sections(m, 3, &df, 2);
        });
        assert!(trace.find_region("imbalance_at_omp_sections").is_some());
        assert!(trace.find_region("omp_sections").is_some());
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn single_serializes_the_team() {
        run_omp(zero_cfg(), |m| {
            unparallelized_in_omp_single(m, 4, 0.015, 2);
            assert_eq!(m.clock(), t(30), "2 reps x 15ms serialized");
        });
    }

    #[test]
    fn master_serialization_visible_at_join() {
        run_omp(zero_cfg(), |m| {
            unparallelized_in_omp_master(m, 4, 0.020, 0.004, 1);
            assert_eq!(m.clock(), t(20), "join waits for the master's 20ms");
        });
    }

    #[test]
    fn critical_contention_serializes() {
        run_omp(zero_cfg(), |m| {
            omp_critical_contention(m, 4, 0.010, 0.0, 1);
            // 4 threads through a 10ms critical: last leaves at 40ms.
            assert_eq!(m.clock(), t(40));
        });
    }

    #[test]
    fn critical_contention_has_waiting_time_in_trace() {
        let trace = run_omp(zero_cfg(), |m| {
            omp_critical_contention(m, 4, 0.010, 0.0, 1);
        });
        let stats = TraceStats::compute(&trace);
        let crit = trace.find_region("omp_critical").unwrap();
        let body = trace.find_region("omp_critical_body").unwrap();
        let wait = stats.region_total(crit).inclusive - stats.region_total(body).inclusive;
        // Waits: 0 + 10 + 20 + 30 = 60ms.
        assert_eq!(wait, ats_runtime::VDur::from_millis(60));
    }

    #[test]
    fn lock_contention_serializes_like_critical() {
        run_omp(zero_cfg(), |m| {
            omp_lock_contention(m, 4, 0.010, 0.0, 1);
            assert_eq!(m.clock(), t(40));
        });
    }

    #[test]
    fn frequent_barrier_only_costs_with_nonzero_model() {
        run_omp(zero_cfg(), |m| {
            omp_frequent_barrier(m, 4, 0.0, 100);
            assert_eq!(m.clock(), VTime::ZERO, "free under the zero model");
        });
        let mut cfg = zero_cfg();
        cfg.model.barrier_stage = ats_runtime::VDur::from_micros(10);
        run_omp(cfg, |m| {
            omp_frequent_barrier(m, 4, 0.0, 100);
            assert!(m.clock() > VTime::ZERO, "barrier overhead accumulates");
        });
    }

    #[test]
    fn balanced_distribution_produces_no_imbalance() {
        let df = Distr::same(0.010);
        run_omp(zero_cfg(), |m| {
            imbalance_at_omp_barrier(m, 4, &df, 2);
            assert_eq!(m.clock(), t(20), "no waiting, pure work");
        });
    }
}
