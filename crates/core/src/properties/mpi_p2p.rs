//! MPI point-to-point performance properties.
//!
//! The paper's two prototype functions, ported with their exact parameter
//! meaning, plus one extension from the ASL catalog:
//!
//! ```c
//! void late_sender(double basework, double extrawork, int r, MPI_Comm c);
//! void late_receiver(double basework, double extrawork, int r, MPI_Comm c);
//! ```

use super::frame_mpi;
use crate::buffer::BaseComm;
use crate::distribution::Distr;
use crate::pattern::{sendrecv, Dir, PatternMode};
use crate::work::par_do_mpi_work;
use ats_mpi::{Comm, Proc};
use ats_runtime::VDur;

/// *Late Sender*: a receiver blocks because the matching send is posted
/// too late.
///
/// Implementation per the paper: the even/odd `sendrecv` pattern with
/// [`Dir::Up`] (even ranks send), and a `cyclic2` work distribution that
/// gives the sending (even) ranks `basework + extrawork` while receivers
/// get only `basework` — so every receive waits `extrawork` seconds per
/// repetition.
pub fn late_sender(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    extrawork: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_sender", |p| {
        let buf = base.alloc();
        // Even ranks (the senders) are always late: low = base + extra.
        let dd = Distr::cyclic2(basework + extrawork, basework);
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            sendrecv(p, &buf, Dir::Up, PatternMode::default(), comm);
        }
    });
}

/// *Late Receiver*: a sender blocks in a synchronous-mode send because the
/// matching receive is posted too late.
///
/// The mirror image of [`late_sender`]: the receiving (odd) ranks carry
/// the extra work, and the pattern uses `MPI_Ssend` so the sender cannot
/// complete before the receive is posted.
pub fn late_receiver(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    extrawork: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_receiver", |p| {
        let buf = base.alloc();
        // Odd ranks (the receivers) are always late: high = base + extra.
        let dd = Distr::cyclic2(basework, basework + extrawork);
        let mode = PatternMode {
            use_ssend: true,
            ..Default::default()
        };
        for _ in 0..r {
            par_do_mpi_work(p, &dd, 1.0, comm);
            sendrecv(p, &buf, Dir::Up, mode, comm);
        }
    });
}

/// *Late Sender at `MPI_Wait`* (ASL-catalog extension): the receiver posts
/// an `MPI_Irecv` early, overlaps `postwork` of computation, then blocks in
/// `MPI_Wait` because the sender is still `extrawork − postwork` behind.
pub fn late_sender_at_wait(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    extrawork: f64,
    postwork: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "late_sender_at_wait", |p| {
        let buf = base.alloc();
        let me = comm.rank();
        let pairs = comm.size() / 2 * 2;
        for _ in 0..r {
            if me >= pairs {
                continue;
            }
            if me.is_multiple_of(2) {
                // Sender: late by basework + extrawork.
                p.do_work(VDur::from_secs(basework + extrawork));
                p.send(buf.bytes(), me + 1, 0, comm);
            } else {
                // Receiver: post early, overlap some work, wait.
                p.do_work(VDur::from_secs(basework));
                let mut req = p.irecv(me - 1, 0, comm);
                p.do_work(VDur::from_secs(postwork));
                p.wait(&mut req);
            }
        }
    });
}

/// *Messages in Wrong Order* (EXPERT's Late-Sender refinement): the
/// receiver blocks waiting for one message while another message it will
/// receive *later* is already sitting in its queue — the classic symptom
/// of posting receives in the wrong order.
///
/// Implementation: each even rank first sends message B (tag 2), then
/// works `delay` seconds, then sends message A (tag 1); its odd partner
/// receives tag 1 *first* (blocking for `delay` while B waits unread) and
/// tag 2 second.
pub fn messages_in_wrong_order(
    p: &mut Proc,
    base: &BaseComm,
    basework: f64,
    delay: f64,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "messages_in_wrong_order", |p| {
        let buf = base.alloc();
        let me = comm.rank();
        let pairs = comm.size() / 2 * 2;
        for _ in 0..r {
            if me >= pairs {
                continue;
            }
            p.do_work(VDur::from_secs(basework));
            if me.is_multiple_of(2) {
                p.send(buf.bytes(), me + 1, 2, comm); // B: early
                p.do_work(VDur::from_secs(delay));
                p.send(buf.bytes(), me + 1, 1, comm); // A: late
            } else {
                let _ = p.recv(me - 1, 1, comm); // wait for A while B queues
                let _ = p.recv(me - 1, 2, comm);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur, VTime};
    use ats_trace::{check_wellformed, EventKind, TraceStats};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn late_sender_programs_the_programmed_wait() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            late_sender(p, &base, 0.010, 0.025, 3, &c);
            // Receivers (odd): 3 * (10ms work + 25ms wait) = 105ms;
            // senders: 3 * 35ms work = 105ms. All clocks equal.
            assert_eq!(p.clock(), VTime::from_secs(0.105));
        });
        assert!(check_wellformed(&trace).is_empty());
        // Each repetition: one message per pair.
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.total_sends(), 6);
        assert_eq!(stats.total_recvs(), 6);
    }

    #[test]
    fn late_sender_wait_shows_in_recv_occupancy() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_sender(p, &base, 0.0, 0.040, 1, &c);
        });
        // On rank 1 the receive posted at 0 and completed at 40ms.
        let loc = trace.location(ats_trace::LocationId::rank(1)).unwrap();
        let recv = loc
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Recv { .. }))
            .expect("rank 1 receives");
        match recv.kind {
            EventKind::Recv { posted, .. } => {
                assert_eq!(posted, VTime::ZERO);
                assert_eq!(recv.time, VTime::from_secs(0.040));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn late_receiver_blocks_the_sender() {
        let base = BaseComm::default();
        ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_receiver(p, &base, 0.005, 0.030, 2, &c);
            // Both sides end aligned: each repetition costs
            // basework + extrawork (the sender waits out the receiver).
            assert_eq!(p.clock(), VTime::from_secs(2.0 * 0.035));
        });
    }

    #[test]
    fn late_receiver_records_ssend_regions() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_receiver(p, &base, 0.0, 0.020, 1, &c);
        });
        let ssend = trace.find_region("MPI_Ssend").expect("uses MPI_Ssend");
        let stats = TraceStats::compute(&trace);
        let prof = stats.region_total(ssend);
        assert_eq!(prof.visits, 1);
        assert_eq!(prof.inclusive, VDur::from_millis(20), "sender blocked 20ms");
    }

    #[test]
    fn late_sender_at_wait_splits_the_wait() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_sender_at_wait(p, &base, 0.0, 0.050, 0.020, 1, &c);
            // Receiver: irecv at 0, 20ms overlapped work, wait blocks
            // until the sender's 50ms send.
            assert_eq!(p.clock(), VTime::from_secs(0.050));
        });
        let wait = trace.find_region("MPI_Wait").unwrap();
        let stats = TraceStats::compute(&trace);
        let loc1 = ats_trace::LocationId::rank(1);
        assert_eq!(
            stats.profiles[&loc1][&wait].inclusive,
            VDur::from_millis(30),
            "wait absorbs the non-overlapped 30ms"
        );
    }

    #[test]
    fn property_frames_appear_in_the_trace() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_sender(p, &base, 0.001, 0.002, 1, &c);
            late_receiver(p, &base, 0.001, 0.002, 1, &c);
        });
        for name in ["late_sender", "late_receiver"] {
            let r = trace
                .find_region(name)
                .unwrap_or_else(|| panic!("{name} frame"));
            assert_eq!(trace.region_kind(r), Some(ats_trace::RegionKind::Property));
        }
    }

    #[test]
    fn odd_process_counts_are_tolerated() {
        let base = BaseComm::default();
        ats_mpi::run(cfg(5), |p| {
            let c = p.comm_world();
            late_sender(p, &base, 0.001, 0.004, 2, &c);
            late_receiver(p, &base, 0.001, 0.004, 2, &c);
        });
    }

    #[test]
    fn wrong_order_program_blocks_on_the_late_tag() {
        let base = BaseComm::default();
        ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            messages_in_wrong_order(p, &base, 0.002, 0.030, 1, &c);
            // Receiver: 2ms work, blocks 30ms on tag 1, tag 2 immediate.
            assert_eq!(p.clock(), VTime::from_secs(0.032));
        });
    }

    #[test]
    fn zero_repetitions_do_nothing() {
        let base = BaseComm::default();
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            late_sender(p, &base, 0.010, 0.020, 0, &c);
            assert_eq!(p.clock(), VTime::ZERO);
        });
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.total_sends(), 0);
    }
}
