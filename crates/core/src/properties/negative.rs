//! Negative test cases (paper §1, "Negative correctness").
//!
//! Well-tuned synthetic programs with *no* performance problem: a correct
//! analysis tool must stay silent on these. Each mirrors the code shape of
//! a positive property function with the imbalance parameter forced to
//! zero, so tools that trigger on shape rather than behaviour are caught.

use super::{frame_mpi, frame_omp};
use crate::buffer::BaseComm;
use crate::distribution::Distr;
use crate::pattern::{sendrecv, shift, Dir, PatternMode};
use crate::work::{par_do_mpi_work, par_do_omp_work};
use ats_mpi::{Comm, Datatype, Proc, ReduceOp};
use ats_omp::{parallel, Master, Schedule};
use ats_runtime::VDur;

/// Balanced work + barrier: the negative twin of
/// [`crate::properties::mpi_coll::imbalance_at_mpi_barrier`].
pub fn balanced_mpi_barrier(p: &mut Proc, work: f64, r: usize, comm: &Comm) {
    frame_mpi(p, "balanced_mpi_barrier", |p| {
        let df = Distr::same(work);
        for _ in 0..r {
            par_do_mpi_work(p, &df, 1.0, comm);
            p.barrier(comm);
        }
    });
}

/// Balanced even/odd exchange: the negative twin of
/// [`crate::properties::mpi_p2p::late_sender`] — both sides do equal work,
/// so no side waits (beyond transport costs).
pub fn balanced_mpi_p2p(p: &mut Proc, base: &BaseComm, work: f64, r: usize, comm: &Comm) {
    frame_mpi(p, "balanced_mpi_p2p", |p| {
        let buf = base.alloc();
        let df = Distr::same(work);
        for _ in 0..r {
            par_do_mpi_work(p, &df, 1.0, comm);
            sendrecv(p, &buf, Dir::Up, PatternMode::default(), comm);
            par_do_mpi_work(p, &df, 1.0, comm);
            sendrecv(p, &buf, Dir::Down, PatternMode::default(), comm);
        }
    });
}

/// A balanced ring computation: shift + equal work, the shape of a
/// well-tuned stencil halo exchange.
pub fn balanced_ring(p: &mut Proc, base: &BaseComm, work: f64, r: usize, comm: &Comm) {
    frame_mpi(p, "balanced_ring", |p| {
        let sbuf = base.alloc();
        let mut rbuf = base.alloc();
        let df = Distr::same(work);
        for _ in 0..r {
            par_do_mpi_work(p, &df, 1.0, comm);
            shift(p, &sbuf, &mut rbuf, Dir::Up, PatternMode::default(), comm);
        }
    });
}

/// Balanced rooted collectives: everyone (root included) does equal work
/// before bcast and reduce, so neither late-broadcast nor early-reduce
/// waits arise.
pub fn balanced_mpi_collectives(
    p: &mut Proc,
    base: &BaseComm,
    work: f64,
    root: usize,
    r: usize,
    comm: &Comm,
) {
    frame_mpi(p, "balanced_mpi_collectives", |p| {
        let df = Distr::same(work);
        let mine = vec![0u8; base.bytes()];
        for _ in 0..r {
            par_do_mpi_work(p, &df, 1.0, comm);
            let mut buf = mine.clone();
            p.bcast(&mut buf, root, comm);
            par_do_mpi_work(p, &df, 1.0, comm);
            let _ = p.reduce(&mine, ReduceOp::Sum, Datatype::Float64, root, comm);
        }
    });
}

/// Balanced parallel region + barrier: the negative twin of the OpenMP
/// imbalance properties.
pub fn balanced_omp_region<M: Master>(m: &mut M, nthreads: usize, work: f64, r: usize) {
    frame_omp(m, "balanced_omp_region", |m| {
        let df = Distr::same(work);
        parallel(m, nthreads, |th| {
            for _ in 0..r {
                par_do_omp_work(th, &df, 1.0);
                th.barrier();
            }
        });
    });
}

/// A balanced statically-scheduled loop.
pub fn balanced_omp_loop<M: Master>(
    m: &mut M,
    nthreads: usize,
    work_per_iter: f64,
    iters_per_thread: usize,
    r: usize,
) {
    frame_omp(m, "balanced_omp_loop", |m| {
        parallel(m, nthreads, |th| {
            let iters = th.num_threads() * iters_per_thread;
            for _ in 0..r {
                th.for_loop(iters, Schedule::Static(None), |th, _| {
                    th.do_work(VDur::from_secs(work_per_iter));
                });
            }
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_omp::{run_omp, OmpConfig};
    use ats_runtime::{MachineModel, VTime};
    use ats_trace::{check_wellformed, EventKind};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    /// With a zero-cost machine model, a negative test case must contain
    /// *zero* waiting anywhere: every collective's exit equals the latest
    /// entry which equals every entry, and every receive completes at its
    /// post time.
    fn assert_waitless(trace: &ats_trace::Trace) {
        for loc in &trace.locations {
            for ev in &loc.events {
                match ev.kind {
                    EventKind::Recv { posted, .. } => {
                        assert_eq!(ev.time, posted, "recv waited at {}", loc.location);
                    }
                    EventKind::CollEnd { entered, .. } => {
                        assert_eq!(ev.time, entered, "collective waited at {}", loc.location);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn balanced_barrier_is_waitless() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            balanced_mpi_barrier(p, 0.010, 3, &c);
            assert_eq!(p.clock(), VTime::from_secs(0.030));
        });
        assert_waitless(&trace);
    }

    #[test]
    fn balanced_p2p_is_waitless() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            balanced_mpi_p2p(p, &BaseComm::default(), 0.005, 2, &c);
        });
        assert_waitless(&trace);
    }

    #[test]
    fn balanced_ring_is_waitless() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            balanced_ring(p, &BaseComm::default(), 0.005, 3, &c);
        });
        assert_waitless(&trace);
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn balanced_collectives_are_waitless() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            balanced_mpi_collectives(p, &BaseComm::default(), 0.004, 2, 2, &c);
        });
        assert_waitless(&trace);
    }

    #[test]
    fn balanced_omp_region_is_waitless() {
        let trace = run_omp(
            OmpConfig {
                model: MachineModel::zero(),
                ..Default::default()
            },
            |m| {
                balanced_omp_region(m, 4, 0.005, 3);
                assert_eq!(m.clock(), VTime::from_secs(0.015));
            },
        );
        assert_waitless(&trace);
    }

    #[test]
    fn balanced_omp_loop_is_waitless() {
        let trace = run_omp(
            OmpConfig {
                model: MachineModel::zero(),
                ..Default::default()
            },
            |m| {
                balanced_omp_loop(m, 4, 0.001, 4, 2);
                assert_eq!(m.clock(), VTime::from_secs(0.008));
            },
        );
        assert_waitless(&trace);
    }
}
