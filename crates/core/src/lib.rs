//! # ats-core
//!
//! The APART Test Suite framework (the paper's Chapter 3), in Rust.
//!
//! ATS constructs *synthetic parallel test programs with known,
//! parameterizable performance properties*, used to check automatic
//! performance-analysis tools for positive correctness (the tool finds
//! what the program provably contains, with a severity that tracks the
//! programmed one) and negative correctness (the tool stays silent on
//! well-tuned programs).
//!
//! Layering, bottom-up — exactly the paper's Figure 3.1:
//!
//! 1. **work** ([`work`], plus `do_work` on the substrate handles):
//!    specification of sequential and parallel work;
//! 2. **distribution** ([`distribution`]): `same` / `cyclic2` / `block2` /
//!    `linear` / `peak` / `cyclic3` / `block3` shapes with a scale factor;
//! 3. **MPI support** ([`buffer`], [`pattern`]): typed buffers, irregular
//!    buffers, and the even/odd and ring communication patterns;
//! 4. **property functions** ([`properties`]): the paper's 13 prototype
//!    functions plus the ASL-catalog extensions, each wrapped in a trace
//!    region for call-path localization;
//! 5. **test programs** ([`composite`], and per-property programs via
//!    `ats-harness`): single-property and composite executables.
//!
//! ```
//! use ats_core::{properties::mpi_coll, Distr};
//! use ats_mpi::SimConfig;
//!
//! // The paper's Fig. 3.2 experiment: imbalance in front of a barrier.
//! let df = Distr::block2(0.01, 0.05);
//! let trace = ats_mpi::run(SimConfig::with_procs(8), move |p| {
//!     let world = p.comm_world();
//!     mpi_coll::imbalance_at_mpi_barrier(p, &df, 3, &world);
//! });
//! assert!(trace.find_region("imbalance_at_mpi_barrier").is_some());
//! ```

pub mod buffer;
pub mod catalog;
pub mod composite;
pub mod distribution;
pub mod error;
pub mod hybrid;
pub mod json;
pub mod pattern;
pub mod properties;
pub mod work;

pub use buffer::{alloc_mpi_buf, alloc_mpi_vbuf, BaseComm, MpiBuf, MpiVBuf};
pub use catalog::{Paradigm, ParamKind, ParamSpec, PropertySpec, CATALOG};
pub use composite::CompositeParams;
pub use distribution::Distr;
pub use error::{Error, ErrorKind};
pub use hybrid::{with_omp, HybridMaster};
pub use json::Json;
pub use pattern::{sendrecv, shift, Dir, PatternMode};
pub use work::{par_do_mpi_work, par_do_omp_work};
