//! Composite performance property testing (paper §3.3).
//!
//! Beyond single-property programs, the paper builds composite tests by
//! invoking several property functions in one program: sequentially (its
//! Figure 3.3), or in parallel on disjoint communicators (Figures 3.4 and
//! 3.5), or across paradigms (hybrid). These builders reproduce those
//! programs with the severities under caller control.

use crate::buffer::BaseComm;
use crate::distribution::Distr;
use crate::hybrid::with_omp;
use crate::properties::{hybrid, mpi_coll, mpi_p2p, omp};
use ats_mpi::{Comm, Proc};

/// Severity knobs for the composite programs.
#[derive(Debug, Clone)]
pub struct CompositeParams {
    /// Default message shape for all property functions.
    pub base: BaseComm,
    /// Work done by every participant per phase (seconds).
    pub basework: f64,
    /// Extra work for the late/straggling side (seconds) — the severity.
    pub extrawork: f64,
    /// Repetitions per property function.
    pub reps: usize,
}

impl Default for CompositeParams {
    fn default() -> Self {
        CompositeParams {
            base: BaseComm::default(),
            basework: 0.005,
            extrawork: 0.020,
            reps: 2,
        }
    }
}

/// The paper's Figure 3.3 program: "simply calls all currently defined MPI
/// property functions with different severities and repetition factors",
/// to "quickly determine how many different performance properties can be
/// detected by a performance tool".
///
/// The severities are staggered — each successive property function gets a
/// different multiple of `extrawork` — mirroring the varied block widths
/// visible in the paper's timeline.
pub fn all_mpi_properties(p: &mut Proc, params: &CompositeParams, comm: &Comm) {
    let CompositeParams {
        base,
        basework,
        extrawork,
        reps,
    } = params.clone();
    let w = basework;
    // Staggered severities: 1.0x, 1.5x, 2.0x, ... of extrawork.
    let sev = |i: usize| extrawork * (1.0 + 0.5 * i as f64);
    mpi_p2p::late_sender(p, &base, w, sev(0), reps, comm);
    mpi_p2p::late_receiver(p, &base, w, sev(1), reps, comm);
    let df = Distr::block2(w, w + sev(2));
    mpi_coll::imbalance_at_mpi_barrier(p, &df, reps, comm);
    let df = Distr::linear(w, w + sev(3));
    mpi_coll::imbalance_at_mpi_alltoall(p, &base, &df, reps, comm);
    mpi_coll::late_broadcast(p, &base, w, sev(4), 0, reps, comm);
    mpi_coll::late_scatter(p, &base, w, sev(5), 0, reps, comm);
    mpi_coll::late_scatterv(p, &base, w, sev(6), 0, reps, comm);
    mpi_coll::early_reduce(p, &base, w, sev(7), 0, reps, comm);
    mpi_coll::early_gather(p, &base, w, sev(8), 0, reps, comm);
    mpi_coll::early_gatherv(p, &base, w, sev(9), 0, reps, comm);
}

/// The paper's Figure 3.4/3.5 program: after initialization, the lower and
/// upper halves of the processes form separate communicators; the lower
/// half runs the point-to-point property set while the upper half runs the
/// collective set — "two different performance properties are active at
/// the same time in parallel".
///
/// As in the paper's EXPERT experiment, `late_broadcast` runs on the upper
/// communicator with communicator-local root 1, so a correct tool must
/// localize it at `MPI_Bcast` on the *global* ranks `size/2 + 1 ..`.
/// Returns the communicator this rank belonged to.
pub fn two_communicator_composite(p: &mut Proc, params: &CompositeParams, world: &Comm) -> Comm {
    let CompositeParams {
        base,
        basework,
        extrawork,
        reps,
    } = params.clone();
    let half = world.size() / 2;
    assert!(
        half >= 2,
        "need at least 4 ranks for the two-communicator test"
    );
    let lower = p.rank() < half;
    let color = if lower { 0 } else { 1 };
    let sub = p
        .comm_split(color, p.rank() as i64, world)
        .expect("non-negative colors");
    if lower {
        // Lower half: point-to-point properties.
        mpi_p2p::late_sender(p, &base, basework, extrawork, reps, &sub);
        mpi_p2p::late_receiver(p, &base, basework, extrawork, reps, &sub);
    } else {
        // Upper half: collective properties, late_broadcast at local root 1.
        mpi_coll::late_broadcast(p, &base, basework, extrawork, 1, reps, &sub);
        mpi_coll::early_reduce(p, &base, basework, extrawork, 0, reps, &sub);
        let df = Distr::linear(basework, basework + extrawork);
        mpi_coll::imbalance_at_mpi_barrier(p, &df, reps, &sub);
    }
    sub
}

/// A hybrid composite: MPI property functions interleaved with OpenMP
/// property functions inside every rank, per the paper's closing remarks
/// on hybrid tool testing.
pub fn hybrid_composite(p: &mut Proc, nthreads: usize, params: &CompositeParams, comm: &Comm) {
    let CompositeParams {
        base,
        basework,
        extrawork,
        reps,
    } = params.clone();
    mpi_p2p::late_sender(p, &base, basework, extrawork, reps, comm);
    let df = Distr::linear(basework, basework + extrawork);
    with_omp(p, |m| {
        omp::imbalance_at_omp_barrier(m, nthreads, &df, reps);
        omp::imbalance_in_omp_pregion(m, nthreads, &df, reps);
    });
    let rank_df = Distr::same(1.0);
    hybrid::omp_imbalance_at_mpi_barrier(p, nthreads, &rank_df, &df, reps, comm);
    mpi_coll::late_broadcast(p, &base, basework, extrawork, 0, reps, comm);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};
    use ats_trace::{check_wellformed, TraceStats};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn figure33_program_contains_all_ten_property_frames() {
        let params = CompositeParams {
            basework: 0.001,
            extrawork: 0.002,
            reps: 1,
            ..Default::default()
        };
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            all_mpi_properties(p, &params, &c);
        });
        for name in [
            "late_sender",
            "late_receiver",
            "imbalance_at_mpi_barrier",
            "imbalance_at_mpi_alltoall",
            "late_broadcast",
            "late_scatter",
            "late_scatterv",
            "early_reduce",
            "early_gather",
            "early_gatherv",
        ] {
            assert!(trace.find_region(name).is_some(), "missing frame {name}");
        }
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn figure34_program_splits_work_across_communicators() {
        let params = CompositeParams {
            basework: 0.001,
            extrawork: 0.004,
            reps: 1,
            ..Default::default()
        };
        let trace = ats_mpi::run(cfg(8), move |p| {
            let c = p.comm_world();
            let sub = two_communicator_composite(p, &params, &c);
            assert_eq!(sub.size(), 4);
        });
        assert!(check_wellformed(&trace).is_empty());
        // The lower half never executes bcasts; the upper half never
        // executes the p2p pattern.
        let stats = TraceStats::compute(&trace);
        let bcast = trace.find_region("MPI_Bcast").unwrap();
        let p2p: Vec<_> = ["MPI_Send", "MPI_Ssend", "MPI_Recv"]
            .iter()
            .filter_map(|n| trace.find_region(n))
            .collect();
        for rank in 0..8u32 {
            let loc = ats_trace::LocationId::rank(rank);
            let has_bcast = stats.profiles[&loc].contains_key(&bcast);
            let has_p2p = p2p.iter().any(|r| stats.profiles[&loc].contains_key(r));
            if rank < 4 {
                assert!(!has_bcast, "rank {rank} must not broadcast");
                assert!(has_p2p, "rank {rank} must participate in p2p");
            } else {
                assert!(has_bcast, "rank {rank} must broadcast");
                assert!(!has_p2p, "rank {rank} must not do p2p");
            }
        }
    }

    #[test]
    fn figure34_needs_at_least_four_ranks() {
        let result = std::panic::catch_unwind(|| {
            ats_mpi::run(cfg(2), |p| {
                let c = p.comm_world();
                two_communicator_composite(p, &CompositeParams::default(), &c);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn hybrid_composite_spans_paradigms() {
        let params = CompositeParams {
            basework: 0.001,
            extrawork: 0.002,
            reps: 1,
            ..Default::default()
        };
        let trace = ats_mpi::run(cfg(2), move |p| {
            let c = p.comm_world();
            hybrid_composite(p, 2, &params, &c);
        });
        for name in [
            "late_sender",
            "imbalance_at_omp_barrier",
            "imbalance_in_omp_pregion",
            "omp_imbalance_at_mpi_barrier",
            "late_broadcast",
            "omp_parallel",
        ] {
            assert!(trace.find_region(name).is_some(), "missing {name}");
        }
        assert!(check_wellformed(&trace).is_empty());
    }
}
