//! Hybrid MPI × OpenMP glue.
//!
//! The paper's composite tests combine "performance property functions
//! from different parallel programming paradigms in the same program".
//! [`with_omp`] adapts a simulated MPI rank into an [`ats_omp::Master`], so
//! OpenMP parallel regions (and the OpenMP property functions) can run
//! *inside* an MPI rank: the team forks at the rank's virtual clock,
//! thread events land in per-`(rank, thread)` trace locations, and the
//! rank's clock resumes at the join.

use ats_mpi::Proc;
use ats_omp::{CriticalSpace, Master};
use ats_runtime::{MachineModel, VTime, WorkMode};
use ats_trace::{LocalTrace, LocationId, TraceCollector};
use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::time::Duration;

/// An MPI rank acting as the master of OpenMP parallel regions.
pub struct HybridMaster<'a> {
    proc: &'a mut Proc,
    criticals: Arc<CriticalSpace>,
}

impl Master for HybridMaster<'_> {
    fn rank(&self) -> u32 {
        self.proc.rank() as u32
    }
    fn location(&self) -> LocationId {
        LocationId::rank(self.proc.rank() as u32)
    }
    fn clock(&self) -> VTime {
        self.proc.clock()
    }
    fn set_clock(&mut self, t: VTime) {
        self.proc.set_clock(t);
    }
    fn collector(&self) -> &TraceCollector {
        self.proc.collector()
    }
    fn local_mut(&mut self) -> &mut LocalTrace {
        self.proc.local_mut()
    }
    fn model(&self) -> &MachineModel {
        self.proc.model()
    }
    fn work_mode(&self) -> WorkMode {
        self.proc.work_mode()
    }
    fn seed(&self) -> u64 {
        self.proc.seed()
    }
    fn calibration(&self) -> Option<f64> {
        self.proc.calibration()
    }
    fn sync_ids(&self) -> Arc<AtomicU32> {
        self.proc.sync_ids()
    }
    fn thread_ids(&self) -> Arc<AtomicU32> {
        self.proc.thread_ids()
    }
    fn criticals(&self) -> Arc<CriticalSpace> {
        self.criticals.clone()
    }
    fn timeout(&self) -> Duration {
        self.proc.timeout()
    }
}

impl<'a> HybridMaster<'a> {
    /// Direct access to the underlying rank (for MPI calls between
    /// parallel regions).
    pub fn proc(&mut self) -> &mut Proc {
        self.proc
    }
}

/// Run `f` with the rank adapted into an OpenMP master. The rank's clock
/// advances through any parallel regions `f` opens.
///
/// Named critical sections live for the duration of this call — two
/// regions inside one `with_omp` contend on the same names, separate
/// `with_omp` calls do not.
pub fn with_omp<R>(p: &mut Proc, f: impl FnOnce(&mut HybridMaster<'_>) -> R) -> R {
    let mut master = HybridMaster {
        proc: p,
        criticals: Arc::new(CriticalSpace::new()),
    };
    f(&mut master)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_mpi::SimConfig;
    use ats_omp::parallel;
    use ats_runtime::{VDur, VTime};
    use ats_trace::check_wellformed;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: ats_runtime::MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn omp_region_inside_mpi_rank_advances_rank_clock() {
        let trace = ats_mpi::run(cfg(2), |p| {
            p.do_work(VDur::from_millis(5));
            with_omp(p, |m| {
                parallel(m, 4, |th| {
                    th.do_work(VDur::from_millis((th.thread_num() as u64 + 1) * 10));
                });
            });
            assert_eq!(p.clock(), VTime::from_secs(0.045), "5 + slowest thread 40");
        });
        assert!(check_wellformed(&trace).is_empty());
        // 2 ranks x (1 master + 3 spawned threads).
        assert_eq!(trace.num_locations(), 8);
    }

    #[test]
    fn thread_locations_carry_their_rank() {
        let trace = ats_mpi::run(cfg(2), |p| {
            with_omp(p, |m| {
                parallel(m, 2, |th| th.do_work(VDur::from_millis(1)));
            });
        });
        for loc in &trace.locations {
            assert!(loc.location.rank < 2);
        }
        let spawned: Vec<_> = trace
            .locations
            .iter()
            .filter(|l| l.location.thread != 0)
            .collect();
        assert_eq!(spawned.len(), 2, "one spawned thread per rank");
    }

    #[test]
    fn mpi_after_omp_sees_advanced_clock() {
        ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            with_omp(p, |m| {
                parallel(m, 2, |th| th.do_work(VDur::from_millis(3)));
            });
            assert_eq!(p.clock(), VTime::from_secs(0.003));
            p.barrier(&c);
            assert_eq!(p.clock(), VTime::from_secs(0.003), "both ranks aligned");
        });
    }

    #[test]
    fn hybrid_barrier_after_imbalanced_region() {
        // Ranks do differently-sized OMP regions, then meet at an MPI
        // barrier: the barrier wait equals the inter-rank difference.
        ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            let rank_ms = (p.rank() as u64 + 1) * 10;
            with_omp(p, |m| {
                parallel(m, 2, |th| th.do_work(VDur::from_millis(rank_ms)));
            });
            p.barrier(&c);
            assert_eq!(p.clock(), VTime::from_secs(0.020));
        });
    }
}
