//! # ats-testutil
//!
//! Shared test support for the ATS-RS workspace. The one export that
//! matters is [`TempDir`]: a scratch directory that is unique per test
//! (process id *and* an in-process counter, so parallel tests and
//! parallel test binaries never collide) and removed on `Drop` — which
//! runs during unwinding too, so a failing assertion no longer leaks
//! files into the system temp directory the way ad-hoc
//! `remove_file`-at-the-end cleanup did.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-process sequence number distinguishing temp dirs within one test
/// binary.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// A scratch directory removed (recursively) when dropped.
///
/// ```
/// let dir = ats_testutil::TempDir::new("doc-example");
/// let file = dir.file("data.txt");
/// std::fs::write(&file, b"hello").unwrap();
/// assert!(file.exists());
/// let kept = dir.path().to_path_buf();
/// drop(dir);
/// assert!(!kept.exists());
/// ```
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Create a fresh directory under the system temp dir. `prefix`
    /// should name the test site (e.g. `"ats-ingest-formats"`); the full
    /// name also carries the process id and a per-process counter.
    pub fn new(prefix: &str) -> Self {
        let pid = std::process::id();
        loop {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("{prefix}-{pid}-{seq}"));
            // create_dir (not create_dir_all): refusing to adopt an
            // existing directory means a stale leftover from a recycled
            // pid can never leak foreign files into this test.
            match std::fs::create_dir(&path) {
                Ok(()) => return TempDir { path },
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => panic!("creating temp dir {}: {e}", path.display()),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path for `name` inside the directory (not created).
    pub fn file(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }

    /// Consume the guard *without* deleting the directory — for debugging
    /// a failing test's artifacts. Returns the path.
    pub fn keep(self) -> PathBuf {
        let this = std::mem::ManuallyDrop::new(self);
        this.path.clone()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_per_call_and_cleaned_on_drop() {
        let a = TempDir::new("ats-testutil-self");
        let b = TempDir::new("ats-testutil-self");
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir());
        std::fs::write(a.file("x"), b"1").unwrap();
        std::fs::create_dir(a.file("sub")).unwrap();
        std::fs::write(a.file("sub").join("y"), b"2").unwrap();
        let pa = a.path().to_path_buf();
        drop(a);
        assert!(!pa.exists(), "dropped dir removed recursively");
        assert!(b.path().is_dir(), "sibling untouched");
    }

    #[test]
    fn keep_suppresses_cleanup() {
        let d = TempDir::new("ats-testutil-keep");
        let p = d.keep();
        assert!(p.is_dir());
        std::fs::remove_dir_all(&p).unwrap();
    }
}
