//! `ats-fuzz`: the seeded composite-scenario fuzzer for ATS-RS.
//!
//! The hand-written suite validates an analyzer against the catalog's
//! known property functions one at a time (plus a few fixed composites).
//! This crate generates *arbitrary* composites — random phase orders,
//! parameter values, communicator topologies, and well-tuned padding —
//! while keeping the suite's defining feature: every scenario knows its
//! own ground truth. Because the catalog records what each property
//! function must be reported as and where, and the zero machine model
//! makes programmed waits analytically exact, the expected analyzer
//! output of a *composition* of property functions is computable from the
//! scenario spec alone. That compositional oracle is what turns random
//! generation into a usable test: no human triage of fuzzer output.
//!
//! The pieces:
//!
//! * [`scenario`] — the serializable scenario spec (JSONL and a compact
//!   one-line text form, both byte-stable round trips);
//! * [`generator`] — seeded scenario generation (same seed ⇒ the
//!   byte-identical scenario, at any worker count);
//! * [`model`] — closed-form nominal-wait models per catalog property;
//! * [`oracle`] — execution on the simulator plus report scoring
//!   (missed / spurious / wait-out-of-band violations);
//! * [`shrink`] — greedy minimization of violating scenarios;
//! * [`corpus`] — persistence and replay of minimized witnesses;
//! * [`campaign`] — pool-parallel fuzzing runs with aggregate stats.

pub mod campaign;
pub mod corpus;
pub mod generator;
pub mod model;
pub mod oracle;
pub mod scenario;
pub mod shrink;

pub use campaign::{run_campaign, scenario_seed, CampaignResult, FuzzConfig, FuzzStats};
pub use generator::{generate, GenConfig};
pub use oracle::{check, predict, OracleConfig, OracleRun, Violation, ViolationKind};
pub use scenario::{Phase, Scenario, Slot, Split};
pub use shrink::{shrink, ShrinkOutcome};
