//! Greedy scenario shrinker.
//!
//! When the oracle flags a scenario, the raw witness is usually a
//! multi-slot composite with several innocent phases along for the ride.
//! The shrinker minimizes it while preserving the *failure identity*: a
//! candidate reproduces iff it still yields a violation with one of the
//! original (kind, property) keys — phase indices and regions shift
//! while shrinking, so they are not part of the identity.
//!
//! The strategy is classic greedy delta-debugging to a fixpoint, under a
//! run budget: drop whole slots, drop single phases, collapse split slots
//! to the whole world, force repetition counts to one, and reset
//! parameters to their catalog defaults. Each attempted simplification
//! costs one oracle execution; the budget caps the total.

use crate::oracle::{self, OracleConfig, Violation, ViolationKind};
use crate::scenario::{Scenario, Split};
use ats_harness::RunOpts;
use std::collections::BTreeSet;

/// Result of shrinking one violating scenario.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized scenario (still reproduces).
    pub scenario: Scenario,
    /// The minimized scenario's violations.
    pub violations: Vec<Violation>,
    /// Oracle executions spent.
    pub runs: usize,
    /// Phase count before shrinking.
    pub phases_before: usize,
    /// Phase count after shrinking.
    pub phases_after: usize,
}

/// Failure identity of a violation set.
fn keys(violations: &[Violation]) -> BTreeSet<(ViolationKind, String)> {
    violations.iter().map(Violation::key).collect()
}

struct Shrinker<'a> {
    cfg: &'a OracleConfig,
    opts: &'a RunOpts,
    target: BTreeSet<(ViolationKind, String)>,
    runs: usize,
    budget: usize,
}

impl Shrinker<'_> {
    /// Does `candidate` still fail with one of the original keys? Invalid
    /// or non-reproducing candidates return `None`; reproducing ones
    /// return their violations.
    fn reproduces(&mut self, candidate: &Scenario) -> Option<Vec<Violation>> {
        if self.runs >= self.budget || candidate.validate().is_err() {
            return None;
        }
        self.runs += 1;
        let violations = oracle::violations_of(candidate, self.cfg, self.opts).ok()?;
        if keys(&violations)
            .intersection(&self.target)
            .next()
            .is_some()
        {
            Some(violations)
        } else {
            None
        }
    }
}

/// Candidate simplification passes, in order of expected payoff.
fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    // Drop whole slots, last first (later slots are more likely addenda).
    for i in (0..sc.slots.len()).rev() {
        if sc.slots.len() > 1 {
            let mut c = sc.clone();
            c.slots.remove(i);
            out.push(c);
        }
    }
    // Drop single phases (removing emptied slots; never to zero phases).
    for (si, slot) in sc.slots.iter().enumerate() {
        for pi in 0..slot.phases.len() {
            if sc.num_phases() <= 1 {
                continue;
            }
            let mut c = sc.clone();
            c.slots[si].phases.remove(pi);
            if c.slots[si].phases.is_empty() {
                c.slots.remove(si);
            }
            out.push(c);
        }
    }
    // Collapse single-phase split slots onto the whole world.
    for (si, slot) in sc.slots.iter().enumerate() {
        if slot.split != Split::Whole && slot.phases.len() == 1 {
            let mut c = sc.clone();
            c.slots[si].split = Split::Whole;
            c.slots[si].phases[0].group = 0;
            out.push(c);
        }
    }
    // Force repetition counts to one.
    for (si, slot) in sc.slots.iter().enumerate() {
        for (pi, ph) in slot.phases.iter().enumerate() {
            if ph.params.get("r").is_some_and(|r| r != "1") {
                let mut c = sc.clone();
                c.slots[si].phases[pi]
                    .params
                    .insert("r".to_owned(), "1".to_owned());
                out.push(c);
            }
        }
    }
    // Reset individual parameters to their catalog defaults.
    for (si, slot) in sc.slots.iter().enumerate() {
        for (pi, ph) in slot.phases.iter().enumerate() {
            let Some(spec) = ats_core::catalog::find(&ph.property) else {
                continue;
            };
            for p in spec.params {
                if ph.params.get(p.name).is_some_and(|v| v != p.default) {
                    let mut c = sc.clone();
                    c.slots[si].phases[pi]
                        .params
                        .insert(p.name.to_owned(), p.default.to_owned());
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Shrink `sc` (which must reproduce `violations` under `cfg`/`opts`) to a
/// locally-minimal scenario with the same failure identity. `budget` caps
/// the number of oracle executions (150 is plenty in practice).
pub fn shrink(
    sc: &Scenario,
    violations: &[Violation],
    cfg: &OracleConfig,
    opts: &RunOpts,
    budget: usize,
) -> ShrinkOutcome {
    let mut sh = Shrinker {
        cfg,
        opts,
        target: keys(violations),
        runs: 0,
        budget,
    };
    let phases_before = sc.num_phases();
    let mut current = sc.clone();
    let mut current_violations = violations.to_vec();
    // Greedy fixpoint: take the first candidate that still reproduces,
    // restart the pass from it; stop when no candidate helps.
    'outer: loop {
        for cand in candidates(&current) {
            if let Some(v) = sh.reproduces(&cand) {
                current = cand;
                current_violations = v;
                continue 'outer;
            }
            if sh.runs >= sh.budget {
                break 'outer;
            }
        }
        break;
    }
    ShrinkOutcome {
        phases_after: current.num_phases(),
        scenario: current,
        violations: current_violations,
        runs: sh.runs,
        phases_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use ats_analyzer::AnalyzerConfig;

    /// A deliberately mis-calibrated analyzer misses everything: the
    /// canonical failure the shrinker minimizes in tests and CI.
    fn broken_oracle() -> OracleConfig {
        OracleConfig {
            analyzer: AnalyzerConfig::default().threshold(0.9),
            ..OracleConfig::default()
        }
    }

    fn first_violating_seed(cfg: &OracleConfig, opts: &RunOpts) -> (Scenario, Vec<Violation>) {
        let gen_cfg = GenConfig::default();
        for seed in 0..50u64 {
            let sc = generate(seed, &gen_cfg);
            let v = oracle::violations_of(&sc, cfg, opts).unwrap();
            if !v.is_empty() {
                return (sc, v);
            }
        }
        panic!("no violating scenario among 50 seeds with a broken analyzer");
    }

    #[test]
    fn shrinks_missed_violations_to_a_tiny_scenario() {
        let cfg = broken_oracle();
        let opts = RunOpts::default();
        let (sc, violations) = first_violating_seed(&cfg, &opts);
        let out = shrink(&sc, &violations, &cfg, &opts, 150);
        assert!(out.phases_after <= 2, "{}", out.scenario);
        assert!(out.phases_after <= out.phases_before);
        assert!(!out.violations.is_empty());
        // The minimized scenario still reproduces one of the original keys.
        let orig = keys(&violations);
        assert!(
            keys(&out.violations).intersection(&orig).next().is_some(),
            "failure identity lost"
        );
        // And it is replayable: re-checking yields the same verdicts.
        let again = oracle::violations_of(&out.scenario, &cfg, &opts).unwrap();
        assert_eq!(keys(&again), keys(&out.violations));
    }

    #[test]
    fn budget_is_respected() {
        let cfg = broken_oracle();
        let opts = RunOpts::default();
        let (sc, violations) = first_violating_seed(&cfg, &opts);
        let out = shrink(&sc, &violations, &cfg, &opts, 3);
        assert!(out.runs <= 3);
    }

    #[test]
    fn clean_oracle_has_nothing_to_shrink() {
        // Sanity: with the honest default analyzer the generator's
        // scenarios pass, so shrinking never even starts in campaigns.
        let cfg = OracleConfig::default();
        let opts = RunOpts::default();
        let sc = generate(7, &GenConfig::default());
        let v = oracle::violations_of(&sc, &cfg, &opts).unwrap();
        assert!(v.is_empty(), "seed 7 violates the honest oracle: {v:#?}");
    }
}
