//! Closed-form nominal-wait models for every positive catalog property.
//!
//! Under the zero machine model in virtual-work mode every property
//! function produces an *exact*, analytically known amount of waiting
//! time (the per-property unit tests in `ats-core` pin these formulas).
//! The oracle composes them with a scenario's topology: the model takes
//! the communicator size the phase actually runs on and returns the total
//! wait the analyzer should attribute to that phase, plus a tolerance
//! band absorbing the places where the analyzer's attribution legitimately
//! differs from the programmed wait (e.g. wrong-order waits partially
//! classified as late-sender, contention order effects).

use ats_core::Distr;
use ats_harness::ParamValues;

/// Multiplicative tolerance band around the nominal wait: a measured wait
/// `w` is in band iff `lo * nominal <= w <= hi * nominal`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower multiplier.
    pub lo: f64,
    /// Upper multiplier.
    pub hi: f64,
}

/// Tolerance band for `property` (catalog function name).
pub fn band(name: &str) -> Band {
    match name {
        // Contention serialization order depends on host scheduling of
        // virtually-tied arrivals; aggregate wait is stable but not exact.
        "omp_critical_contention" | "omp_lock_contention" => Band { lo: 0.05, hi: 20.0 },
        // The analyzer may split the programmed delay between the
        // wrong-order and plain late-sender classifications, or measure
        // the wait from the MPI_Wait entry rather than the post time.
        "messages_in_wrong_order" | "late_sender_at_wait" => Band { lo: 0.1, hi: 10.0 },
        // Hybrid: thread-level imbalance adds secondary waits around the
        // modeled rank-level barrier wait.
        "omp_imbalance_at_mpi_barrier" | "mpi_in_omp_serial" => Band { lo: 0.1, hi: 10.0 },
        _ => Band { lo: 0.2, hi: 5.0 },
    }
}

/// Sum of `max - v_i` over the distribution's values — the total wait a
/// barrier-style synchronization collects from one round of shaped work.
fn imbalance_sum(df: &Distr, n: usize) -> f64 {
    let vals = df.values(n, 1.0);
    let max = vals.iter().cloned().fold(0.0, f64::max);
    vals.iter().map(|v| max - v).sum()
}

/// Sum of `max_{j<=i} v_j - v_i` — the prefix waits an `MPI_Scan`
/// collects (rank `i` waits only for ranks `j <= i`).
fn prefix_imbalance_sum(df: &Distr, n: usize) -> f64 {
    let vals = df.values(n, 1.0);
    let mut run_max = f64::MIN;
    let mut total = 0.0;
    for v in vals {
        run_max = run_max.max(v);
        total += run_max - v;
    }
    total
}

/// `sum_{i=0}^{r-1} (1 + growth * i)` — the progressive-scale series.
fn progressive_series(growth: f64, r: usize) -> f64 {
    (0..r).map(|i| 1.0 + growth * i as f64).sum()
}

/// Total wait (seconds) property `name` programs when run with `v` on a
/// communicator of `group` ranks. `None` for properties without a model
/// (the negative padding cases — they program *zero* wait by design).
///
/// OpenMP-paradigm properties run one thread team per member rank in the
/// hybrid harness mode, so their per-team wait is multiplied by `group`.
pub fn nominal_wait(name: &str, v: &ParamValues, group: usize) -> Option<f64> {
    let n = group as f64;
    let r = || v.count("r") as f64;
    Some(match name {
        // ---- MPI point-to-point -----------------------------------------
        "late_sender" | "late_receiver" => (group / 2) as f64 * v.seconds("extrawork") * r(),
        "late_sender_at_wait" => {
            (group / 2) as f64 * r() * (v.seconds("extrawork") - v.seconds("postwork")).max(0.0)
        }
        "messages_in_wrong_order" => (group / 2) as f64 * v.seconds("delay") * r(),
        // ---- MPI collective ---------------------------------------------
        "imbalance_at_mpi_barrier" | "imbalance_at_mpi_alltoall" | "imbalance_at_mpi_allreduce" => {
            r() * imbalance_sum(&v.distr("df"), group)
        }
        "imbalance_at_mpi_scan" => r() * prefix_imbalance_sum(&v.distr("df"), group),
        "progressive_imbalance_at_mpi_barrier" => {
            progressive_series(v.seconds("growth"), v.count("r"))
                * imbalance_sum(&v.distr("df"), group)
        }
        "growing_imbalance_at_mpi_barrier" => {
            // The light half (ceil(n/2) ranks) waits extrastep*(i+1) in
            // iteration i: sum over i of (i+1) = r(r+1)/2.
            let reps = v.count("r") as f64;
            group.div_ceil(2) as f64 * v.seconds("extrastep") * reps * (reps + 1.0) / 2.0
        }
        "late_broadcast" | "late_scatter" | "late_scatterv" => {
            (n - 1.0) * v.seconds("extrawork") * r()
        }
        "early_reduce" | "early_gather" | "early_gatherv" => v.seconds("baseextrawork") * r(),
        // ---- Sequential --------------------------------------------------
        "serial_initialization" => (n - 1.0) * v.seconds("extrawork"),
        "dominating_sequential_phases" => (n - 1.0) * v.seconds("extrawork") * r(),
        // ---- OpenMP (one team per member rank) ---------------------------
        "imbalance_in_omp_pregion"
        | "imbalance_at_omp_barrier"
        | "imbalance_in_omp_loop"
        | "imbalance_at_omp_sections" => {
            n * r() * imbalance_sum(&v.distr("df"), v.count("nthreads"))
        }
        "progressive_imbalance_at_omp_barrier" => {
            n * progressive_series(v.seconds("growth"), v.count("r"))
                * imbalance_sum(&v.distr("df"), v.count("nthreads"))
        }
        "unparallelized_in_omp_single" => {
            n * r() * (v.count("nthreads") as f64 - 1.0) * v.seconds("singlework")
        }
        "unparallelized_in_omp_master" => {
            n * r()
                * (v.count("nthreads") as f64 - 1.0)
                * (v.seconds("masterwork") - v.seconds("otherwork")).max(0.0)
        }
        "omp_critical_contention" | "omp_lock_contention" => {
            // With outsidework=0 round 1 costs b*t(t-1)/2 and each later
            // round b*t(t-1); the generator pins outsidework to 0, the
            // band absorbs scheduling-order variation.
            let t = v.count("nthreads") as f64;
            n * v.seconds("bodywork") * t * (t - 1.0) * (r() - 0.5)
        }
        // ---- Hybrid ------------------------------------------------------
        "omp_imbalance_at_mpi_barrier" => {
            // Rank i's team finishes at maxv * scale_i (scales hardwired
            // to linear(0.5, 1.5) in the registry dispatch).
            let team = v.distr("df").values(v.count("nthreads"), 1.0);
            let maxv = team.iter().cloned().fold(0.0, f64::max);
            let scales = Distr::linear(0.5, 1.5).values(group, 1.0);
            let max_scale = scales.iter().cloned().fold(0.0, f64::max);
            let spread: f64 = scales.iter().map(|s| max_scale - s).sum();
            r() * maxv * spread
        }
        "mpi_in_omp_serial" => (group / 2) as f64 * v.seconds("extrawork") * r(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::catalog::{self, Paradigm};

    fn defaults(name: &str) -> ParamValues {
        ParamValues::defaults(catalog::find(name).expect("in catalog"))
    }

    #[test]
    fn every_positive_property_has_a_model() {
        for spec in ats_core::CATALOG {
            let v = ParamValues::defaults(spec);
            let model = nominal_wait(spec.name, &v, 8);
            if spec.paradigm == Paradigm::Negative {
                assert!(model.is_none(), "{} is padding", spec.name);
            } else {
                let w = model.unwrap_or_else(|| panic!("{} has no model", spec.name));
                assert!(w > 0.0, "{}: nominal wait {w} not positive", spec.name);
                assert!(w.is_finite(), "{}: nominal wait {w}", spec.name);
            }
        }
    }

    #[test]
    fn late_sender_model_matches_the_formula() {
        // 8 ranks -> 4 pairs, extrawork 0.04, r=3: 4 * 0.04 * 3 = 0.48.
        let w = nominal_wait("late_sender", &defaults("late_sender"), 8).unwrap();
        assert!((w - 0.48).abs() < 1e-12, "{w}");
        // Odd group: 7 ranks -> 3 pairs.
        let w = nominal_wait("late_sender", &defaults("late_sender"), 7).unwrap();
        assert!((w - 0.36).abs() < 1e-12, "{w}");
    }

    #[test]
    fn early_reduce_is_group_size_independent() {
        let v = defaults("early_reduce");
        let a = nominal_wait("early_reduce", &v, 4).unwrap();
        let b = nominal_wait("early_reduce", &v, 16).unwrap();
        assert_eq!(a, b, "only the root waits");
        assert!((a - 0.12).abs() < 1e-12, "0.04 * 3 = {a}");
    }

    #[test]
    fn scan_uses_prefix_waits() {
        // Default scan df is descending block2 (low=0.05 first half,
        // high=0.01 second half): the full-imbalance sum would charge the
        // early heavy ranks too; the prefix sum only charges later ranks.
        let v = defaults("imbalance_at_mpi_scan");
        let prefix = nominal_wait("imbalance_at_mpi_scan", &v, 8).unwrap();
        let full = 3.0 * imbalance_sum(&v.distr("df"), 8);
        assert!(prefix < full, "prefix {prefix} vs full {full}");
        assert!(prefix > 0.0);
    }

    #[test]
    fn omp_models_scale_with_member_count() {
        let v = defaults("imbalance_in_omp_pregion");
        let one = nominal_wait("imbalance_in_omp_pregion", &v, 1).unwrap();
        let four = nominal_wait("imbalance_in_omp_pregion", &v, 4).unwrap();
        assert!((four - 4.0 * one).abs() < 1e-12, "one team per rank");
    }

    #[test]
    fn contention_band_is_wider_than_default() {
        let c = band("omp_critical_contention");
        let d = band("late_sender");
        assert!(c.lo < d.lo && c.hi > d.hi);
    }

    #[test]
    fn master_model_clamps_at_zero() {
        let spec = catalog::find("unparallelized_in_omp_master").unwrap();
        let mut v = ParamValues::defaults(spec);
        v.set(
            "otherwork",
            ats_harness::ParamValue::Seconds(1.0), // more than masterwork
        );
        assert_eq!(
            nominal_wait("unparallelized_in_omp_master", &v, 4),
            Some(0.0)
        );
    }
}
