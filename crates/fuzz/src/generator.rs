//! The seeded scenario generator.
//!
//! Scenarios are drawn from a [`SplitMix64`] stream derived from the
//! campaign seed, so the same seed always produces the byte-identical
//! scenario regardless of worker count or generation order — the property
//! the CI determinism gate checks. Parameter values are sampled on a
//! coarse decimal grid inside each parameter's declared catalog range
//! ([`ats_core::catalog::ParamSpec::range_f64`]), which keeps the
//! serialized strings short and exactly round-trippable.

use crate::scenario::{Phase, Scenario, Slot, Split};
use ats_core::catalog::{self, Paradigm, ParamKind};
use ats_runtime::SplitMix64;
use std::collections::BTreeMap;

/// Knobs of the scenario generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// World size of generated scenarios.
    pub nprocs: usize,
    /// Minimum number of slots.
    pub min_slots: usize,
    /// Maximum number of slots.
    pub max_slots: usize,
    /// Maximum repetition count drawn for `r` parameters.
    pub max_reps: usize,
    /// Chance (percent) that a drawn phase is well-tuned padding.
    pub padding_percent: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            nprocs: 8,
            min_slots: 2,
            max_slots: 5,
            max_reps: 3,
            padding_percent: 30,
        }
    }
}

/// Positive properties the generator places. All 23 positive catalog
/// entries are eligible.
fn positive_names() -> Vec<&'static str> {
    catalog::CATALOG
        .iter()
        .filter(|s| s.paradigm != Paradigm::Negative)
        .map(|s| s.name)
        .collect()
}

/// Padding properties (the catalog's negative cases).
fn padding_names() -> Vec<&'static str> {
    catalog::CATALOG
        .iter()
        .filter(|s| s.paradigm == Paradigm::Negative)
        .map(|s| s.name)
        .collect()
}

/// Draw a seconds value on a `1e-4` grid inside `[lo, hi]` — short
/// decimal strings that survive the string → f64 → string round trip.
fn draw_seconds(rng: &mut SplitMix64, lo: f64, hi: f64) -> String {
    let lo_t = (lo * 1e4).ceil() as u64;
    let hi_t = (hi * 1e4).floor() as u64;
    let t = lo_t + rng.next_below(hi_t.saturating_sub(lo_t) + 1);
    format!("{}", t as f64 / 1e4)
}

/// Clamp a sampling interval to the parameter's declared catalog range.
fn clamped(spec_range: (f64, f64), lo: f64, hi: f64) -> (f64, f64) {
    let (min, max) = spec_range;
    (lo.max(min), hi.min(max).max(lo.max(min)))
}

/// Draw a distribution string. `descending` forces shapes whose values
/// never increase with the rank (what `imbalance_at_mpi_scan` needs to
/// program prefix waits).
fn draw_distr(rng: &mut SplitMix64, descending: bool) -> String {
    let low = 0.002 + rng.next_below(9) as f64 * 0.001;
    let high = low + 0.02 + rng.next_below(5) as f64 * 0.01;
    if descending {
        // Swap: the "low" key carries the larger value so early ranks are
        // the slow ones and later ranks collect prefix waits.
        return match rng.next_below(2) {
            0 => format!("block2:low={high},high={low}"),
            _ => format!("linear:low={high},high={low}"),
        };
    }
    match rng.next_below(6) {
        0 => format!("cyclic2:low={low},high={high}"),
        1 => format!("block2:low={low},high={high}"),
        2 => format!("linear:low={low},high={high}"),
        3 => format!("peak:low={low},high={high},n={}", rng.next_below(2)),
        4 => {
            let med = (low + high) / 2.0;
            format!("cyclic3:low={low},med={med},high={high}")
        }
        _ => {
            let med = (low + high) / 2.0;
            format!("block3:low={low},med={med},high={high}")
        }
    }
}

/// Draw one concrete parameter assignment for `property` on a group of
/// `group_size` ranks.
fn draw_params(
    rng: &mut SplitMix64,
    property: &str,
    group_size: usize,
    cfg: &GenConfig,
) -> BTreeMap<String, String> {
    let spec = catalog::find(property).expect("generator draws catalog names");
    let mut out = BTreeMap::new();
    for p in spec.params {
        let value = match (p.name, p.kind) {
            ("r", _) => format!("{}", 1 + rng.next_below(cfg.max_reps as u64)),
            ("root", _) => format!("{}", rng.next_below(group_size as u64)),
            ("nthreads", _) => format!("{}", 2 + rng.next_below(3)),
            ("df", _) => draw_distr(rng, property == "imbalance_at_mpi_scan"),
            // The contention model assumes no staggering between rounds.
            ("outsidework", _) => "0".to_owned(),
            ("growth", _) => {
                let (lo, hi) = clamped(p.range_f64(), 0.1, 0.9);
                draw_seconds(rng, lo, hi)
            }
            // Severity knobs: the programmed inefficiency magnitude.
            (
                "extrawork" | "baseextrawork" | "delay" | "singlework" | "masterwork" | "bodywork"
                | "extrastep" | "work",
                ParamKind::Seconds,
            ) => {
                let (lo, hi) = clamped(p.range_f64(), 0.02, 0.06);
                draw_seconds(rng, lo, hi)
            }
            // Base knobs: background work everyone does.
            (_, ParamKind::Seconds) => {
                let (lo, hi) = clamped(p.range_f64(), 0.002, 0.01);
                draw_seconds(rng, lo, hi)
            }
            (_, ParamKind::Count) => p.default.to_owned(),
            (_, ParamKind::Distribution) => draw_distr(rng, false),
        };
        out.insert(p.name.to_owned(), value);
    }
    out
}

/// Draw one phase on `group` (of `group_size` ranks).
fn draw_phase(
    rng: &mut SplitMix64,
    group: usize,
    group_size: usize,
    padding: bool,
    cfg: &GenConfig,
) -> Phase {
    let names = if padding {
        padding_names()
    } else {
        positive_names()
    };
    let property = names[rng.next_below(names.len() as u64) as usize];
    Phase {
        group,
        property: property.to_owned(),
        params: draw_params(rng, property, group_size, cfg),
    }
}

/// Draw a split the world size supports (every group keeps ≥ 2 ranks).
fn draw_split(rng: &mut SplitMix64, nprocs: usize) -> Split {
    let mut options = vec![Split::Whole, Split::Whole];
    if nprocs >= 4 {
        options.push(Split::Stride { groups: 2 });
        options.push(Split::Block { groups: 2 });
    }
    if nprocs >= 6 {
        options.push(Split::Stride { groups: 3 });
        options.push(Split::Block { groups: 3 });
    }
    options[rng.next_below(options.len() as u64) as usize]
}

/// Generate the scenario for `seed`. Same seed ⇒ byte-identical scenario.
///
/// Every scenario contains at least one positive phase and at least one
/// padding phase, so both halves of the oracle (presence and absence) are
/// always exercised.
pub fn generate(seed: u64, cfg: &GenConfig) -> Scenario {
    assert!(cfg.nprocs >= 2, "scenarios need at least 2 ranks");
    assert!(cfg.min_slots >= 1 && cfg.max_slots >= cfg.min_slots);
    let mut rng = SplitMix64::split(seed, 0);
    let num_slots =
        cfg.min_slots + rng.next_below((cfg.max_slots - cfg.min_slots + 1) as u64) as usize;
    let mut slots = Vec::with_capacity(num_slots + 2);
    for _ in 0..num_slots {
        let split = draw_split(&mut rng, cfg.nprocs);
        let groups = split.num_groups();
        let mut phases = Vec::new();
        if groups == 1 {
            let padding = rng.next_below(100) < cfg.padding_percent;
            phases.push(draw_phase(&mut rng, 0, cfg.nprocs, padding, cfg));
        } else {
            // 1–2 phases on distinct groups, starting at a rotated group so
            // all colors see both roles across a campaign.
            let count = 1 + rng.next_below(2) as usize;
            let start = rng.next_below(groups as u64) as usize;
            for i in 0..count.min(groups) {
                let g = (start + i) % groups;
                let padding = rng.next_below(100) < cfg.padding_percent;
                phases.push(draw_phase(
                    &mut rng,
                    g,
                    split.group_size(g, cfg.nprocs),
                    padding,
                    cfg,
                ));
            }
        }
        slots.push(Slot { split, phases });
    }
    // Guarantee both roles are present.
    let has_positive = slots
        .iter()
        .flat_map(|s| &s.phases)
        .any(|p| !p.is_padding());
    if !has_positive {
        let ph = draw_phase(&mut rng, 0, cfg.nprocs, false, cfg);
        slots.push(Slot {
            split: Split::Whole,
            phases: vec![ph],
        });
    }
    let has_padding = slots.iter().flat_map(|s| &s.phases).any(Phase::is_padding);
    if !has_padding {
        let ph = draw_phase(&mut rng, 0, cfg.nprocs, true, cfg);
        slots.push(Slot {
            split: Split::Whole,
            phases: vec![ph],
        });
    }
    let sc = Scenario {
        seed,
        nprocs: cfg.nprocs,
        slots,
    };
    debug_assert_eq!(sc.validate(), Ok(()));
    sc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Phase;

    #[test]
    fn same_seed_same_scenario_bytes() {
        let cfg = GenConfig::default();
        for seed in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
            let a = serde_json::to_string(&generate(seed, &cfg)).unwrap();
            let b = serde_json::to_string(&generate(seed, &cfg)).unwrap();
            assert_eq!(a, b, "seed {seed:#x}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = serde_json::to_string(&generate(1, &cfg)).unwrap();
        let b = serde_json::to_string(&generate(2, &cfg)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_scenarios_validate_and_have_both_roles() {
        let cfg = GenConfig::default();
        for seed in 0..200u64 {
            let sc = generate(seed, &cfg);
            sc.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{sc}"));
            assert!(
                sc.slots
                    .iter()
                    .flat_map(|s| &s.phases)
                    .any(Phase::is_padding),
                "seed {seed} has no padding"
            );
            assert!(
                sc.slots
                    .iter()
                    .flat_map(|s| &s.phases)
                    .any(|p| !p.is_padding()),
                "seed {seed} has no positive phase"
            );
            assert!(sc.num_phases() < 100, "region names stay two-digit");
        }
    }

    #[test]
    fn small_worlds_only_use_whole_splits() {
        let cfg = GenConfig {
            nprocs: 3,
            ..GenConfig::default()
        };
        for seed in 0..50u64 {
            let sc = generate(seed, &cfg);
            assert!(
                sc.slots.iter().all(|s| s.split == Split::Whole),
                "seed {seed}: {sc}"
            );
            sc.validate().unwrap();
        }
    }

    #[test]
    fn text_and_json_round_trip_generated_scenarios() {
        let cfg = GenConfig::default();
        for seed in 0..50u64 {
            let sc = generate(seed, &cfg);
            let text: Scenario = sc.to_string().parse().unwrap();
            assert_eq!(text, sc, "text round trip, seed {seed}");
            let json: Scenario =
                serde_json::from_str(&serde_json::to_string(&sc).unwrap()).unwrap();
            assert_eq!(json, sc, "json round trip, seed {seed}");
        }
    }

    #[test]
    fn scan_phases_draw_descending_distributions() {
        let cfg = GenConfig::default();
        let mut seen = 0;
        for seed in 0..400u64 {
            let sc = generate(seed, &cfg);
            for (_, _, ph) in sc.indexed_phases() {
                if ph.property == "imbalance_at_mpi_scan" {
                    seen += 1;
                    let d: ats_core::Distr = ph.params["df"].parse().unwrap();
                    let vals = d.values(8, 1.0);
                    assert!(
                        vals.windows(2).all(|w| w[0] >= w[1]),
                        "seed {seed}: scan df not descending: {vals:?}"
                    );
                }
            }
        }
        assert!(seen > 0, "no scan phase in 400 scenarios");
    }
}
