//! Scenario execution and the compositional ground-truth oracle.
//!
//! Every generated scenario carries its own ground truth: the catalog
//! says what each positive phase must be reported as and where, the
//! closed-form models in [`crate::model`] say how much waiting time it
//! programs on its group, and padding phases program exactly zero wait.
//! The oracle executes the scenario (every phase wrapped in a `fzNN`
//! trace region), runs the analyzer, and scores the report against that
//! composed prediction. Three things are violations:
//!
//! * **Missed** — a positive phase whose programmed wait is comfortably
//!   above the detection threshold produced no finding of the expected
//!   property at the expected call site inside its region;
//! * **Spurious** — any finding localized inside a padding phase's
//!   region (padding is exactly waitless by construction);
//! * **WaitOutOfBand** — the expected finding exists but its attributed
//!   waiting time falls outside the property's tolerance band around the
//!   programmed nominal wait.
//!
//! The oracle scores against its *own* `expected_threshold` — the
//! detection contract the tool claims — independent of the
//! [`AnalyzerConfig`] actually used to run. Handing it a deliberately
//! mis-calibrated analyzer (threshold far above any finding) therefore
//! produces `Missed` violations: the mechanism the oracle/shrinker
//! integration test uses to prove the loop is live.

use crate::model;
use crate::scenario::{region_name, Phase, Scenario, Split, SYNC_REGION};
use ats_analyzer::{analyze, AnalysisReport, AnalyzerConfig};
use ats_core::{BaseComm, Error};
use ats_harness::{run_in_comm, RunOpts};
use ats_trace::{RegionKind, Trace};
use serde::{Deserialize, Serialize};

/// Oracle configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// The analyzer configuration the scenario is scored with — the tool
    /// under test.
    pub analyzer: AnalyzerConfig,
    /// The severity threshold the tool *claims* to detect at. Presence is
    /// only demanded when a phase's predicted severity clears this with
    /// margin (see `presence_factor`), so honest borderline phases never
    /// flap, while a sabotaged analyzer still yields `Missed`.
    pub expected_threshold: f64,
    /// Multiple of `expected_threshold` a predicted severity must reach
    /// before the oracle demands detection.
    pub presence_factor: f64,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            analyzer: AnalyzerConfig::default(),
            expected_threshold: 0.005,
            presence_factor: 3.0,
        }
    }
}

/// Kinds of oracle violations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Expected finding absent despite a comfortably detectable severity.
    Missed,
    /// A finding localized inside a padding phase's region.
    Spurious,
    /// Expected finding present but its wait is outside the band.
    WaitOutOfBand,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::Missed => "missed",
            ViolationKind::Spurious => "spurious",
            ViolationKind::WaitOutOfBand => "wait-out-of-band",
        };
        f.write_str(s)
    }
}

/// One oracle violation, attributed to a phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Global phase index within the scenario.
    pub phase: usize,
    /// The phase's trace region (`fzNN`).
    pub region: String,
    /// Catalog property-function name of the phase.
    pub property: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl Violation {
    /// The identity the shrinker preserves: a candidate reproduces the
    /// original failure iff it yields a violation with the same kind on
    /// the same property function (phase indices shift while shrinking).
    pub fn key(&self) -> (ViolationKind, String) {
        (self.kind, self.property.clone())
    }
}

/// The oracle's per-phase prediction.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Prediction {
    /// Global phase index.
    pub phase: usize,
    /// Trace region wrapping the phase.
    pub region: String,
    /// Catalog property-function name.
    pub property: String,
    /// Analyzer property a correct tool must report (`None` = padding,
    /// which must stay finding-free).
    pub expected: Option<String>,
    /// Call region the finding must be localized at.
    pub localized_at: String,
    /// Communicator size the phase runs on.
    pub group_size: usize,
    /// Programmed total wait in seconds (0 for padding).
    pub nominal_wait: f64,
}

/// Compose the catalog's expectations with the scenario's topology into
/// one prediction per phase. The scenario must be valid.
pub fn predict(sc: &Scenario) -> Result<Vec<Prediction>, Error> {
    sc.validate()?;
    let mut out = Vec::with_capacity(sc.num_phases());
    for (idx, slot_idx, ph) in sc.indexed_phases() {
        let spec = ats_core::catalog::find(&ph.property).expect("validated");
        let group_size = sc.slots[slot_idx].split.group_size(ph.group, sc.nprocs);
        let v = ph.param_values()?;
        let nominal_wait = model::nominal_wait(&ph.property, &v, group_size).unwrap_or(0.0);
        out.push(Prediction {
            phase: idx,
            region: region_name(idx),
            property: ph.property.clone(),
            expected: spec.expected_property.map(str::to_owned),
            localized_at: spec.localized_at.to_owned(),
            group_size,
            nominal_wait,
        });
    }
    Ok(out)
}

/// Execute a scenario into a trace: one `ats_mpi::run` with every phase
/// wrapped in its `fzNN` region and a world barrier (inside the
/// [`SYNC_REGION`]) realigning all clocks between slots.
pub fn execute(sc: &Scenario, opts: &RunOpts) -> Result<Trace, Error> {
    sc.validate()?;
    let sc = sc.clone();
    let base = opts.base;
    let cfg = opts.clone().procs(sc.nprocs).sim_config();
    Ok(ats_mpi::run(cfg, move |p| run_rank(&sc, &base, p)))
}

fn run_rank(sc: &Scenario, base: &BaseComm, p: &mut ats_mpi::Proc) {
    let world = p.comm_world();
    let mut idx = 0usize;
    for slot in &sc.slots {
        match slot.split {
            Split::Whole => {
                for ph in &slot.phases {
                    run_phase(idx, ph, base, p, &world);
                    idx += 1;
                }
            }
            split => {
                let color = split.color(p.rank(), sc.nprocs);
                // Collective over the world: every rank participates.
                let sub = p
                    .comm_split(color as i64, p.rank() as i64, &world)
                    .expect("non-negative color");
                for ph in &slot.phases {
                    if ph.group == color {
                        run_phase(idx, ph, base, p, &sub);
                    }
                    idx += 1;
                }
            }
        }
        // Realign all clocks so the next slot starts synchronized. Groups
        // finish at different times, so this barrier legitimately
        // collects waits — the oracle never scores anything under it.
        p.enter_region(SYNC_REGION, RegionKind::User);
        p.barrier(&world);
        p.exit_region(SYNC_REGION);
    }
}

fn run_phase(idx: usize, ph: &Phase, base: &BaseComm, p: &mut ats_mpi::Proc, c: &ats_mpi::Comm) {
    let region = region_name(idx);
    let v = ph.param_values().expect("validated");
    p.enter_region(&region, RegionKind::User);
    run_in_comm(&ph.property, &v, base, p, c);
    p.exit_region(&region);
}

/// Score an analysis report against the predictions. `total_alloc_secs`
/// is the trace's total allocation time (the severity denominator).
pub fn score(
    predictions: &[Prediction],
    report: &AnalysisReport,
    total_alloc_secs: f64,
    cfg: &OracleConfig,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for pred in predictions {
        // Slash-terminated region tag: `fzNN` is never a path leaf (the
        // property frame nests below it), so this matches exactly the
        // findings inside this phase.
        let tag = format!("{}/", pred.region);
        match &pred.expected {
            None => {
                let spurious: Vec<String> = report
                    .findings
                    .iter()
                    .filter(|f| f.call_path.contains(&tag))
                    .map(|f| {
                        format!(
                            "{} at {} ({:.4}s)",
                            f.property,
                            f.call_path,
                            f.wait.as_secs()
                        )
                    })
                    .collect();
                if !spurious.is_empty() {
                    out.push(Violation {
                        kind: ViolationKind::Spurious,
                        phase: pred.phase,
                        region: pred.region.clone(),
                        property: pred.property.clone(),
                        detail: format!("padding phase has findings: {}", spurious.join("; ")),
                    });
                }
            }
            Some(expected) => {
                let matching: Vec<_> = report
                    .findings
                    .iter()
                    .filter(|f| {
                        f.property == *expected
                            && f.call_path.contains(&tag)
                            && f.call_path.contains(&pred.localized_at)
                    })
                    .collect();
                let predicted_severity = if total_alloc_secs > 0.0 {
                    pred.nominal_wait / total_alloc_secs
                } else {
                    0.0
                };
                let band = model::band(&pred.property);
                // Demand presence only when even the most conservative
                // in-band attribution (band.lo of the nominal) still
                // clears the tool's threshold — wide-band properties may
                // legitimately attribute only part of the programmed wait.
                let must_detect = predicted_severity
                    >= cfg.presence_factor * cfg.expected_threshold
                    && predicted_severity * band.lo >= cfg.expected_threshold;
                if matching.is_empty() {
                    if must_detect {
                        out.push(Violation {
                            kind: ViolationKind::Missed,
                            phase: pred.phase,
                            region: pred.region.clone(),
                            property: pred.property.clone(),
                            detail: format!(
                                "no {expected} at {}/{} despite predicted severity {:.4} \
                                 (threshold {:.4}, nominal wait {:.4}s over {} ranks)",
                                pred.region,
                                pred.localized_at,
                                predicted_severity,
                                cfg.expected_threshold,
                                pred.nominal_wait,
                                pred.group_size
                            ),
                        });
                    }
                } else if must_detect {
                    let measured: f64 = matching.iter().map(|f| f.wait.as_secs()).sum();
                    let (lo, hi) = (band.lo * pred.nominal_wait, band.hi * pred.nominal_wait);
                    if measured < lo || measured > hi {
                        out.push(Violation {
                            kind: ViolationKind::WaitOutOfBand,
                            phase: pred.phase,
                            region: pred.region.clone(),
                            property: pred.property.clone(),
                            detail: format!(
                                "{expected} wait {measured:.4}s outside [{lo:.4}, {hi:.4}] \
                                 (nominal {:.4}s)",
                                pred.nominal_wait
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// The full oracle pass over one scenario.
#[derive(Debug)]
pub struct OracleRun {
    /// The executed trace.
    pub trace: Trace,
    /// The analyzer's report.
    pub report: AnalysisReport,
    /// Per-phase predictions.
    pub predictions: Vec<Prediction>,
    /// Oracle violations (empty = the tool passed this scenario).
    pub violations: Vec<Violation>,
}

/// Execute `sc`, analyze it with `cfg.analyzer`, and score the report.
pub fn check(sc: &Scenario, cfg: &OracleConfig, opts: &RunOpts) -> Result<OracleRun, Error> {
    let predictions = predict(sc)?;
    let trace = execute(sc, opts)?;
    let report = analyze(&trace, &cfg.analyzer);
    let total = trace.total_alloc_time().as_secs();
    let violations = score(&predictions, &report, total, cfg);
    Ok(OracleRun {
        trace,
        report,
        predictions,
        violations,
    })
}

/// Convenience: just the violations of one scenario.
pub fn violations_of(
    sc: &Scenario,
    cfg: &OracleConfig,
    opts: &RunOpts,
) -> Result<Vec<Violation>, Error> {
    check(sc, cfg, opts).map(|r| r.violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Slot;

    fn phase(group: usize, property: &str, params: &[(&str, &str)]) -> Phase {
        Phase {
            group,
            property: property.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    fn two_comm_scenario() -> Scenario {
        Scenario {
            seed: 1,
            nprocs: 8,
            slots: vec![
                Slot {
                    split: Split::Stride { groups: 2 },
                    phases: vec![
                        phase(
                            0,
                            "late_sender",
                            &[("basework", "0.005"), ("extrawork", "0.04"), ("r", "2")],
                        ),
                        phase(1, "balanced_mpi_barrier", &[("work", "0.005"), ("r", "2")]),
                    ],
                },
                Slot {
                    split: Split::Whole,
                    phases: vec![phase(
                        0,
                        "late_broadcast",
                        &[
                            ("basework", "0.005"),
                            ("extrawork", "0.03"),
                            ("root", "2"),
                            ("r", "2"),
                        ],
                    )],
                },
            ],
        }
    }

    #[test]
    fn predictions_compose_catalog_and_topology() {
        let preds = predict(&two_comm_scenario()).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[0].region, "fz00");
        assert_eq!(preds[0].group_size, 4, "stride2 over 8 ranks");
        // 4-rank group -> 2 pairs * 0.04 * 2 reps.
        assert!((preds[0].nominal_wait - 0.16).abs() < 1e-12);
        assert_eq!(preds[1].expected, None, "padding predicts nothing");
        assert_eq!(preds[1].nominal_wait, 0.0);
        assert_eq!(preds[2].group_size, 8);
        // (8-1) * 0.03 * 2.
        assert!((preds[2].nominal_wait - 0.42).abs() < 1e-12);
        assert_eq!(preds[2].localized_at, "MPI_Bcast");
    }

    #[test]
    fn clean_scenario_passes_the_default_oracle() {
        let run = check(
            &two_comm_scenario(),
            &OracleConfig::default(),
            &RunOpts::default(),
        )
        .unwrap();
        assert!(
            run.violations.is_empty(),
            "violations: {:#?}\nfindings: {:#?}",
            run.violations,
            run.report.findings
        );
        // Both positives were found inside their regions.
        assert!(run
            .report
            .findings
            .iter()
            .any(|f| f.property == "LateSender" && f.call_path.contains("fz00/")));
        assert!(run
            .report
            .findings
            .iter()
            .any(|f| f.property == "LateBroadcast" && f.call_path.contains("fz02/")));
    }

    #[test]
    fn execution_is_deterministic() {
        let sc = two_comm_scenario();
        let opts = RunOpts::default();
        let a = execute(&sc, &opts).unwrap();
        let b = execute(&sc, &opts).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "same scenario must produce byte-identical traces"
        );
    }

    #[test]
    fn miscalibrated_analyzer_yields_missed_violations() {
        let cfg = OracleConfig {
            analyzer: AnalyzerConfig::default().threshold(0.9),
            ..OracleConfig::default()
        };
        let violations = violations_of(&two_comm_scenario(), &cfg, &RunOpts::default()).unwrap();
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::Missed && v.property == "late_sender"),
            "{violations:#?}"
        );
    }

    #[test]
    fn borderline_phases_are_not_demanded() {
        // A positive phase so small its predicted severity is far below
        // the must-detect gate: the oracle must not demand it even if the
        // analyzer misses it.
        let sc = Scenario {
            seed: 2,
            nprocs: 8,
            slots: vec![
                Slot {
                    split: Split::Whole,
                    phases: vec![phase(
                        0,
                        "late_sender",
                        &[("basework", "0.1"), ("extrawork", "0.0002"), ("r", "1")],
                    )],
                },
                Slot {
                    split: Split::Whole,
                    phases: vec![phase(
                        0,
                        "balanced_mpi_barrier",
                        &[("work", "0.1"), ("r", "2")],
                    )],
                },
            ],
        };
        let cfg = OracleConfig {
            analyzer: AnalyzerConfig::default().threshold(0.9),
            ..OracleConfig::default()
        };
        let violations = violations_of(&sc, &cfg, &RunOpts::default()).unwrap();
        assert!(violations.is_empty(), "{violations:#?}");
    }

    #[test]
    fn sync_region_waits_are_never_violations() {
        // Wildly unequal group durations: the inter-slot barrier collects
        // large waits, but they land under fuzz_sync, not under padding.
        let sc = Scenario {
            seed: 3,
            nprocs: 8,
            slots: vec![Slot {
                split: Split::Stride { groups: 2 },
                phases: vec![
                    phase(
                        0,
                        "imbalance_at_mpi_barrier",
                        &[("df", "block2:low=0.005,high=0.08"), ("r", "3")],
                    ),
                    phase(1, "balanced_mpi_barrier", &[("work", "0.001"), ("r", "1")]),
                ],
            }],
        };
        let run = check(&sc, &OracleConfig::default(), &RunOpts::default()).unwrap();
        assert!(run.violations.is_empty(), "{:#?}", run.violations);
    }
}
