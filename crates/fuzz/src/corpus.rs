//! The on-disk corpus of minimized violating scenarios.
//!
//! Every violating scenario the shrinker minimizes is persisted twice:
//! the spec as pretty JSON (`s<seed-hex>.json`, with the compact text
//! form and the violations embedded for human triage) and the executed
//! trace in the ATSB binary format (`s<seed-hex>.atsb`). The JSON spec is
//! the replayable artifact — `replay` re-executes the scenario through
//! the oracle, which is how a fixed analyzer proves the regression is
//! gone (and CI proves it never comes back).
//!
//! Both files are written through [`ats_store::atomic`] (temp file +
//! rename), so an interrupted campaign can never leave a truncated
//! corpus entry. Campaigns with a result cache additionally publish each
//! witness into the content-addressed artifact store
//! ([`persist_to_store`]), keyed by the scenario's complete text form —
//! the same integrity-checked tree experiment sweeps replay from.

use crate::oracle::{self, OracleConfig, Violation, ViolationKind};
use crate::scenario::Scenario;
use ats_core::Error;
use ats_store::{atomic, Cache, CacheKey, Json};
use ats_trace::{binfmt, Trace};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Default corpus directory, relative to the repository root.
pub const DEFAULT_DIR: &str = "artifacts/fuzz-corpus";

/// The persisted JSON document for one corpus entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusDoc {
    /// The minimized scenario spec.
    pub scenario: Scenario,
    /// Its compact one-line text form, for humans grepping the corpus.
    pub text: String,
    /// The violations the scenario reproduced when it was persisted.
    pub violations: Vec<Violation>,
}

/// One loaded corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Path of the `.json` spec.
    pub path: PathBuf,
    /// The scenario.
    pub scenario: Scenario,
    /// Violations recorded at persist time.
    pub violations: Vec<Violation>,
}

/// File stem for a scenario: the seed in fixed-width hex, so corpus
/// listings sort deterministically.
pub fn stem(sc: &Scenario) -> String {
    format!("s{:016x}", sc.seed)
}

/// Persist a minimized scenario and its trace under `dir`. Returns the
/// path of the JSON spec.
pub fn persist(
    dir: &Path,
    sc: &Scenario,
    violations: &[Violation],
    trace: &Trace,
) -> Result<PathBuf, Error> {
    fs::create_dir_all(dir).map_err(|e| Error::corpus(format!("create {}: {e}", dir.display())))?;
    let stem = stem(sc);
    let doc = CorpusDoc {
        scenario: sc.clone(),
        text: sc.to_string(),
        violations: violations.to_vec(),
    };
    let json_path = dir.join(format!("{stem}.json"));
    let json = serde_json::to_string_pretty(&doc).expect("corpus doc serializes");
    // Temp-file + rename for both artifacts: a reader (or a resumed
    // campaign) can never observe a half-written spec or trace.
    atomic::write_atomic(&json_path, json.as_bytes())?;
    let atsb_path = dir.join(format!("{stem}.atsb"));
    atomic::write_atomic(&atsb_path, &binfmt::encode(trace))?;
    Ok(json_path)
}

/// Schema tag of store-published corpus entries.
pub const STORE_SCHEMA: &str = "ats-store-fuzz-corpus/1";
/// Spec artifact name inside a store entry.
pub const SPEC_FILE: &str = "scenario.json";
/// Trace artifact name inside a store entry.
pub const TRACE_FILE: &str = "trace.atsb";

/// Key ingredients for a store-published witness: the scenario's
/// complete one-line text form (seed, nprocs, every slot, split, phase
/// and parameter) is its identity — two scenarios with the same text are
/// the same scenario, shrunk or not.
pub fn store_key_doc(sc: &Scenario) -> Json {
    Json::obj()
        .with("schema", STORE_SCHEMA)
        .with("engine", "fuzz-corpus")
        .with("scenario", sc.to_string())
}

/// The store key for a scenario.
pub fn store_key(sc: &Scenario) -> CacheKey {
    CacheKey::of_value(&store_key_doc(sc))
}

fn violation_json(v: &Violation) -> Json {
    Json::obj()
        .with("kind", v.kind.to_string())
        .with("phase", v.phase)
        .with("region", v.region.as_str())
        .with("property", v.property.as_str())
        .with("detail", v.detail.as_str())
}

fn violation_from_json(doc: &Json) -> Option<Violation> {
    let kind = match doc.get("kind").and_then(Json::as_str)? {
        "missed" => ViolationKind::Missed,
        "spurious" => ViolationKind::Spurious,
        "wait-out-of-band" => ViolationKind::WaitOutOfBand,
        _ => return None,
    };
    Some(Violation {
        kind,
        phase: doc.get("phase").and_then(Json::as_u64)? as usize,
        region: doc.get("region").and_then(Json::as_str)?.to_owned(),
        property: doc.get("property").and_then(Json::as_str)?.to_owned(),
        detail: doc.get("detail").and_then(Json::as_str)?.to_owned(),
    })
}

/// The spec document a store entry carries: enough to re-generate, grep
/// and triage the witness without touching the binary trace.
pub fn spec_doc(sc: &Scenario, violations: &[Violation]) -> Json {
    let mut vs = Json::arr();
    for v in violations {
        vs.push(violation_json(v));
    }
    Json::obj()
        .with("schema", STORE_SCHEMA)
        .with("seed", sc.seed)
        .with("nprocs", sc.nprocs)
        .with("text", sc.to_string())
        .with("violations", vs)
}

/// Parse the violations back out of a store entry's spec document.
pub fn spec_violations(doc: &Json) -> Option<Vec<Violation>> {
    doc.get("violations")?
        .as_arr()?
        .iter()
        .map(violation_from_json)
        .collect()
}

/// Publish a minimized witness (spec + trace) into the artifact store,
/// honoring the cache mode. Returns bytes written (0 when the mode
/// forbids writes or the entry already exists).
pub fn persist_to_store(
    cache: &Cache,
    sc: &Scenario,
    violations: &[Violation],
    trace: &Trace,
) -> Result<u64, Error> {
    let key = store_key(sc);
    if cache.mode.reads() && cache.store.get(&key)?.is_some() {
        return Ok(0);
    }
    cache.publish(
        &key,
        &store_key_doc(sc),
        &[
            (SPEC_FILE, spec_doc(sc, violations).render_pretty().as_bytes()),
            (TRACE_FILE, &binfmt::encode(trace)),
        ],
    )
}

/// Load every `.json` spec under `dir`, sorted by file name. A missing
/// directory is an empty corpus.
pub fn load(dir: &Path) -> Result<Vec<CorpusEntry>, Error> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::corpus(format!("read {}: {e}", dir.display()))),
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| Error::corpus(format!("read {}: {e}", path.display())))?;
        let doc: CorpusDoc = serde_json::from_str(&text)
            .map_err(|e| Error::corpus(format!("{}: {e}", path.display())))?;
        out.push(CorpusEntry {
            path,
            scenario: doc.scenario,
            violations: doc.violations,
        });
    }
    Ok(out)
}

/// Result of replaying one corpus entry.
#[derive(Debug)]
pub struct ReplayResult {
    /// The entry.
    pub entry: CorpusEntry,
    /// Violations under the *current* oracle configuration (empty means
    /// the defect the entry witnessed is fixed).
    pub violations: Vec<Violation>,
}

/// Re-run every corpus entry through the oracle with the given
/// configuration. With an honest analyzer this is the regression guard:
/// every entry must come back violation-free.
pub fn replay(
    dir: &Path,
    cfg: &OracleConfig,
    opts: &ats_harness::RunOpts,
) -> Result<Vec<ReplayResult>, Error> {
    load(dir)?
        .into_iter()
        .map(|entry| {
            let violations = oracle::violations_of(&entry.scenario, cfg, opts)
                .map_err(|e| Error::corpus(format!("{}: {e}", entry.path.display())))?;
            Ok(ReplayResult { entry, violations })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use ats_harness::RunOpts;

    /// Unique temp dir per test, removed on drop.
    fn tmp_dir(tag: &str) -> ats_testutil::TempDir {
        ats_testutil::TempDir::new(&format!("ats-fuzz-corpus-{tag}"))
    }

    #[test]
    fn persist_load_replay_round_trip() {
        let tmp = tmp_dir("roundtrip");
        let dir = tmp.path();
        let sc = generate(11, &GenConfig::default());
        let cfg = OracleConfig::default();
        let opts = RunOpts::default();
        let run = oracle::check(&sc, &cfg, &opts).unwrap();
        persist(dir, &sc, &run.violations, &run.trace).unwrap();

        let entries = load(dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].scenario, sc);

        // The binary trace decodes to the executed trace.
        let atsb = dir.join(format!("{}.atsb", stem(&sc)));
        let decoded = binfmt::read_binary(fs::File::open(&atsb).unwrap()).unwrap();
        assert_eq!(decoded.num_events(), run.trace.num_events());

        // Replaying under the honest oracle stays clean.
        let results = replay(dir, &cfg, &opts).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].violations.is_empty());
    }

    #[test]
    fn persist_leaves_no_temp_files() {
        let tmp = tmp_dir("atomic");
        let dir = tmp.path();
        let sc = generate(7, &GenConfig::default());
        let run = oracle::check(&sc, &OracleConfig::default(), &RunOpts::default()).unwrap();
        persist(dir, &sc, &[], &run.trace).unwrap();
        let names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2, "exactly spec + trace: {names:?}");
        assert!(
            names.iter().all(|n| !n.ends_with(".tmp")),
            "temp files left behind: {names:?}"
        );
    }

    #[test]
    fn store_publication_round_trips() {
        use ats_store::{Cache, CacheMode};
        let tmp = tmp_dir("store");
        let dir = tmp.path();
        let sc = generate(11, &GenConfig::default());
        let run = oracle::check(&sc, &OracleConfig::default(), &RunOpts::default()).unwrap();
        // A fabricated violation exercises the spec round trip.
        let v = Violation {
            kind: ViolationKind::Missed,
            phase: 0,
            region: "fz00".to_owned(),
            property: "late_sender".to_owned(),
            detail: "unit".to_owned(),
        };
        let cache = Cache::open(dir, CacheMode::ReadWrite).unwrap();
        let bytes =
            persist_to_store(&cache, &sc, std::slice::from_ref(&v), &run.trace).unwrap();
        assert!(bytes > 0, "first publication writes");
        assert_eq!(
            persist_to_store(&cache, &sc, std::slice::from_ref(&v), &run.trace).unwrap(),
            0,
            "re-publishing an existing witness is a no-op"
        );
        let entry = cache.lookup(&store_key(&sc)).unwrap().unwrap();
        let spec_text = std::str::from_utf8(entry.file(SPEC_FILE).unwrap()).unwrap();
        let spec = Json::parse(spec_text).unwrap();
        assert_eq!(
            spec.get("text").and_then(Json::as_str),
            Some(sc.to_string().as_str()),
            "spec carries the scenario's full text form"
        );
        assert_eq!(spec_violations(&spec).unwrap(), vec![v]);
        let decoded = binfmt::decode(entry.file(TRACE_FILE).unwrap()).unwrap();
        assert_eq!(decoded.num_events(), run.trace.num_events());
        // Read-only caches never publish.
        let ro = Cache::open(dir, CacheMode::Read).unwrap();
        let other = generate(12, &GenConfig::default());
        let run2 = oracle::check(&other, &OracleConfig::default(), &RunOpts::default()).unwrap();
        assert_eq!(persist_to_store(&ro, &other, &[], &run2.trace).unwrap(), 0);
        assert!(ro.lookup(&store_key(&other)).unwrap().is_none());
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let tmp = tmp_dir("missing");
        assert!(load(&tmp.file("never-created")).unwrap().is_empty());
    }

    #[test]
    fn stems_sort_by_seed() {
        let a = generate(1, &GenConfig::default());
        let b = generate(0x100, &GenConfig::default());
        assert!(stem(&a) < stem(&b));
    }
}
