//! The on-disk corpus of minimized violating scenarios.
//!
//! Every violating scenario the shrinker minimizes is persisted twice:
//! the spec as pretty JSON (`s<seed-hex>.json`, with the compact text
//! form and the violations embedded for human triage) and the executed
//! trace in the ATSB binary format (`s<seed-hex>.atsb`). The JSON spec is
//! the replayable artifact — `replay` re-executes the scenario through
//! the oracle, which is how a fixed analyzer proves the regression is
//! gone (and CI proves it never comes back).

use crate::oracle::{self, OracleConfig, Violation};
use crate::scenario::Scenario;
use ats_core::Error;
use ats_trace::{binfmt, Trace};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Default corpus directory, relative to the repository root.
pub const DEFAULT_DIR: &str = "artifacts/fuzz-corpus";

/// The persisted JSON document for one corpus entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusDoc {
    /// The minimized scenario spec.
    pub scenario: Scenario,
    /// Its compact one-line text form, for humans grepping the corpus.
    pub text: String,
    /// The violations the scenario reproduced when it was persisted.
    pub violations: Vec<Violation>,
}

/// One loaded corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Path of the `.json` spec.
    pub path: PathBuf,
    /// The scenario.
    pub scenario: Scenario,
    /// Violations recorded at persist time.
    pub violations: Vec<Violation>,
}

/// File stem for a scenario: the seed in fixed-width hex, so corpus
/// listings sort deterministically.
pub fn stem(sc: &Scenario) -> String {
    format!("s{:016x}", sc.seed)
}

/// Persist a minimized scenario and its trace under `dir`. Returns the
/// path of the JSON spec.
pub fn persist(
    dir: &Path,
    sc: &Scenario,
    violations: &[Violation],
    trace: &Trace,
) -> Result<PathBuf, Error> {
    fs::create_dir_all(dir).map_err(|e| Error::corpus(format!("create {}: {e}", dir.display())))?;
    let stem = stem(sc);
    let doc = CorpusDoc {
        scenario: sc.clone(),
        text: sc.to_string(),
        violations: violations.to_vec(),
    };
    let json_path = dir.join(format!("{stem}.json"));
    let json = serde_json::to_string_pretty(&doc).expect("corpus doc serializes");
    fs::write(&json_path, json)
        .map_err(|e| Error::corpus(format!("write {}: {e}", json_path.display())))?;
    let atsb_path = dir.join(format!("{stem}.atsb"));
    let file = fs::File::create(&atsb_path)
        .map_err(|e| Error::corpus(format!("create {}: {e}", atsb_path.display())))?;
    binfmt::write_binary(trace, file)
        .map_err(|e| Error::corpus(format!("{}: {e}", atsb_path.display())))?;
    Ok(json_path)
}

/// Load every `.json` spec under `dir`, sorted by file name. A missing
/// directory is an empty corpus.
pub fn load(dir: &Path) -> Result<Vec<CorpusEntry>, Error> {
    let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(Error::corpus(format!("read {}: {e}", dir.display()))),
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
    };
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)
            .map_err(|e| Error::corpus(format!("read {}: {e}", path.display())))?;
        let doc: CorpusDoc = serde_json::from_str(&text)
            .map_err(|e| Error::corpus(format!("{}: {e}", path.display())))?;
        out.push(CorpusEntry {
            path,
            scenario: doc.scenario,
            violations: doc.violations,
        });
    }
    Ok(out)
}

/// Result of replaying one corpus entry.
#[derive(Debug)]
pub struct ReplayResult {
    /// The entry.
    pub entry: CorpusEntry,
    /// Violations under the *current* oracle configuration (empty means
    /// the defect the entry witnessed is fixed).
    pub violations: Vec<Violation>,
}

/// Re-run every corpus entry through the oracle with the given
/// configuration. With an honest analyzer this is the regression guard:
/// every entry must come back violation-free.
pub fn replay(
    dir: &Path,
    cfg: &OracleConfig,
    opts: &ats_harness::RunOpts,
) -> Result<Vec<ReplayResult>, Error> {
    load(dir)?
        .into_iter()
        .map(|entry| {
            let violations = oracle::violations_of(&entry.scenario, cfg, opts)
                .map_err(|e| Error::corpus(format!("{}: {e}", entry.path.display())))?;
            Ok(ReplayResult { entry, violations })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GenConfig};
    use ats_harness::RunOpts;

    /// Unique temp dir per test (no tempfile crate in the workspace).
    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ats-fuzz-corpus-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn persist_load_replay_round_trip() {
        let dir = tmp_dir("roundtrip");
        let sc = generate(11, &GenConfig::default());
        let cfg = OracleConfig::default();
        let opts = RunOpts::default();
        let run = oracle::check(&sc, &cfg, &opts).unwrap();
        persist(&dir, &sc, &run.violations, &run.trace).unwrap();

        let entries = load(&dir).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].scenario, sc);

        // The binary trace decodes to the executed trace.
        let atsb = dir.join(format!("{}.atsb", stem(&sc)));
        let decoded = binfmt::read_binary(fs::File::open(&atsb).unwrap()).unwrap();
        assert_eq!(decoded.num_events(), run.trace.num_events());

        // Replaying under the honest oracle stays clean.
        let results = replay(&dir, &cfg, &opts).unwrap();
        assert_eq!(results.len(), 1);
        assert!(results[0].violations.is_empty());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = tmp_dir("missing");
        assert!(load(&dir).unwrap().is_empty());
    }

    #[test]
    fn stems_sort_by_seed() {
        let a = generate(1, &GenConfig::default());
        let b = generate(0x100, &GenConfig::default());
        assert!(stem(&a) < stem(&b));
    }
}
