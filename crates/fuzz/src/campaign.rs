//! Fuzzing campaigns: generate → execute → score many scenarios on the
//! shared worker pool, then shrink and persist whatever violates.
//!
//! Scenario seeds are derived with `SplitMix64::split(base_seed, index)`,
//! so each index's scenario is independent of every other index — the
//! campaign produces identical verdicts at any worker count, which the
//! cross-jobs integration test and the CI smoke job both assert. Each
//! scenario is additionally generated *twice* and compared byte-for-byte,
//! turning any nondeterminism in the generator itself into a reported
//! mismatch rather than silent corpus noise.

use crate::generator::{self, GenConfig};
use crate::oracle::{self, OracleConfig, Violation};
use crate::scenario::Scenario;
use crate::{corpus, shrink};
use ats_core::Error;
use ats_harness::{pool, RunOpts};
use ats_runtime::SplitMix64;
use serde::Serialize;
use std::path::PathBuf;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; scenario `i` uses `SplitMix64::split(base_seed, i)`.
    pub base_seed: u64,
    /// Number of scenarios.
    pub count: usize,
    /// Worker count (`0` = auto); clamped by the harness thread budget.
    pub jobs: usize,
    /// Generator knobs.
    pub gen: GenConfig,
    /// Oracle knobs.
    pub oracle: OracleConfig,
    /// Execution options shared by all scenarios.
    pub opts: RunOpts,
    /// Shrink violating scenarios before reporting/persisting.
    pub shrink: bool,
    /// Persist minimized violating scenarios (spec + trace) here.
    pub corpus_dir: Option<PathBuf>,
    /// Artifact store to additionally publish witnesses into (spec +
    /// trace, content-addressed by the scenario's text form). `None` or a
    /// read-only mode publishes nothing.
    pub cache: Option<ats_store::Cache>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            base_seed: 0xA75_F022,
            count: 200,
            jobs: 0,
            gen: GenConfig::default(),
            oracle: OracleConfig::default(),
            opts: RunOpts::default(),
            shrink: true,
            corpus_dir: None,
            cache: None,
        }
    }
}

impl FuzzConfig {
    /// A campaign configured from a [`Session`](ats_harness::Session):
    /// run options (process count, seed, observability handle) and worker
    /// count come from the session, so campaign metrics land in the same
    /// registry as everything else the session runs.
    pub fn for_session(session: &ats_harness::Session) -> Self {
        let opts = session.opts().clone();
        FuzzConfig {
            base_seed: opts.seed,
            jobs: opts.jobs,
            gen: GenConfig {
                nprocs: opts.nprocs,
                ..GenConfig::default()
            },
            opts,
            cache: session.result_cache().cloned(),
            ..FuzzConfig::default()
        }
    }
}

/// The scenario seed for campaign index `i` under `base_seed`.
pub fn scenario_seed(base_seed: u64, i: usize) -> u64 {
    SplitMix64::split(base_seed, i as u64).next_u64()
}

/// Verdict for one campaign scenario.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioVerdict {
    /// Campaign index.
    pub index: usize,
    /// Scenario seed (derived from the base seed).
    pub seed: u64,
    /// Phases in the scenario.
    pub phases: usize,
    /// Events in the executed trace.
    pub events: usize,
    /// Oracle violations (empty = pass).
    pub violations: Vec<Violation>,
    /// True if generating the scenario twice produced different bytes —
    /// generator nondeterminism, always a campaign failure.
    pub regen_mismatch: bool,
}

impl ScenarioVerdict {
    /// Did this scenario pass cleanly?
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && !self.regen_mismatch
    }
}

/// Aggregate campaign statistics (the `BENCH_fuzz.json` payload).
#[derive(Debug, Clone, Serialize)]
pub struct FuzzStats {
    /// Scenarios executed.
    pub scenarios: usize,
    /// Total phases executed.
    pub phases_executed: usize,
    /// Total trace events produced.
    pub events: usize,
    /// Total violations across all scenarios.
    pub violations: usize,
    /// Scenarios with at least one violation.
    pub violating_scenarios: usize,
    /// Scenarios whose re-generation mismatched.
    pub regen_mismatches: usize,
    /// Wall-clock seconds for the scenario loop.
    pub wall_secs: f64,
    /// Scenarios per wall-clock second.
    pub scenarios_per_sec: f64,
    /// Effective worker count used.
    pub jobs: usize,
}

/// One minimized, persisted violation witness.
#[derive(Debug)]
pub struct Minimized {
    /// The minimized scenario.
    pub scenario: Scenario,
    /// Its violations.
    pub violations: Vec<Violation>,
    /// Where the spec was persisted (`None` if no corpus dir was set).
    pub persisted: Option<PathBuf>,
    /// Store key the witness was published under (`None` without a
    /// writable cache).
    pub stored: Option<ats_store::CacheKey>,
}

/// Full campaign outcome.
#[derive(Debug)]
pub struct CampaignResult {
    /// Per-scenario verdicts, in index order.
    pub verdicts: Vec<ScenarioVerdict>,
    /// Aggregate statistics.
    pub stats: FuzzStats,
    /// Shrunk witnesses for the violating scenarios.
    pub minimized: Vec<Minimized>,
}

/// Generate, execute, and score one campaign index. Public so the
/// cross-jobs determinism test can compare single indices directly.
pub fn run_index(cfg: &FuzzConfig, i: usize) -> Result<(Scenario, ScenarioVerdict), Error> {
    let obs = cfg.opts.obs.as_ref();
    let scenario_started = std::time::Instant::now();
    let seed = scenario_seed(cfg.base_seed, i);
    let sc = generator::generate(seed, &cfg.gen);
    let again = generator::generate(seed, &cfg.gen);
    let regen_mismatch = serde_json::to_string(&sc).expect("scenario serializes")
        != serde_json::to_string(&again).expect("scenario serializes");
    let oracle_started = std::time::Instant::now();
    let run = oracle::check(&sc, &cfg.oracle, &cfg.opts)?;
    if let Some(obs) = obs {
        obs.fuzz.oracle_time.observe(oracle_started.elapsed());
        obs.fuzz.scenarios.inc();
        obs.fuzz.phases.add(sc.num_phases() as u64);
        obs.fuzz.violations.add(run.violations.len() as u64);
        obs.fuzz.scenario_time.observe(scenario_started.elapsed());
    }
    let verdict = ScenarioVerdict {
        index: i,
        seed,
        phases: sc.num_phases(),
        events: run.trace.num_events(),
        violations: run.violations,
        regen_mismatch,
    };
    Ok((sc, verdict))
}

/// Run a whole campaign.
pub fn run_campaign(cfg: &FuzzConfig) -> Result<CampaignResult, Error> {
    let budget = cfg
        .opts
        .thread_budget
        .unwrap_or_else(pool::default_thread_budget);
    let jobs = pool::effective_jobs(
        cfg.jobs,
        pool::threads_per_config(cfg.opts.backend, cfg.gen.nprocs),
        budget,
    );
    let start = std::time::Instant::now();
    let runs = pool::run_indexed_with(jobs, cfg.count, cfg.opts.obs.clone(), |i| run_index(cfg, i));
    let wall_secs = start.elapsed().as_secs_f64();

    let mut verdicts = Vec::with_capacity(cfg.count);
    let mut failures = Vec::new();
    for run in runs {
        match run {
            Ok((sc, verdict)) => {
                if !verdict.passed() {
                    failures.push((sc, verdict.violations.clone()));
                }
                verdicts.push(verdict);
            }
            Err(e) => return Err(e),
        }
    }

    // Shrink + persist serially: failures are rare and each shrink run
    // already saturates the pool budget with its own rank threads.
    let mut minimized = Vec::new();
    for (sc, violations) in failures {
        if violations.is_empty() {
            // Pure regen mismatch: nothing to shrink, nothing to persist.
            continue;
        }
        let (min_sc, min_violations) = if cfg.shrink {
            let out = shrink::shrink(&sc, &violations, &cfg.oracle, &cfg.opts, 150);
            if let Some(obs) = &cfg.opts.obs {
                obs.fuzz.shrink_iterations.add(out.runs as u64);
            }
            (out.scenario, out.violations)
        } else {
            (sc, violations)
        };
        let store = cfg.cache.as_ref().filter(|c| c.mode.writes());
        let trace = if cfg.corpus_dir.is_some() || store.is_some() {
            Some(oracle::check(&min_sc, &cfg.oracle, &cfg.opts)?.trace)
        } else {
            None
        };
        let persisted = match (&cfg.corpus_dir, &trace) {
            (Some(dir), Some(trace)) => {
                Some(corpus::persist(dir, &min_sc, &min_violations, trace)?)
            }
            _ => None,
        };
        let stored = match (store, &trace) {
            (Some(cache), Some(trace)) => {
                corpus::persist_to_store(cache, &min_sc, &min_violations, trace)?;
                Some(corpus::store_key(&min_sc))
            }
            _ => None,
        };
        minimized.push(Minimized {
            scenario: min_sc,
            violations: min_violations,
            persisted,
            stored,
        });
    }

    let stats = FuzzStats {
        scenarios: verdicts.len(),
        phases_executed: verdicts.iter().map(|v| v.phases).sum(),
        events: verdicts.iter().map(|v| v.events).sum(),
        violations: verdicts.iter().map(|v| v.violations.len()).sum(),
        violating_scenarios: verdicts.iter().filter(|v| !v.violations.is_empty()).count(),
        regen_mismatches: verdicts.iter().filter(|v| v.regen_mismatch).count(),
        wall_secs,
        scenarios_per_sec: if wall_secs > 0.0 {
            verdicts.len() as f64 / wall_secs
        } else {
            0.0
        },
        jobs,
    };
    Ok(CampaignResult {
        verdicts,
        stats,
        minimized,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_seeds_are_order_independent() {
        // split(base, i) depends only on (base, i), not on drawing order.
        let a: Vec<u64> = (0..8).map(|i| scenario_seed(42, i)).collect();
        let b: Vec<u64> = (0..8).rev().map(|i| scenario_seed(42, i)).collect();
        let b_rev: Vec<u64> = b.into_iter().rev().collect();
        assert_eq!(a, b_rev);
        assert_eq!(a.len(), {
            let mut u = a.clone();
            u.sort_unstable();
            u.dedup();
            u.len()
        });
    }

    #[test]
    fn small_campaign_is_clean_and_counts_add_up() {
        let cfg = FuzzConfig {
            count: 6,
            jobs: 2,
            ..FuzzConfig::default()
        };
        let result = run_campaign(&cfg).unwrap();
        assert_eq!(result.verdicts.len(), 6);
        for v in &result.verdicts {
            assert!(v.passed(), "index {}: {:#?}", v.index, v.violations);
        }
        assert_eq!(result.stats.scenarios, 6);
        assert_eq!(result.stats.violations, 0);
        assert_eq!(result.stats.regen_mismatches, 0);
        assert!(result.stats.phases_executed >= 6);
        assert!(result.stats.events > 0);
        assert!(result.minimized.is_empty());
        // Verdicts come back in index order regardless of worker count.
        for (i, v) in result.verdicts.iter().enumerate() {
            assert_eq!(v.index, i);
        }
    }

    #[test]
    fn jobs_do_not_change_verdicts() {
        let mk = |jobs| FuzzConfig {
            count: 4,
            jobs,
            ..FuzzConfig::default()
        };
        let serial = run_campaign(&mk(1)).unwrap();
        let parallel = run_campaign(&mk(4)).unwrap();
        let render = |r: &CampaignResult| {
            r.verdicts
                .iter()
                .map(|v| serde_json::to_string(v).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&serial), render(&parallel));
    }
}
