//! The serializable composite-scenario specification.
//!
//! A [`Scenario`] describes one composite test program: an ordered list of
//! *slots*, each of which partitions `MPI_COMM_WORLD` with a [`Split`] and
//! places catalog property functions (positive cases and well-tuned
//! padding) on the resulting groups. All phases of one slot execute
//! concurrently on disjoint groups; slots are separated by a world
//! barrier, so every slot starts from aligned clocks.
//!
//! Scenarios have two interchangeable wire forms: JSON (one object per
//! line in JSONL corpora, rendered through the canonical
//! [`ats_core::json::Json`] model) and a compact single-line text form
//! (`Display` / `FromStr`) for log output and quick manual authoring.
//! [`Scenario::parse_line`] accepts either, so every spec-accepting
//! surface (CLI flags, corpus replay, the campaign service) understands
//! the same union. Both forms round-trip exactly, and serialization is
//! byte-stable: parameters live in a `BTreeMap` and the canonical model
//! sorts object keys, so the same scenario value always serializes to the
//! same bytes — the property the determinism gate in CI checks.

use ats_core::catalog::{self, Paradigm};
use ats_core::json::Json;
use ats_core::Error;
use ats_harness::ParamValues;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// How one slot partitions the world into groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Split {
    /// One group: the whole world (no `MPI_Comm_split` is issued).
    Whole,
    /// `groups` contiguous balanced blocks (group `g` covers global ranks
    /// `[g*n/G, (g+1)*n/G)`), like a row decomposition.
    Block {
        /// Number of groups.
        groups: usize,
    },
    /// Round-robin groups (`color = rank % groups`); `groups = 2` is the
    /// classic even/odd split of the paper's two-communicator composite.
    Stride {
        /// Number of groups.
        groups: usize,
    },
}

impl Split {
    /// Number of groups this split produces.
    pub fn num_groups(&self) -> usize {
        match self {
            Split::Whole => 1,
            Split::Block { groups } | Split::Stride { groups } => *groups,
        }
    }

    /// The group (color) of a global rank.
    pub fn color(&self, rank: usize, nprocs: usize) -> usize {
        match self {
            Split::Whole => 0,
            Split::Block { groups } => (0..*groups)
                .find(|&g| rank < (g + 1) * nprocs / groups)
                .expect("rank < nprocs"),
            Split::Stride { groups } => rank % groups,
        }
    }

    /// Size of group `g` under `nprocs` ranks.
    pub fn group_size(&self, g: usize, nprocs: usize) -> usize {
        match self {
            Split::Whole => nprocs,
            Split::Block { groups } => (g + 1) * nprocs / groups - g * nprocs / groups,
            Split::Stride { groups } => nprocs / groups + usize::from(g < nprocs % groups),
        }
    }
}

impl Split {
    /// Canonical JSON value, matching the serde JSONL layout (`"whole"`,
    /// `{"block":{"groups":n}}`, `{"stride":{"groups":n}}`).
    pub fn to_json_value(&self) -> Json {
        match self {
            Split::Whole => Json::from("whole"),
            Split::Block { groups } => {
                Json::obj().with("block", Json::obj().with("groups", *groups))
            }
            Split::Stride { groups } => {
                Json::obj().with("stride", Json::obj().with("groups", *groups))
            }
        }
    }

    /// Parse the canonical JSON layout back (string forms like `block2`
    /// are accepted too, via [`FromStr`]).
    pub fn from_json_value(v: &Json) -> Result<Split, Error> {
        if let Some(s) = v.as_str() {
            return s.parse();
        }
        let obj = v
            .as_obj()
            .ok_or_else(|| Error::scenario("split must be a string or a tagged object"))?;
        let groups = |tag: &str| {
            obj.get(tag)
                .and_then(|t| t.get("groups"))
                .and_then(Json::as_u64)
                .map(|g| g as usize)
                .ok_or_else(|| Error::scenario(format!("split `{tag}` needs integer `groups`")))
        };
        if obj.contains_key("block") {
            Ok(Split::Block {
                groups: groups("block")?,
            })
        } else if obj.contains_key("stride") {
            Ok(Split::Stride {
                groups: groups("stride")?,
            })
        } else {
            Err(Error::scenario("unknown split variant"))
        }
    }
}

impl fmt::Display for Split {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Split::Whole => write!(f, "whole"),
            Split::Block { groups } => write!(f, "block{groups}"),
            Split::Stride { groups } => write!(f, "stride{groups}"),
        }
    }
}

impl FromStr for Split {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "whole" {
            return Ok(Split::Whole);
        }
        let parse_groups = |rest: &str| {
            rest.parse::<usize>()
                .map_err(|_| Error::scenario(format!("bad group count in split `{s}`")))
        };
        if let Some(rest) = s.strip_prefix("block") {
            return Ok(Split::Block {
                groups: parse_groups(rest)?,
            });
        }
        if let Some(rest) = s.strip_prefix("stride") {
            return Ok(Split::Stride {
                groups: parse_groups(rest)?,
            });
        }
        Err(Error::scenario(format!("unknown split `{s}`")))
    }
}

/// One property-function invocation placed on one group of a slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Group (color) this phase runs on; `0` for [`Split::Whole`].
    pub group: usize,
    /// Catalog property-function name.
    pub property: String,
    /// Concrete parameter assignment in command-line value syntax
    /// (ordered map ⇒ byte-stable serialization).
    pub params: BTreeMap<String, String>,
}

impl Phase {
    /// Resolve the stored strings into typed [`ParamValues`] (defaults
    /// filled in for unset parameters).
    pub fn param_values(&self) -> Result<ParamValues, Error> {
        let spec =
            catalog::find(&self.property).ok_or_else(|| Error::unknown_property(&self.property))?;
        let args: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        ParamValues::from_args(spec, &refs)
            .map_err(|e| Error::invalid_param(format!("{}: {e}", self.property)))
    }

    /// True if this phase is a well-tuned padding phase (a catalog
    /// negative case, expected to stay finding-free).
    pub fn is_padding(&self) -> bool {
        catalog::find(&self.property).map(|s| s.paradigm) == Some(Paradigm::Negative)
    }
}

/// One slot: a world partition plus the phases running on its groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// How the world is partitioned for this slot.
    pub split: Split,
    /// Phases, at most one per group, on distinct groups.
    pub phases: Vec<Phase>,
}

/// A complete composite scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// The generator seed this scenario was derived from (kept for
    /// provenance; replaying does not re-generate).
    pub seed: u64,
    /// World size.
    pub nprocs: usize,
    /// Slots, executed in order with a world barrier between them.
    pub slots: Vec<Slot>,
}

/// The trace region wrapped around the phase with global index `idx`
/// (two-digit zero padding; slash-terminated matching in the oracle keeps
/// wider indices unambiguous too).
pub fn region_name(idx: usize) -> String {
    format!("fz{idx:02}")
}

/// Name of the region wrapping the inter-slot world barrier. Waits inside
/// it are expected by construction (groups finish at different times) and
/// are never counted as oracle violations.
pub const SYNC_REGION: &str = "fuzz_sync";

impl Scenario {
    /// All phases with their global index: `(global_idx, slot_idx, phase)`.
    pub fn indexed_phases(&self) -> Vec<(usize, usize, &Phase)> {
        let mut out = Vec::new();
        for (si, slot) in self.slots.iter().enumerate() {
            for ph in &slot.phases {
                out.push((out.len(), si, ph));
            }
        }
        out
    }

    /// Total number of phases.
    pub fn num_phases(&self) -> usize {
        self.slots.iter().map(|s| s.phases.len()).sum()
    }

    /// Structural validity: catalog names, group indices in range, at
    /// most one phase per group, parseable parameters, roots inside their
    /// group, and every group of at least two ranks (MPI properties need
    /// a partner). Returns the first problem found.
    pub fn validate(&self) -> Result<(), Error> {
        if self.nprocs == 0 {
            return Err(Error::scenario("nprocs must be positive"));
        }
        if self.slots.is_empty() {
            return Err(Error::scenario("scenario has no slots"));
        }
        for (si, slot) in self.slots.iter().enumerate() {
            let groups = slot.split.num_groups();
            if groups == 0 || groups > self.nprocs {
                return Err(Error::scenario(format!(
                    "slot {si}: {groups} groups over {} ranks",
                    self.nprocs
                )));
            }
            for g in 0..groups {
                if slot.split.group_size(g, self.nprocs) < 2 {
                    return Err(Error::scenario(format!(
                        "slot {si}: group {g} has fewer than 2 ranks"
                    )));
                }
            }
            let mut seen = Vec::new();
            for ph in &slot.phases {
                if ph.group >= groups {
                    return Err(Error::scenario(format!(
                        "slot {si}: phase on group {} of {groups}",
                        ph.group
                    )));
                }
                if seen.contains(&ph.group) {
                    return Err(Error::scenario(format!(
                        "slot {si}: two phases on group {}",
                        ph.group
                    )));
                }
                seen.push(ph.group);
                let v = ph
                    .param_values()
                    .map_err(|e| Error::scenario(format!("slot {si}: {e}")))?;
                if ph.params.contains_key("root") {
                    let sz = slot.split.group_size(ph.group, self.nprocs);
                    if v.count("root") >= sz {
                        return Err(Error::scenario(format!(
                            "slot {si}: {} root {} outside group of {sz}",
                            ph.property,
                            v.count("root")
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// The canonical JSON value of this scenario (the JSONL wire layout:
    /// sorted keys, byte-stable for equal scenarios).
    pub fn to_json_value(&self) -> Json {
        let mut slots = Json::arr();
        for slot in &self.slots {
            let mut phases = Json::arr();
            for ph in &slot.phases {
                let mut params = Json::obj();
                for (k, v) in &ph.params {
                    params.set(k, v.clone());
                }
                phases.push(
                    Json::obj()
                        .with("group", ph.group)
                        .with("params", params)
                        .with("property", ph.property.clone()),
                );
            }
            slots.push(
                Json::obj()
                    .with("phases", phases)
                    .with("split", slot.split.to_json_value()),
            );
        }
        Json::obj()
            .with("nprocs", self.nprocs)
            .with("seed", self.seed)
            .with("slots", slots)
    }

    /// Parse the canonical JSON layout back (field lookup by name, so any
    /// member order — including serde's — is accepted).
    pub fn from_json_value(v: &Json) -> Result<Scenario, Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| Error::scenario(format!("scenario missing `{name}`")))
        };
        let mut slots = Vec::new();
        for (si, sv) in field("slots")?
            .as_arr()
            .ok_or_else(|| Error::scenario("`slots` must be an array"))?
            .iter()
            .enumerate()
        {
            let split = Split::from_json_value(
                sv.get("split")
                    .ok_or_else(|| Error::scenario(format!("slot {si} missing `split`")))?,
            )?;
            let mut phases = Vec::new();
            for pv in sv
                .get("phases")
                .and_then(Json::as_arr)
                .ok_or_else(|| Error::scenario(format!("slot {si} missing `phases` array")))?
            {
                let property = pv
                    .get("property")
                    .and_then(Json::as_str)
                    .ok_or_else(|| Error::scenario(format!("slot {si}: phase without property")))?
                    .to_owned();
                let group = pv.get("group").and_then(Json::as_u64).ok_or_else(|| {
                    Error::scenario(format!("slot {si}: phase `{property}` without group"))
                })? as usize;
                let mut params = BTreeMap::new();
                if let Some(pobj) = pv.get("params").and_then(Json::as_obj) {
                    for (k, val) in pobj {
                        let s = val
                            .as_str()
                            .map(str::to_owned)
                            .unwrap_or_else(|| val.render());
                        params.insert(k.clone(), s);
                    }
                }
                phases.push(Phase {
                    group,
                    property,
                    params,
                });
            }
            slots.push(Slot { split, phases });
        }
        Ok(Scenario {
            seed: field("seed")?
                .as_u64()
                .ok_or_else(|| Error::scenario("`seed` must be an unsigned integer"))?,
            nprocs: field("nprocs")?
                .as_u64()
                .ok_or_else(|| Error::scenario("`nprocs` must be an unsigned integer"))?
                as usize,
            slots,
        })
    }

    /// Parse one spec line: a JSON object (the JSONL corpus form) or the
    /// compact text form — the union every spec-accepting surface (CLI,
    /// corpus replay, the campaign service) understands.
    pub fn parse_line(line: &str) -> Result<Scenario, Error> {
        let t = line.trim();
        if t.starts_with('{') {
            let v = Json::parse(t)
                .map_err(|e| Error::scenario(format!("invalid scenario JSON: {e}")))?;
            Scenario::from_json_value(&v)
        } else {
            t.parse()
        }
    }

    /// Serialize one scenario per line (JSONL, canonical rendering).
    pub fn to_jsonl(scenarios: &[Scenario]) -> String {
        let mut out = String::new();
        for s in scenarios {
            out.push_str(&s.to_json_value().render());
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL corpus (blank lines skipped).
    pub fn from_jsonl(text: &str) -> Result<Vec<Scenario>, Error> {
        text.lines()
            .enumerate()
            .filter(|(_, l)| !l.trim().is_empty())
            .map(|(i, l)| {
                Scenario::parse_line(l).map_err(|e| Error::scenario(format!("line {}: {e}", i + 1)))
            })
            .collect()
    }
}

impl fmt::Display for Scenario {
    /// Compact one-line text form:
    /// `seed=0x… nprocs=8 | stride2 g0:late_sender basework=0.01 r=2 + g1:balanced_mpi_barrier work=0.01 | whole g0:…`
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={:#x} nprocs={}", self.seed, self.nprocs)?;
        for slot in &self.slots {
            write!(f, " | {}", slot.split)?;
            for (j, ph) in slot.phases.iter().enumerate() {
                if j > 0 {
                    write!(f, " +")?;
                }
                write!(f, " g{}:{}", ph.group, ph.property)?;
                for (k, v) in &ph.params {
                    write!(f, " {k}={v}")?;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for Scenario {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut sections = s.split('|').map(str::trim);
        let head = sections
            .next()
            .ok_or_else(|| Error::scenario("empty scenario"))?;
        let mut seed = None;
        let mut nprocs = None;
        for tok in head.split_whitespace() {
            if let Some(v) = tok.strip_prefix("seed=") {
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                seed = Some(parsed.map_err(|_| Error::scenario(format!("bad seed `{v}`")))?);
            } else if let Some(v) = tok.strip_prefix("nprocs=") {
                nprocs = Some(
                    v.parse()
                        .map_err(|_| Error::scenario(format!("bad nprocs `{v}`")))?,
                );
            } else {
                return Err(Error::scenario(format!(
                    "unexpected token `{tok}` in scenario header"
                )));
            }
        }
        let mut slots = Vec::new();
        for section in sections {
            let mut chunks = section.split('+').map(str::trim);
            let first = chunks.next().ok_or_else(|| Error::scenario("empty slot"))?;
            let mut toks = first.split_whitespace();
            let split: Split = toks
                .next()
                .ok_or_else(|| Error::scenario("slot without split"))?
                .parse()?;
            let mut phases = Vec::new();
            let first_phase: Vec<&str> = toks.collect();
            let phase_chunks =
                std::iter::once(first_phase).chain(chunks.map(|c| c.split_whitespace().collect()));
            for chunk in phase_chunks {
                if chunk.is_empty() {
                    continue;
                }
                let header = chunk[0];
                let (g, prop) = header
                    .strip_prefix('g')
                    .and_then(|h| h.split_once(':'))
                    .ok_or_else(|| Error::scenario(format!("bad phase header `{header}`")))?;
                let group = g
                    .parse()
                    .map_err(|_| Error::scenario(format!("bad group in `{header}`")))?;
                let mut params = BTreeMap::new();
                for kv in &chunk[1..] {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| Error::scenario(format!("bad parameter `{kv}`")))?;
                    params.insert(k.to_owned(), v.to_owned());
                }
                phases.push(Phase {
                    group,
                    property: prop.to_owned(),
                    params,
                });
            }
            slots.push(Slot { split, phases });
        }
        Ok(Scenario {
            seed: seed.ok_or_else(|| Error::scenario("missing seed="))?,
            nprocs: nprocs.ok_or_else(|| Error::scenario("missing nprocs="))?,
            slots,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(group: usize, property: &str, params: &[(&str, &str)]) -> Phase {
        Phase {
            group,
            property: property.to_owned(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        }
    }

    fn sample() -> Scenario {
        Scenario {
            seed: 0xDEAD_BEEF,
            nprocs: 8,
            slots: vec![
                Slot {
                    split: Split::Stride { groups: 2 },
                    phases: vec![
                        phase(
                            0,
                            "late_sender",
                            &[("basework", "0.005"), ("extrawork", "0.03"), ("r", "2")],
                        ),
                        phase(1, "balanced_mpi_barrier", &[("work", "0.01"), ("r", "1")]),
                    ],
                },
                Slot {
                    split: Split::Whole,
                    phases: vec![phase(
                        0,
                        "imbalance_at_mpi_barrier",
                        &[("df", "block2:low=0.005,high=0.03"), ("r", "2")],
                    )],
                },
            ],
        }
    }

    #[test]
    fn split_covers_all_ranks_exactly_once() {
        for split in [
            Split::Whole,
            Split::Block { groups: 3 },
            Split::Stride { groups: 3 },
            Split::Block { groups: 2 },
            Split::Stride { groups: 4 },
        ] {
            for nprocs in [4, 7, 8, 9, 16] {
                if split.num_groups() > nprocs {
                    continue;
                }
                let mut sizes = vec![0usize; split.num_groups()];
                for rank in 0..nprocs {
                    sizes[split.color(rank, nprocs)] += 1;
                }
                for (g, &count) in sizes.iter().enumerate() {
                    assert_eq!(
                        count,
                        split.group_size(g, nprocs),
                        "{split} g{g} over {nprocs}"
                    );
                }
                assert_eq!(sizes.iter().sum::<usize>(), nprocs);
            }
        }
    }

    #[test]
    fn block_split_is_contiguous() {
        let split = Split::Block { groups: 3 };
        let colors: Vec<usize> = (0..8).map(|r| split.color(r, 8)).collect();
        assert!(colors.windows(2).all(|w| w[0] <= w[1]), "{colors:?}");
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let s = sample();
        let a = s.to_json_value().render();
        let back = Scenario::from_json_value(&Json::parse(&a).unwrap()).unwrap();
        assert_eq!(back, s);
        let b = back.to_json_value().render();
        assert_eq!(a, b, "serialization must be byte-stable");
    }

    #[test]
    fn parse_line_accepts_both_wire_forms() {
        let s = sample();
        let from_json = Scenario::parse_line(&s.to_json_value().render()).unwrap();
        assert_eq!(from_json, s);
        let from_text = Scenario::parse_line(&s.to_string()).unwrap();
        assert_eq!(from_text, s);
        let err = Scenario::parse_line("{not json").unwrap_err();
        assert_eq!(err.kind(), ats_core::ErrorKind::Scenario);
    }

    #[test]
    fn text_form_round_trips() {
        let s = sample();
        let text = s.to_string();
        assert!(text.starts_with("seed=0xdeadbeef nprocs=8 | stride2 g0:late_sender"));
        let back: Scenario = text.parse().unwrap_or_else(|e| panic!("{e}: {text}"));
        assert_eq!(back, s);
    }

    #[test]
    fn jsonl_round_trips() {
        let scenarios = vec![sample(), sample()];
        let text = Scenario::to_jsonl(&scenarios);
        assert_eq!(text.lines().count(), 2);
        let back = Scenario::from_jsonl(&text).unwrap();
        assert_eq!(back, scenarios);
    }

    #[test]
    fn validate_accepts_the_sample_and_rejects_breakage() {
        assert_eq!(sample().validate(), Ok(()));

        let mut bad = sample();
        bad.slots[0].phases[0].property = "flux_capacitor".into();
        assert!(bad.validate().is_err());

        let mut bad = sample();
        bad.slots[0].phases[1].group = 7;
        assert!(bad.validate().is_err());

        let mut bad = sample();
        bad.slots[0].phases[1].group = 0; // duplicate group
        assert!(bad.validate().is_err());

        let mut bad = sample();
        bad.nprocs = 3; // stride2 over 3 ranks -> a singleton group
        assert!(bad.validate().is_err());

        let mut bad = sample();
        bad.slots[1].phases[0] = phase(0, "late_broadcast", &[("root", "9")]);
        assert!(bad.validate().is_err(), "root outside the group");
    }

    #[test]
    fn padding_detection_follows_the_catalog() {
        assert!(phase(0, "balanced_mpi_barrier", &[]).is_padding());
        assert!(!phase(0, "late_sender", &[]).is_padding());
    }

    #[test]
    fn region_names_are_two_digit_padded() {
        assert_eq!(region_name(0), "fz00");
        assert_eq!(region_name(7), "fz07");
        assert_eq!(region_name(42), "fz42");
    }
}
