//! Atomic file writes: temp file + rename, in the destination directory.
//!
//! Every artifact the store (and the fuzz corpus) persists goes through
//! [`write_atomic`]: bytes land in a uniquely-named `.tmp` sibling first
//! and are renamed into place only once fully written, so a reader can
//! never observe a truncated file and an interrupted campaign leaves at
//! worst an orphaned temp file, never a corrupt artifact. The temp file
//! lives in the *destination* directory because `rename(2)` is only
//! atomic within one filesystem.

use crate::json::Json;
use ats_core::Error;
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide temp-name disambiguator: concurrent writers targeting the
/// same destination must not collide on the temp path.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn store_err(path: &Path, action: &str, e: std::io::Error) -> Error {
    Error::store(format!("{action} {}: {e}", path.display()))
}

/// Atomically replace `dest` with `bytes`. Parent directories are created
/// as needed. On any failure the temp file is removed and `dest` is left
/// untouched (either the old content or absent).
pub fn write_atomic(dest: &Path, bytes: &[u8]) -> Result<(), Error> {
    let parent = dest.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(parent) = parent {
        fs::create_dir_all(parent).map_err(|e| store_err(parent, "create", e))?;
    }
    let file_name = dest
        .file_name()
        .ok_or_else(|| Error::store(format!("{}: not a file path", dest.display())))?;
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp_name = format!(
        ".{}.{}.{seq}.tmp",
        file_name.to_string_lossy(),
        std::process::id()
    );
    let tmp = dest.with_file_name(tmp_name);
    let finish = fs::write(&tmp, bytes)
        .map_err(|e| store_err(&tmp, "write", e))
        .and_then(|()| fs::rename(&tmp, dest).map_err(|e| store_err(dest, "rename into", e)));
    if finish.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    finish
}

/// Atomically write a [`Json`] document, pretty-rendered.
pub fn write_atomic_json(dest: &Path, doc: &Json) -> Result<(), Error> {
    write_atomic(dest, doc.render_pretty().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ats-store-atomic-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces_without_leftover_temp_files() {
        let dir = tmp_dir("basic");
        let dest = dir.join("nested/artifact.json");
        write_atomic(&dest, b"v1").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"v1");
        write_atomic(&dest, b"v2-longer").unwrap();
        assert_eq!(fs::read(&dest).unwrap(), b"v2-longer");
        let names: Vec<_> = fs::read_dir(dest.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(names.len(), 1, "temp files left behind: {names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_to_one_dest_never_corrupt() {
        let dir = tmp_dir("race");
        let dest = dir.join("contended.bin");
        write_atomic(&dest, &[0u8; 64]).unwrap();
        std::thread::scope(|s| {
            for b in 1..=4u8 {
                let dest = dest.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        write_atomic(&dest, &[b; 64]).unwrap();
                    }
                });
            }
        });
        // Whatever won, the file is one writer's intact 64 bytes.
        let got = fs::read(&dest).unwrap();
        assert_eq!(got.len(), 64);
        assert!(got.iter().all(|&x| x == got[0]), "torn write: {got:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_helper_round_trips() {
        let dir = tmp_dir("json");
        let dest = dir.join("doc.json");
        write_atomic_json(&dest, &Json::obj().with("n", 3u64)).unwrap();
        let text = String::from_utf8(fs::read(&dest).unwrap()).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        let _ = fs::remove_dir_all(&dir);
    }
}
