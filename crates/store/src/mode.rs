//! Cache modes: how a campaign is allowed to touch the store.

use std::fmt;
use std::str::FromStr;

/// What a caching-aware engine may do with the store. The command-line
/// spelling (`--cache {off,ro,rw}`) parses into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Never touch the store: every configuration executes.
    #[default]
    Off,
    /// Replay hits, execute misses, never write (`ro`): safe against a
    /// read-only artifact volume, and the mode CI uses to prove a store
    /// is complete.
    Read,
    /// Replay hits, execute misses, persist what was executed (`rw`).
    ReadWrite,
}

impl CacheMode {
    /// May the engine consult the store before executing?
    pub fn reads(self) -> bool {
        self != CacheMode::Off
    }

    /// May the engine persist freshly-executed results?
    pub fn writes(self) -> bool {
        self == CacheMode::ReadWrite
    }

    /// The stable command-line spelling.
    pub fn label(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::Read => "ro",
            CacheMode::ReadWrite => "rw",
        }
    }
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CacheMode {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CacheMode::Off),
            "ro" => Ok(CacheMode::Read),
            "rw" => Ok(CacheMode::ReadWrite),
            other => Err(format!(
                "unknown cache mode `{other}` (expected off, ro or rw)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_round_trips() {
        for mode in [CacheMode::Off, CacheMode::Read, CacheMode::ReadWrite] {
            assert_eq!(mode.label().parse::<CacheMode>().unwrap(), mode);
        }
        assert!("on".parse::<CacheMode>().is_err());
    }

    #[test]
    fn permissions_follow_the_mode() {
        assert!(!CacheMode::Off.reads() && !CacheMode::Off.writes());
        assert!(CacheMode::Read.reads() && !CacheMode::Read.writes());
        assert!(CacheMode::ReadWrite.reads() && CacheMode::ReadWrite.writes());
    }
}
