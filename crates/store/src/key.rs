//! Content-addressed cache keys.
//!
//! A [`CacheKey`] is the 128-bit identity of one unit of cacheable work:
//! the stable hash of a *canonical* JSON document enumerating everything
//! that determines the result bytes — scenario spec or property + full
//! parameter assignment, analyzer configuration and version, machine
//! model, rank-execution backend, trace format. Anything that only
//! changes *how* a result is computed (worker count, thread budget,
//! buffer pooling, observability) must stay out of the document: two runs
//! that provably produce the same bytes must map to the same key, or the
//! cache never hits.
//!
//! Canonicalization rides on [`Json::render`]: object members render in
//! sorted key order with exact integers and shortest-round-trip floats,
//! so two documents with the same content always produce the same bytes,
//! regardless of insertion order or platform.

use crate::hash::xxh64;
use crate::json::Json;
use std::fmt;

/// Seed for the second key lane (the golden-ratio constant); lane one
/// uses seed 0. Two independently-seeded XXH64 lanes give 128 bits.
const LANE2_SEED: u64 = 0x9E3779B97F4A7C15;

/// The 128-bit content address of one cacheable result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Key of raw bytes (already-canonical content).
    pub fn of_bytes(data: &[u8]) -> CacheKey {
        CacheKey {
            hi: xxh64(data, 0),
            lo: xxh64(data, LANE2_SEED),
        }
    }

    /// Key of a JSON ingredients document, hashed over its canonical
    /// rendering.
    pub fn of_value(value: &Json) -> CacheKey {
        CacheKey::of_bytes(value.render().as_bytes())
    }

    /// The 32-character lowercase hex spelling (directory name in the
    /// store's object tree).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse the [`CacheKey::hex`] spelling back.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(CacheKey { hi, lo })
    }

    /// The two-character shard prefix (first hex byte): object
    /// directories are fanned out under `objects/<shard>/` so no single
    /// directory accumulates every entry.
    pub fn shard(&self) -> String {
        self.hex()[..2].to_owned()
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trips() {
        let k = CacheKey::of_bytes(b"some ingredients");
        assert_eq!(k.hex().len(), 32);
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(k.shard(), &k.hex()[..2]);
        assert!(CacheKey::from_hex("xyz").is_none());
        assert!(CacheKey::from_hex(&"0".repeat(31)).is_none());
    }

    #[test]
    fn value_keys_are_insertion_order_independent() {
        // Same content, different construction order: one key.
        let a = Json::obj().with("alpha", 1u64).with("beta", "x");
        let b = Json::obj().with("beta", "x").with("alpha", 1u64);
        assert_eq!(CacheKey::of_value(&a), CacheKey::of_value(&b));
    }

    #[test]
    fn any_field_change_changes_the_key() {
        let base = Json::obj()
            .with("property", "late_sender")
            .with("nprocs", 8u64)
            .with("threshold", 0.005f64);
        let k = CacheKey::of_value(&base);
        for variant in [
            base.clone().with("property", "late_receiver"),
            base.clone().with("nprocs", 4u64),
            base.clone().with("threshold", 0.01f64),
            Json::obj().with("property", "late_sender").with("nprocs", 8u64),
        ] {
            assert_ne!(k, CacheKey::of_value(&variant), "{}", variant.render());
        }
    }

    #[test]
    fn display_matches_hex() {
        let k = CacheKey::of_bytes(b"k");
        assert_eq!(k.to_string(), k.hex());
    }
}
