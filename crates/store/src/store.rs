//! The on-disk content-addressed store.
//!
//! Layout under the store root (by convention `artifacts/store/`):
//!
//! ```text
//! <root>/
//!   index.json                      # acceleration + stats (rebuildable)
//!   objects/<kk>/<key-hex>/         # kk = first hex byte of the key
//!     report.json  trace.atsb  …    # the entry's artifacts
//!     entry.json                    # manifest: ingredients + checksums
//! ```
//!
//! Commit protocol: artifacts are written first (each atomically, temp +
//! rename), `entry.json` last. An entry *exists* iff its `entry.json`
//! does, so a reader can never observe a half-written entry: either the
//! manifest is absent (miss) or it names only fully-renamed files.
//!
//! Integrity: `entry.json` records the size and 128-bit checksum of every
//! artifact; [`Store::get`] re-hashes what it reads and treats any
//! mismatch as a miss (counted in the observability registry), never as
//! silently-trusted data. The index is an acceleration structure only —
//! lookups go straight to the object tree, so a stale or deleted
//! `index.json` can cost statistics but never correctness.

use crate::atomic::{write_atomic, write_atomic_json};
use crate::json::Json;
use crate::key::CacheKey;
use ats_core::Error;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Schema tag of `entry.json` documents.
const ENTRY_SCHEMA: &str = "ats-store-entry/1";
/// Schema tag of `index.json`.
const INDEX_SCHEMA: &str = "ats-store-index/1";

/// Size and checksum of one stored artifact, as recorded in `entry.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Artifact size in bytes.
    pub bytes: u64,
    /// 128-bit content checksum ([`CacheKey::of_bytes`] of the artifact).
    pub checksum: String,
}

/// The per-entry manifest (`entry.json`): what the entry caches and how
/// to verify it.
#[derive(Debug, Clone)]
pub struct EntryDoc {
    /// The entry's cache key (hex).
    pub key: String,
    /// The full key-ingredients document the key was derived from, kept
    /// verbatim so an entry is self-describing (and collisions, however
    /// unlikely, are detectable).
    pub ingredients: Json,
    /// Artifact name → size + checksum.
    pub files: BTreeMap<String, FileMeta>,
}

impl EntryDoc {
    fn to_json(&self) -> Json {
        let mut files = Json::obj();
        for (name, meta) in &self.files {
            files.set(
                name,
                Json::obj()
                    .with("bytes", meta.bytes)
                    .with("checksum", meta.checksum.as_str()),
            );
        }
        Json::obj()
            .with("schema", ENTRY_SCHEMA)
            .with("key", self.key.as_str())
            .with("ingredients", self.ingredients.clone())
            .with("files", files)
    }

    fn from_text(text: &str) -> Result<EntryDoc, String> {
        let doc = Json::parse(text)?;
        if doc.get("schema").and_then(Json::as_str) != Some(ENTRY_SCHEMA) {
            return Err("unrecognized entry schema".into());
        }
        let key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or("missing key")?
            .to_owned();
        let ingredients = doc.get("ingredients").cloned().unwrap_or(Json::Null);
        let mut files = BTreeMap::new();
        for (name, meta) in doc.get("files").and_then(Json::as_obj).ok_or("missing files")? {
            files.insert(
                name.clone(),
                FileMeta {
                    bytes: meta.get("bytes").and_then(Json::as_u64).ok_or("missing bytes")?,
                    checksum: meta
                        .get("checksum")
                        .and_then(Json::as_str)
                        .ok_or("missing checksum")?
                        .to_owned(),
                },
            );
        }
        Ok(EntryDoc {
            key,
            ingredients,
            files,
        })
    }
}

/// One verified, fully-loaded store entry.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// The entry's key.
    pub key: CacheKey,
    /// The ingredients document recorded at put time.
    pub ingredients: Json,
    /// Artifact name → verified content.
    pub files: BTreeMap<String, Vec<u8>>,
    /// Total artifact bytes loaded.
    pub bytes: u64,
}

impl StoredEntry {
    /// The named artifact's bytes, if present.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }
}

/// Aggregate store statistics (from the index).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of committed entries.
    pub entries: usize,
    /// Total artifact bytes across all entries.
    pub bytes: u64,
}

#[derive(Debug, Clone)]
struct IndexEntry {
    bytes: u64,
    files: Vec<String>,
}

#[derive(Debug, Clone, Default)]
struct Index {
    entries: BTreeMap<String, IndexEntry>,
}

impl Index {
    fn to_json(&self) -> Json {
        let mut entries = Json::obj();
        for (key, e) in &self.entries {
            entries.set(
                key,
                Json::obj()
                    .with("bytes", e.bytes)
                    .with("files", e.files.iter().map(|f| Json::from(f.as_str())).collect::<Vec<_>>()),
            );
        }
        Json::obj()
            .with("schema", INDEX_SCHEMA)
            .with("entries", entries)
    }

    fn from_text(text: &str) -> Result<Index, String> {
        let doc = Json::parse(text)?;
        if doc.get("schema").and_then(Json::as_str) != Some(INDEX_SCHEMA) {
            return Err("unrecognized index schema".into());
        }
        let mut index = Index::default();
        for (key, e) in doc.get("entries").and_then(Json::as_obj).ok_or("missing entries")? {
            let files = e
                .get("files")
                .and_then(Json::as_arr)
                .ok_or("missing files")?
                .iter()
                .filter_map(|f| f.as_str().map(str::to_owned))
                .collect();
            index.entries.insert(
                key.clone(),
                IndexEntry {
                    bytes: e.get("bytes").and_then(Json::as_u64).ok_or("missing bytes")?,
                    files,
                },
            );
        }
        Ok(index)
    }
}

#[derive(Debug)]
struct Inner {
    root: PathBuf,
    index: Mutex<Index>,
}

/// A handle to one on-disk store. Cloning shares the same root and
/// in-process index; all methods are safe to call from pool workers
/// concurrently.
#[derive(Debug, Clone)]
pub struct Store {
    inner: Arc<Inner>,
    obs: Option<ats_obs::Handle>,
}

impl Store {
    /// Open (creating if needed) the store rooted at `root`. An existing
    /// `index.json` is loaded; if it is missing or unreadable but
    /// committed objects exist (say, after a crash between commit and
    /// index update), the index is rebuilt by scanning the object tree.
    pub fn open(root: impl AsRef<Path>) -> Result<Store, Error> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(root.join("objects"))
            .map_err(|e| Error::store(format!("create {}: {e}", root.display())))?;
        let index_path = root.join("index.json");
        let index = match fs::read_to_string(&index_path) {
            Ok(text) => match Index::from_text(&text) {
                Ok(index) => index,
                // A torn or stale index is repairable, not fatal.
                Err(_) => rebuild_index(&root)?,
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => rebuild_index(&root)?,
            Err(e) => return Err(Error::store(format!("read {}: {e}", index_path.display()))),
        };
        Ok(Store {
            inner: Arc::new(Inner {
                root,
                index: Mutex::new(index),
            }),
            obs: None,
        })
    }

    /// This store, recording hit/miss/byte counters into `obs` (`None`
    /// detaches). The underlying root and index stay shared.
    pub fn with_obs(mut self, obs: Option<ats_obs::Handle>) -> Store {
        self.obs = obs;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.inner.root
    }

    fn entry_dir(&self, key: &CacheKey) -> PathBuf {
        self.inner
            .root
            .join("objects")
            .join(key.shard())
            .join(key.hex())
    }

    /// Is an entry committed under `key`? (Manifest presence only — no
    /// integrity verification; use [`Store::get`] before trusting it.)
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entry_dir(key).join("entry.json").is_file()
    }

    /// Load and verify the entry under `key`. `Ok(None)` means *miss*:
    /// absent, or present but failing size/checksum verification (the
    /// latter is counted as an integrity failure in the observability
    /// registry — a caching engine re-executes and, in `rw` mode,
    /// overwrites the damaged entry).
    pub fn get(&self, key: &CacheKey) -> Result<Option<StoredEntry>, Error> {
        let dir = self.entry_dir(key);
        let doc_text = match fs::read_to_string(dir.join("entry.json")) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                if let Some(obs) = &self.obs {
                    obs.store.misses.inc();
                }
                return Ok(None);
            }
            Err(e) => return Err(Error::store(format!("read {}: {e}", dir.display()))),
        };
        let doc = match EntryDoc::from_text(&doc_text) {
            Ok(d) => d,
            Err(_) => return Ok(self.integrity_failure()),
        };
        if doc.key != key.hex() {
            return Ok(self.integrity_failure());
        }
        let mut files = BTreeMap::new();
        let mut bytes = 0u64;
        for (name, meta) in &doc.files {
            let content = match fs::read(dir.join(name)) {
                Ok(c) => c,
                Err(_) => return Ok(self.integrity_failure()),
            };
            if content.len() as u64 != meta.bytes
                || CacheKey::of_bytes(&content).hex() != meta.checksum
            {
                return Ok(self.integrity_failure());
            }
            bytes += content.len() as u64;
            files.insert(name.clone(), content);
        }
        if let Some(obs) = &self.obs {
            obs.store.hits.inc();
            obs.store.bytes_read.add(bytes);
        }
        Ok(Some(StoredEntry {
            key: *key,
            ingredients: doc.ingredients,
            files,
            bytes,
        }))
    }

    fn integrity_failure(&self) -> Option<StoredEntry> {
        if let Some(obs) = &self.obs {
            obs.store.integrity_failures.inc();
            obs.store.misses.inc();
        }
        None
    }

    /// Commit `files` under `key`. Artifacts are written atomically, the
    /// `entry.json` manifest last (the commit point), then the index is
    /// updated. Re-putting an existing key replaces it. Returns total
    /// artifact bytes written.
    pub fn put(
        &self,
        key: &CacheKey,
        ingredients: &Json,
        files: &[(&str, &[u8])],
    ) -> Result<u64, Error> {
        let dir = self.entry_dir(key);
        let mut metas = BTreeMap::new();
        let mut total = 0u64;
        for (name, content) in files {
            if name.is_empty() || name.contains(['/', '\\']) || *name == "entry.json" {
                return Err(Error::store(format!("invalid artifact name `{name}`")));
            }
            write_atomic(&dir.join(name), content)?;
            metas.insert(
                (*name).to_owned(),
                FileMeta {
                    bytes: content.len() as u64,
                    checksum: CacheKey::of_bytes(content).hex(),
                },
            );
            total += content.len() as u64;
        }
        let doc = EntryDoc {
            key: key.hex(),
            ingredients: ingredients.clone(),
            files: metas,
        };
        write_atomic_json(&dir.join("entry.json"), &doc.to_json())?;
        {
            let mut index = self.inner.index.lock().expect("index lock");
            index.entries.insert(
                key.hex(),
                IndexEntry {
                    bytes: total,
                    files: doc.files.keys().cloned().collect(),
                },
            );
            write_atomic_json(&self.inner.root.join("index.json"), &index.to_json())?;
        }
        if let Some(obs) = &self.obs {
            obs.store.puts.inc();
            obs.store.bytes_written.add(total);
        }
        Ok(total)
    }

    /// Remove the entry under `key` (from disk and index). Returns
    /// whether anything was removed.
    pub fn remove(&self, key: &CacheKey) -> Result<bool, Error> {
        let dir = self.entry_dir(key);
        let existed = dir.is_dir();
        if existed {
            fs::remove_dir_all(&dir)
                .map_err(|e| Error::store(format!("remove {}: {e}", dir.display())))?;
        }
        let mut index = self.inner.index.lock().expect("index lock");
        if index.entries.remove(&key.hex()).is_some() || existed {
            write_atomic_json(&self.inner.root.join("index.json"), &index.to_json())?;
        }
        Ok(existed)
    }

    /// Committed entry count (from the index).
    pub fn len(&self) -> usize {
        self.inner.index.lock().expect("index lock").entries.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All committed keys, sorted (from the index).
    pub fn keys(&self) -> Vec<CacheKey> {
        self.inner
            .index
            .lock()
            .expect("index lock")
            .entries
            .keys()
            .filter_map(|k| CacheKey::from_hex(k))
            .collect()
    }

    /// Aggregate statistics (from the index).
    pub fn stats(&self) -> StoreStats {
        let index = self.inner.index.lock().expect("index lock");
        StoreStats {
            entries: index.entries.len(),
            bytes: index.entries.values().map(|e| e.bytes).sum(),
        }
    }

    /// Re-scan the object tree and rewrite the index from what is
    /// actually committed — the repair path for a crashed writer or an
    /// externally-modified store.
    pub fn rebuild_index(&self) -> Result<StoreStats, Error> {
        let rebuilt = rebuild_index(&self.inner.root)?;
        let stats = StoreStats {
            entries: rebuilt.entries.len(),
            bytes: rebuilt.entries.values().map(|e| e.bytes).sum(),
        };
        let mut index = self.inner.index.lock().expect("index lock");
        *index = rebuilt;
        write_atomic_json(&self.inner.root.join("index.json"), &index.to_json())?;
        Ok(stats)
    }
}

/// Scan `objects/` for committed entries (those with a parseable
/// `entry.json`) and build a fresh index.
fn rebuild_index(root: &Path) -> Result<Index, Error> {
    let mut index = Index::default();
    let objects = root.join("objects");
    let shards = match fs::read_dir(&objects) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(index),
        Err(e) => return Err(Error::store(format!("read {}: {e}", objects.display()))),
    };
    for shard in shards.filter_map(|e| e.ok()) {
        let Ok(entries) = fs::read_dir(shard.path()) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            let Ok(text) = fs::read_to_string(entry.path().join("entry.json")) else {
                continue;
            };
            let Ok(doc) = EntryDoc::from_text(&text) else {
                continue;
            };
            index.entries.insert(
                doc.key.clone(),
                IndexEntry {
                    bytes: doc.files.values().map(|m| m.bytes).sum(),
                    files: doc.files.keys().cloned().collect(),
                },
            );
        }
    }
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir().join(format!("ats-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn ingredients(n: u64) -> Json {
        Json::obj().with("schema", "test").with("n", n)
    }

    #[test]
    fn put_get_round_trip_with_integrity() {
        let (dir, store) = tmp_store("roundtrip");
        let key = CacheKey::of_value(&ingredients(1));
        assert!(store.get(&key).unwrap().is_none());
        assert!(!store.contains(&key));

        let written = store
            .put(
                &key,
                &ingredients(1),
                &[("report.json", b"{}".as_slice()), ("trace.atsb", b"ATSB\x01")],
            )
            .unwrap();
        assert_eq!(written, 2 + 5);
        assert!(store.contains(&key));

        let entry = store.get(&key).unwrap().expect("hit");
        assert_eq!(entry.file("report.json"), Some(b"{}".as_slice()));
        assert_eq!(entry.file("trace.atsb"), Some(b"ATSB\x01".as_slice()));
        assert_eq!(entry.bytes, 7);
        assert_eq!(entry.ingredients, ingredients(1));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats(), StoreStats { entries: 1, bytes: 7 });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_artifacts_are_misses_not_data() {
        let (dir, store) = tmp_store("corrupt");
        let obs = ats_obs::Handle::new();
        let store = store.with_obs(Some(obs.clone()));
        let key = CacheKey::of_value(&ingredients(2));
        store
            .put(&key, &ingredients(2), &[("report.json", b"payload")])
            .unwrap();
        // Flip a byte on disk.
        let path = dir
            .join("objects")
            .join(key.shard())
            .join(key.hex())
            .join("report.json");
        fs::write(&path, b"pAyload").unwrap();
        assert!(store.get(&key).unwrap().is_none(), "corruption must miss");
        assert_eq!(obs.store.integrity_failures.get(), 1);
        // Truncation misses too.
        fs::write(&path, b"pay").unwrap();
        assert!(store.get(&key).unwrap().is_none());
        assert_eq!(obs.store.integrity_failures.get(), 2);
        // A fresh put repairs the entry.
        store
            .put(&key, &ingredients(2), &[("report.json", b"payload")])
            .unwrap();
        assert!(store.get(&key).unwrap().is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_and_rebuilding_preserve_entries() {
        let (dir, store) = tmp_store("reopen");
        let keys: Vec<CacheKey> = (0..4)
            .map(|n| {
                let key = CacheKey::of_value(&ingredients(n));
                store
                    .put(&key, &ingredients(n), &[("row.json", format!("{n}").as_bytes())])
                    .unwrap();
                key
            })
            .collect();
        drop(store);

        // Reopen with the index present.
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.len(), 4);
        // Delete the index: open() rebuilds from the object tree.
        fs::remove_file(dir.join("index.json")).unwrap();
        let rebuilt = Store::open(&dir).unwrap();
        assert_eq!(rebuilt.len(), 4);
        let mut expected: Vec<CacheKey> = keys.clone();
        expected.sort();
        assert_eq!(rebuilt.keys(), expected);
        for key in &keys {
            assert!(rebuilt.get(key).unwrap().is_some());
        }
        // A torn index is repaired on open, not fatal.
        fs::write(dir.join("index.json"), b"{\"schema\": \"ats-st").unwrap();
        assert_eq!(Store::open(&dir).unwrap().len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_entry_and_index_row() {
        let (dir, store) = tmp_store("remove");
        let key = CacheKey::of_value(&ingredients(9));
        store
            .put(&key, &ingredients(9), &[("row.json", b"x")])
            .unwrap();
        assert!(store.remove(&key).unwrap());
        assert!(!store.contains(&key));
        assert!(store.get(&key).unwrap().is_none());
        assert_eq!(store.len(), 0);
        assert!(!store.remove(&key).unwrap());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_artifact_names_are_rejected() {
        let (dir, store) = tmp_store("names");
        let key = CacheKey::of_bytes(b"k");
        for bad in ["", "a/b", "entry.json", "..\\x"] {
            assert!(
                store.put(&key, &ingredients(0), &[(bad, b"x")]).is_err(),
                "{bad:?} accepted"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_puts_and_gets_stay_consistent() {
        let (dir, store) = tmp_store("parallel");
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    for n in 0..10u64 {
                        let ing = Json::obj().with("t", t).with("n", n);
                        let key = CacheKey::of_value(&ing);
                        let body = format!("{t}:{n}");
                        store.put(&key, &ing, &[("row.json", body.as_bytes())]).unwrap();
                        let got = store.get(&key).unwrap().expect("own put visible");
                        assert_eq!(got.file("row.json"), Some(body.as_bytes()));
                    }
                });
            }
        });
        assert_eq!(store.len(), 40);
        let _ = fs::remove_dir_all(&dir);
    }
}
