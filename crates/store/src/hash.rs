//! Stable, seedable 64-bit hashing (the XXH64 algorithm).
//!
//! Cache keys must be reproducible across processes, platforms and
//! compiler releases — `std::hash::DefaultHasher` explicitly is not — so
//! the store carries its own implementation of XXH64, a public,
//! frozen-by-specification algorithm. Two lanes with different seeds give
//! the store a 128-bit key: collisions would silently alias two distinct
//! configurations onto one cache slot, so the key space is sized to make
//! that astronomically unlikely rather than merely rare.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn read_u64(data: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(data[at..at + 8].try_into().expect("8 bytes"))
}

#[inline]
fn read_u32(data: &[u8], at: usize) -> u64 {
    u32::from_le_bytes(data[at..at + 4].try_into().expect("4 bytes")) as u64
}

/// XXH64 of `data` under `seed`.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut i = 0usize;
    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while i + 32 <= len {
            v1 = round(v1, read_u64(data, i));
            v2 = round(v2, read_u64(data, i + 8));
            v3 = round(v3, read_u64(data, i + 16));
            v4 = round(v4, read_u64(data, i + 24));
            i += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }
    h = h.wrapping_add(len as u64);
    while i + 8 <= len {
        h = (h ^ round(0, read_u64(data, i)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        i += 8;
    }
    if i + 4 <= len {
        h = (h ^ read_u32(data, i).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        i += 4;
    }
    while i < len {
        h = (h ^ (data[i] as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
        i += 1;
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors from the published XXH64 specification
    /// (xxhash.com, `XSUM_XXH64` sanity checks).
    #[test]
    fn matches_published_test_vectors() {
        assert_eq!(xxh64(b"", 0), 0xEF46DB3751D8E999);
        assert_eq!(xxh64(b"", 1), 0xD5AFBA1336A3BE4B);
        assert_eq!(xxh64(b"a", 0), 0xD24EC4F1A98C6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC2CF5AD770999);
        assert_eq!(
            xxh64(b"Nobody inspects the spammish repetition", 0),
            0xFBCEA83C8A378BF1
        );
    }

    #[test]
    fn seed_and_content_both_matter() {
        assert_ne!(xxh64(b"payload", 0), xxh64(b"payload", 1));
        assert_ne!(xxh64(b"payload", 0), xxh64(b"payloae", 0));
        assert_eq!(xxh64(b"payload", 7), xxh64(b"payload", 7));
    }

    #[test]
    fn covers_every_length_class() {
        // 0, tail-only, 4-byte lane, 8-byte lane, stripe, stripe+tail —
        // each exercises a different branch of the finalizer.
        let data: Vec<u8> = (0..=255u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in [0, 1, 3, 4, 7, 8, 15, 31, 32, 33, 63, 64, 100, 256] {
            assert!(seen.insert(xxh64(&data[..len], 0)), "collision at {len}");
        }
    }
}
