//! # ats-store
//!
//! Content-addressed, integrity-checked artifact storage for campaign
//! results — the persistence layer behind the suite's incremental
//! campaign engine.
//!
//! The suite's runs are deterministic: for a fixed (scenario spec,
//! property parameters, analyzer configuration and version, machine
//! model, backend, trace format) the simulator produces byte-identical
//! traces and the analyzer byte-identical reports, at any worker count.
//! That makes replaying a cached result *provably* equivalent to
//! re-executing it — so a campaign only needs to execute combinations
//! whose key has never been seen. This crate provides the pieces:
//!
//! * [`Json`] — the suite's self-contained canonical JSON model (sorted
//!   object keys, exact integers, shortest-round-trip floats; it lives in
//!   [`ats_core::json`] and is re-exported here), so key bytes and
//!   manifests never depend on an external serializer's formatting;
//! * [`CacheKey`] — a stable 128-bit hash (two-lane [`hash::xxh64`]) of a
//!   canonical JSON ingredients document;
//! * [`Store`] — the sharded on-disk object tree with per-entry
//!   manifests, checksums, an index file and atomic commit;
//! * [`CacheMode`] / [`Cache`] — the `off`/`ro`/`rw` policy knob engines
//!   thread through sweeps and fuzz campaigns;
//! * [`atomic`] — temp-file + rename write primitives, also used by the
//!   fuzz corpus so interrupted campaigns cannot truncate artifacts.

pub mod atomic;
pub mod hash;
pub mod key;
pub mod mode;
pub mod store;

/// The canonical JSON model (now `ats_core::json`; re-exported here for
/// the store's original callers).
pub mod json {
    pub use ats_core::json::*;
}

pub use ats_core::json::Json;
pub use key::CacheKey;
pub use mode::CacheMode;
pub use store::{EntryDoc, FileMeta, Store, StoreStats, StoredEntry};

use ats_core::Error;
use std::path::Path;

/// Conventional store root, relative to the repository root.
pub const DEFAULT_DIR: &str = "artifacts/store";

/// A [`Store`] paired with the [`CacheMode`] governing its use — what a
/// caching-aware engine (experiment sweeps, fuzz campaigns) carries.
#[derive(Debug, Clone)]
pub struct Cache {
    /// The underlying store.
    pub store: Store,
    /// What the engine may do with it.
    pub mode: CacheMode,
}

impl Cache {
    /// Open (creating if needed) a cache at `root` in `mode`.
    pub fn open(root: impl AsRef<Path>, mode: CacheMode) -> Result<Cache, Error> {
        Ok(Cache {
            store: Store::open(root)?,
            mode,
        })
    }

    /// This cache with hit/miss/byte counters recorded into `obs`.
    pub fn with_obs(self, obs: Option<ats_obs::Handle>) -> Cache {
        Cache {
            store: self.store.with_obs(obs),
            mode: self.mode,
        }
    }

    /// Consult the store for `key`, respecting the mode: `Ok(None)` in
    /// `off` mode or on a miss.
    pub fn lookup(&self, key: &CacheKey) -> Result<Option<StoredEntry>, Error> {
        if !self.mode.reads() {
            return Ok(None);
        }
        self.store.get(key)
    }

    /// Persist `files` under `key` if the mode allows writes. Returns
    /// bytes written (0 when writes are disabled).
    pub fn publish(
        &self,
        key: &CacheKey,
        ingredients: &Json,
        files: &[(&str, &[u8])],
    ) -> Result<u64, Error> {
        if !self.mode.writes() {
            return Ok(0);
        }
        self.store.put(key, ingredients, files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_modes_gate_store_access() {
        let dir = std::env::temp_dir().join(format!("ats-store-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ing = Json::obj().with("k", 1u64);
        let key = CacheKey::of_value(&ing);

        let ro = Cache::open(&dir, CacheMode::Read).unwrap();
        assert_eq!(ro.publish(&key, &ing, &[("row.json", b"r")]).unwrap(), 0);
        assert!(ro.lookup(&key).unwrap().is_none());

        let rw = Cache::open(&dir, CacheMode::ReadWrite).unwrap();
        assert!(rw.publish(&key, &ing, &[("row.json", b"r")]).unwrap() > 0);
        assert!(rw.lookup(&key).unwrap().is_some());
        assert!(ro.lookup(&key).unwrap().is_some(), "ro sees rw's entry");

        let off = Cache::open(&dir, CacheMode::Off).unwrap();
        assert!(off.lookup(&key).unwrap().is_none(), "off never reads");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
