//! A generic all-to-all rendezvous slot for thread teams.
//!
//! Same protocol as the MPI substrate's collective slot, but generic over
//! the contribution type and kept dependency-free of `ats-mpi` (the two
//! substrates are independent, as in the paper's layer diagram).

use parking_lot::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct State<T> {
    filling: bool,
    arrived: usize,
    departed: usize,
    contribs: Vec<Option<T>>,
    seq: u64,
}

/// An N-party exchange: every participant deposits a `T` and receives
/// everyone's deposits plus a per-slot round number.
#[derive(Debug)]
pub struct ExchangeSlot<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
    size: usize,
}

impl<T: Clone> ExchangeSlot<T> {
    /// Create a slot for `size` participants.
    pub fn new(size: usize) -> Self {
        ExchangeSlot {
            state: Mutex::new(State {
                filling: true,
                arrived: 0,
                departed: 0,
                contribs: (0..size).map(|_| None).collect(),
                seq: 0,
            }),
            cv: Condvar::new(),
            size,
        }
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rendezvous as participant `me`, depositing `contrib`.
    ///
    /// # Panics
    /// Panics if the team does not fully arrive within `timeout`.
    pub fn exchange(&self, me: usize, contrib: T, timeout: Duration) -> (u64, Vec<T>) {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        while !st.filling {
            self.wait(&mut st, deadline);
        }
        assert!(st.contribs[me].is_none(), "participant {me} arrived twice");
        st.contribs[me] = Some(contrib);
        st.arrived += 1;
        if st.arrived == self.size {
            st.filling = false;
            self.cv.notify_all();
        } else {
            while st.filling {
                self.wait(&mut st, deadline);
            }
        }
        let seq = st.seq;
        let all = st
            .contribs
            .iter()
            .map(|c| c.clone().expect("all deposited"))
            .collect();
        st.departed += 1;
        if st.departed == self.size {
            st.arrived = 0;
            st.departed = 0;
            // Reset in place: clearing the slots beats reallocating the
            // vector once per round on hot exchange paths (barriers in
            // tight loops).
            for c in st.contribs.iter_mut() {
                *c = None;
            }
            st.seq += 1;
            st.filling = true;
            self.cv.notify_all();
        }
        (seq, all)
    }

    fn wait(&self, st: &mut parking_lot::MutexGuard<'_, State<T>>, deadline: Instant) {
        if self.cv.wait_until(st, deadline).timed_out() {
            panic!(
                "team rendezvous stalled: {}/{} threads arrived before timeout \
                 (deadlock in the simulated program?)",
                st.arrived, self.size
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn exchanges_values_and_rounds() {
        let slot = Arc::new(ExchangeSlot::new(3));
        let hs: Vec<_> = (0..3)
            .map(|me| {
                let slot = slot.clone();
                std::thread::spawn(move || {
                    let (s0, v0) = slot.exchange(me, me * 10, T);
                    let (s1, v1) = slot.exchange(me, me + 100, T);
                    (s0, v0, s1, v1)
                })
            })
            .collect();
        for h in hs {
            let (s0, v0, s1, v1) = h.join().unwrap();
            assert_eq!(s0, 0);
            assert_eq!(v0, vec![0, 10, 20]);
            assert_eq!(s1, 1);
            assert_eq!(v1, vec![100, 101, 102]);
        }
    }

    #[test]
    #[should_panic(expected = "team rendezvous stalled")]
    fn missing_participant_times_out() {
        let slot = ExchangeSlot::new(2);
        slot.exchange(0, (), Duration::from_millis(50));
    }

    #[test]
    fn singleton_slot_is_immediate() {
        let slot = ExchangeSlot::new(1);
        let (seq, all) = slot.exchange(0, 7u32, T);
        assert_eq!(seq, 0);
        assert_eq!(all, vec![7]);
    }
}
