//! Parallel regions and the per-thread handle.
//!
//! [`parallel`] forks a team of OS threads off any [`Master`], hands each an
//! [`OmpThread`], and joins them back with OpenMP fork/join virtual-time
//! semantics: threads start at `master clock + fork_overhead`, and the
//! master resumes at `max(thread end clocks) + join_overhead` — so any
//! imbalance among the threads becomes master-visible idle time, which is
//! precisely the paper's *Imbalance in Parallel Region* property.
//!
//! Teams are always OS threads, regardless of the MPI layer's
//! [`SimBackend`](ats_runtime::SimBackend): a fork from a rank coroutine
//! OS-blocks that coroutine's scheduler thread until the join, which is
//! safe (members never touch MPI) but means `nthreads` counts against
//! real host parallelism. MPI calls belong in serial regions, where the
//! master is back on the scheduler and cooperates as usual — see
//! `mpi_in_omp_serial`.

use crate::master::Master;
use crate::team::{dynamic_chunks, guided_chunks, CriticalSpace, TeamShared};
use ats_runtime::{MachineModel, VDur, VTime, WorkEngine, WorkMode};
use ats_trace::{CollOp, LocalTrace, LocationId, RegionId, RegionKind, TraceCollector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Where a thread's events go: spawned threads own their stream, the
/// master (thread 0) borrows the master's.
enum LocalSink<'t> {
    Owned(Option<LocalTrace>),
    Borrowed(&'t mut LocalTrace),
}

impl LocalSink<'_> {
    fn get(&mut self) -> &mut LocalTrace {
        match self {
            LocalSink::Owned(l) => l.as_mut().expect("owned sink already submitted"),
            LocalSink::Borrowed(l) => l,
        }
    }
}

/// Loop schedule selector, mirroring OpenMP's `schedule` clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Chunks assigned round-robin at compile time. `None` = one
    /// contiguous block per thread.
    Static(Option<usize>),
    /// Chunks of the given size handed out greedily in virtual time.
    Dynamic(usize),
    /// Exponentially shrinking chunks with the given minimum.
    Guided(usize),
}

/// A member of a parallel-region team.
pub struct OmpThread<'t> {
    tid: usize,
    location: LocationId,
    clock: VTime,
    team: &'t TeamShared,
    local: LocalSink<'t>,
    engine: WorkEngine,
    collector: TraceCollector,
    construct_seq: u64,
    r_work: RegionId,
}

impl<'t> OmpThread<'t> {
    /// This thread's id within its team (`omp_get_thread_num`).
    pub fn thread_num(&self) -> usize {
        self.tid
    }

    /// Team size (`omp_get_num_threads`).
    pub fn num_threads(&self) -> usize {
        self.team.size
    }

    /// The thread's trace location.
    pub fn location(&self) -> LocationId {
        self.location
    }

    /// Current virtual clock.
    pub fn clock(&self) -> VTime {
        self.clock
    }

    /// Advance the clock without recording work.
    pub fn advance(&mut self, d: VDur) {
        self.clock += d;
    }

    /// The thread's private RNG stream.
    pub fn rng(&mut self) -> &mut ats_runtime::SplitMix64 {
        self.engine.rng()
    }

    /// The ATS `do_work` on this thread.
    pub fn do_work(&mut self, amount: VDur) {
        if amount.is_zero() {
            return;
        }
        let r = self.r_work;
        let t0 = self.clock;
        self.local.get().enter(t0, r);
        self.engine.do_work(amount);
        self.clock += amount;
        let t1 = self.clock;
        self.local.get().exit(t1, r);
    }

    /// Open a named region at the current clock.
    pub fn enter_region(&mut self, name: &str, kind: RegionKind) {
        let id = self.collector.intern(name, kind);
        let t = self.clock;
        self.local.get().enter(t, id);
    }

    /// Close a named region at the current clock.
    pub fn exit_region(&mut self, name: &str) {
        let id = self.collector.intern(name, RegionKind::User);
        let t = self.clock;
        self.local.get().exit(t, id);
    }

    /// Explicit team barrier (`#pragma omp barrier`).
    pub fn barrier(&mut self) {
        let r = self.collector.intern("omp_barrier", RegionKind::OmpSync);
        let entry = self.clock;
        self.local.get().enter(entry, r);
        let (seq, entries) = self
            .team
            .barrier
            .exchange(self.tid, entry, self.team.timeout);
        let exit = self.team.barrier_exit(&entries);
        self.clock = exit;
        self.local
            .get()
            .coll_end(exit, CollOp::OmpBarrier, self.team.id, None, seq, 0, entry);
        self.local.get().exit(exit, r);
    }

    /// Team-wide reduction (the `reduction` clause): every thread
    /// contributes a value; everyone receives the combined result. Timing
    /// is barrier-like (the last arriver releases the team), recorded as an
    /// `omp_barrier` pseudo-collective so analyzers see the synchronization.
    pub fn team_reduce(&mut self, value: f64, combine: impl Fn(f64, f64) -> f64) -> f64 {
        let r = self.collector.intern("omp_reduction", RegionKind::OmpSync);
        let entry = self.clock;
        self.local.get().enter(entry, r);
        let (seq, all) = self
            .team
            .reduction
            .exchange(self.tid, (entry, value), self.team.timeout);
        let entries: Vec<VTime> = all.iter().map(|(e, _)| *e).collect();
        let exit = self.team.barrier_exit(&entries);
        self.clock = exit;
        self.local.get().coll_end(
            exit,
            CollOp::OmpBarrier,
            self.team.id,
            None,
            // Reduction rounds share the team id but use their own slot;
            // offset the sequence space so instances never collide with
            // plain barriers.
            seq | (1 << 62),
            8,
            entry,
        );
        self.local.get().exit(exit, r);
        all[1..]
            .iter()
            .fold(all[0].1, |acc, (_, v)| combine(acc, *v))
    }

    /// Worksharing loop (`#pragma omp for`) over `0..iters` with the given
    /// schedule, ending in the implicit barrier (use
    /// [`OmpThread::for_loop_nowait`] to skip it).
    pub fn for_loop(
        &mut self,
        iters: usize,
        schedule: Schedule,
        body: impl FnMut(&mut Self, usize),
    ) {
        self.for_impl(iters, schedule, body, true);
    }

    /// Worksharing loop with the `nowait` clause.
    pub fn for_loop_nowait(
        &mut self,
        iters: usize,
        schedule: Schedule,
        body: impl FnMut(&mut Self, usize),
    ) {
        self.for_impl(iters, schedule, body, false);
    }

    fn for_impl(
        &mut self,
        iters: usize,
        schedule: Schedule,
        mut body: impl FnMut(&mut Self, usize),
        implicit_barrier: bool,
    ) {
        let r = self.collector.intern("omp_for", RegionKind::OmpWorkshare);
        let t0 = self.clock;
        self.local.get().enter(t0, r);
        self.construct_seq += 1;
        match schedule {
            Schedule::Static(chunk) => {
                let n = self.team.size;
                let c = chunk.unwrap_or_else(|| iters.div_ceil(n).max(1));
                let mut chunk_index = 0;
                let mut i = 0;
                while i < iters {
                    let end = (i + c).min(iters);
                    if chunk_index % n == self.tid {
                        for it in i..end {
                            body(self, it);
                        }
                    }
                    i = end;
                    chunk_index += 1;
                }
            }
            Schedule::Dynamic(chunk) => {
                let seq = self.construct_seq;
                let ds = self.team.dispenser(seq, || dynamic_chunks(iters, chunk));
                self.run_dispensed(&ds, &mut body);
            }
            Schedule::Guided(min_chunk) => {
                let seq = self.construct_seq;
                let nthreads = self.team.size;
                let ds = self
                    .team
                    .dispenser(seq, || guided_chunks(iters, nthreads, min_chunk));
                self.run_dispensed(&ds, &mut body);
            }
        }
        if implicit_barrier {
            self.barrier();
        }
        let t1 = self.clock;
        self.local.get().exit(t1, r);
    }

    fn run_dispensed(
        &mut self,
        ds: &crate::team::DynSched,
        body: &mut impl FnMut(&mut Self, usize),
    ) {
        ds.register(self.tid, self.clock, self.team.timeout);
        let mut next = ds.acquire(self.tid, self.clock, self.team.timeout);
        while let Some(chunk) = next {
            self.clock += self.team.model.chunk_dispatch;
            for it in chunk.start..chunk.end {
                body(self, it);
            }
            next = ds.finish_and_acquire(self.tid, self.clock, self.team.timeout);
        }
    }

    /// Worksharing sections (`#pragma omp sections`): section `i` runs on
    /// thread `i mod team_size`, with the implicit barrier at the end.
    pub fn sections(&mut self, sections: &mut [&mut dyn FnMut(&mut Self)]) {
        let r = self
            .collector
            .intern("omp_sections", RegionKind::OmpWorkshare);
        let t0 = self.clock;
        self.local.get().enter(t0, r);
        let n = self.team.size;
        for (i, section) in sections.iter_mut().enumerate() {
            if i % n == self.tid {
                section(self);
            }
        }
        self.barrier();
        let t1 = self.clock;
        self.local.get().exit(t1, r);
    }

    /// `#pragma omp single`: the construct runs on thread 0 (a fixed,
    /// reproducible choice); everyone synchronizes at the implicit barrier.
    pub fn single(&mut self, body: impl FnOnce(&mut Self)) {
        let r = self
            .collector
            .intern("omp_single", RegionKind::OmpWorkshare);
        let t0 = self.clock;
        self.local.get().enter(t0, r);
        if self.tid == 0 {
            body(self);
        }
        self.barrier();
        let t1 = self.clock;
        self.local.get().exit(t1, r);
    }

    /// `#pragma omp master`: thread 0 only, no synchronization.
    pub fn master_only(&mut self, body: impl FnOnce(&mut Self)) {
        let r = self
            .collector
            .intern("omp_master", RegionKind::OmpWorkshare);
        let t0 = self.clock;
        self.local.get().enter(t0, r);
        if self.tid == 0 {
            body(self);
        }
        let t1 = self.clock;
        self.local.get().exit(t1, r);
    }

    /// Acquire an explicit lock object (`omp_set_lock`/`omp_unset_lock`)
    /// around `body`. Same virtual-time contention semantics as
    /// [`OmpThread::critical`], but the lock is a first-class value that
    /// can be shared between teams or stored in data structures, recorded
    /// under `omp_lock`/`omp_lock_body` regions.
    pub fn with_lock(&mut self, lock: &crate::team::VirtualMutex, body: impl FnOnce(&mut Self)) {
        let r_lock = self.collector.intern("omp_lock", RegionKind::OmpSync);
        let r_body = self.collector.intern("omp_lock_body", RegionKind::OmpSync);
        let arrival = self.clock;
        self.local.get().enter(arrival, r_lock);
        let guard = lock.acquire(arrival, self.team.model.lock_overhead);
        self.clock = guard.start;
        let start = self.clock;
        self.local.get().enter(start, r_body);
        body(self);
        let end = self.clock;
        guard.release(end);
        self.local.get().exit(end, r_body);
        self.local.get().exit(end, r_lock);
    }

    /// Named critical section (`#pragma omp critical(name)`).
    ///
    /// Contenders serialize in virtual time; the time between arrival and
    /// acquisition is recorded as the gap between the `omp_critical` and
    /// `omp_critical_body` region entries — the signal the analyzer's
    /// contention pattern consumes.
    pub fn critical(&mut self, name: &str, body: impl FnOnce(&mut Self)) {
        let r_crit = self.collector.intern("omp_critical", RegionKind::OmpSync);
        let r_body = self
            .collector
            .intern("omp_critical_body", RegionKind::OmpSync);
        let arrival = self.clock;
        self.local.get().enter(arrival, r_crit);
        let vm = self.team.criticals.named(name);
        let guard = vm.acquire(arrival, self.team.model.lock_overhead);
        self.clock = guard.start;
        let start = self.clock;
        self.local.get().enter(start, r_body);
        body(self);
        let end = self.clock;
        guard.release(end);
        self.local.get().exit(end, r_body);
        self.local.get().exit(end, r_crit);
    }
}

impl Master for OmpThread<'_> {
    fn rank(&self) -> u32 {
        self.location.rank
    }
    fn location(&self) -> LocationId {
        self.location
    }
    fn clock(&self) -> VTime {
        self.clock
    }
    fn set_clock(&mut self, t: VTime) {
        assert!(t >= self.clock, "clock may not move backwards");
        self.clock = t;
    }
    fn collector(&self) -> &TraceCollector {
        &self.collector
    }
    fn local_mut(&mut self) -> &mut LocalTrace {
        self.local.get()
    }
    fn model(&self) -> &MachineModel {
        &self.team.model
    }
    fn work_mode(&self) -> WorkMode {
        self.engine.mode()
    }
    fn seed(&self) -> u64 {
        self.team.seed
    }
    fn calibration(&self) -> Option<f64> {
        self.team.calibration
    }
    fn sync_ids(&self) -> Arc<AtomicU32> {
        self.team.sync_ids.clone()
    }
    fn thread_ids(&self) -> Arc<AtomicU32> {
        self.team.thread_ids.clone()
    }
    fn criticals(&self) -> Arc<CriticalSpace> {
        self.team.criticals.clone()
    }
    fn timeout(&self) -> Duration {
        self.team.timeout
    }
}

/// Fork a team of `nthreads` (including the master as thread 0), run
/// `body` on every member, and join.
///
/// Spawned threads receive fresh trace locations `(rank, base + k)` from
/// the master's thread-id allocator; the master keeps its own location, so
/// its in-region events nest inside its `omp_parallel` frame.
pub fn parallel<M: Master>(m: &mut M, nthreads: usize, body: impl Fn(&mut OmpThread) + Sync) {
    assert!(nthreads >= 1, "a team needs at least one thread");
    let model = m.model().clone();
    let collector = m.collector().clone();
    let rank = m.rank();
    let seed = m.seed();
    let work_mode = m.work_mode();
    let calibration = m.calibration();
    let timeout = m.timeout();
    let master_loc = m.location();
    let r_par = collector.intern("omp_parallel", RegionKind::OmpParallel);
    let r_work = collector.intern("do_work", RegionKind::Work);

    let t0 = m.clock();
    m.local_mut().enter(t0, r_par);
    // Forked threads inherit the master's open call path (as OPARI-style
    // instrumentation does), so their waits can be localized to the
    // enclosing property frame / user phase.
    let inherited: Vec<RegionId> = m.local_mut().open_stack().to_vec();
    let start = t0 + model.fork_overhead;

    let team = TeamShared {
        id: m.alloc_sync_id(),
        size: nthreads,
        barrier: crate::exchange::ExchangeSlot::new(nthreads),
        reduction: crate::exchange::ExchangeSlot::new(nthreads),
        loops: Mutex::new(HashMap::new()),
        model: model.clone(),
        timeout,
        criticals: m.criticals(),
        sync_ids: m.sync_ids(),
        thread_ids: m.thread_ids(),
        seed,
        calibration,
    };
    let base = if nthreads > 1 {
        team.thread_ids
            .fetch_add(nthreads as u32 - 1, Ordering::Relaxed)
    } else {
        0
    };

    let mk_engine = |thread_id: u32| {
        let mut e = WorkEngine::new(work_mode, seed, ((rank as u64) << 32) | thread_id as u64);
        if let Some(rate) = calibration {
            e.set_calibration(rate);
        }
        e
    };

    let join_time = std::thread::scope(|s| {
        let handles: Vec<_> = (1..nthreads)
            .map(|tid| {
                let loc = LocationId::new(rank, base + (tid as u32) - 1);
                let collector = collector.clone();
                let team = &team;
                let body = &body;
                let engine = mk_engine(loc.thread);
                let inherited = &inherited;
                s.spawn(move || {
                    let mut local = collector.local(loc);
                    for r in inherited {
                        local.enter(start, *r);
                    }
                    let mut th = OmpThread {
                        tid,
                        location: loc,
                        clock: start,
                        team,
                        local: LocalSink::Owned(Some(local)),
                        engine,
                        collector: collector.clone(),
                        construct_seq: 0,
                        r_work,
                    };
                    body(&mut th);
                    let join = join_team(&mut th);
                    for r in inherited.iter().rev() {
                        th.local.get().exit(join, *r);
                    }
                    if let LocalSink::Owned(l) = &mut th.local {
                        collector.submit(l.take().expect("not yet submitted"));
                    }
                })
            })
            .collect();
        let mut th0 = OmpThread {
            tid: 0,
            location: master_loc,
            clock: start,
            team: &team,
            local: LocalSink::Borrowed(m.local_mut()),
            engine: mk_engine(master_loc.thread),
            collector: collector.clone(),
            construct_seq: 0,
            r_work,
        };
        body(&mut th0);
        let join = join_team(&mut th0);
        for h in handles {
            h.join().expect("team thread panicked");
        }
        join
    });
    m.set_clock(join_time + model.join_overhead);
    let t_end = m.clock();
    m.local_mut().exit(t_end, r_par);
}

/// The implicit barrier ending a parallel region: exchange end clocks,
/// record the join pseudo-collective, and return the join time.
fn join_team(th: &mut OmpThread<'_>) -> VTime {
    let entry = th.clock;
    let (seq, ends) = th.team.barrier.exchange(th.tid, entry, th.team.timeout);
    let join = ends.iter().copied().max().unwrap_or(entry);
    th.clock = join;
    th.local
        .get()
        .coll_end(join, CollOp::OmpJoin, th.team.id, None, seq, 0, entry);
    join
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::{run_omp, OmpConfig};
    use ats_runtime::MachineModel;
    use ats_trace::{check_wellformed, Trace, TraceStats};

    fn zero_cfg() -> OmpConfig {
        OmpConfig {
            model: MachineModel::zero(),
            ..Default::default()
        }
    }

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    #[test]
    fn team_runs_all_threads() {
        use std::sync::atomic::AtomicUsize;
        let ran = AtomicUsize::new(0);
        run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                assert_eq!(th.num_threads(), 4);
                ran.fetch_add(1 << th.thread_num(), Ordering::Relaxed);
            });
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0b1111);
    }

    #[test]
    fn join_waits_for_slowest_thread() {
        let trace = run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.do_work(VDur::from_millis(10 * (th.thread_num() as u64 + 1)));
            });
            assert_eq!(m.clock(), t(40), "master resumes at the slowest thread");
        });
        assert!(check_wellformed(&trace).is_empty());
        assert_eq!(trace.num_locations(), 4);
    }

    #[test]
    fn barrier_aligns_team() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 3, |th| {
                th.do_work(VDur::from_millis(5 * (th.thread_num() as u64 + 1)));
                th.barrier();
                assert_eq!(th.clock(), t(15));
            });
        });
    }

    #[test]
    fn fork_and_join_overheads_charged() {
        let mut cfg = zero_cfg();
        cfg.model.fork_overhead = VDur::from_millis(2);
        cfg.model.join_overhead = VDur::from_millis(1);
        run_omp(cfg, |m| {
            m.do_work(VDur::from_millis(10));
            parallel(m, 2, |th| {
                assert_eq!(th.clock(), t(12), "threads start after fork overhead");
                th.do_work(VDur::from_millis(5));
            });
            assert_eq!(m.clock(), t(18), "10 + fork 2 + work 5 + join 1");
        });
    }

    #[test]
    fn static_schedule_round_robins_chunks() {
        use parking_lot::Mutex;
        let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.for_loop(6, Schedule::Static(Some(1)), |th, i| {
                    seen.lock().push((th.thread_num(), i));
                });
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, vec![(0, 0), (0, 2), (0, 4), (1, 1), (1, 3), (1, 5)]);
    }

    #[test]
    fn static_default_blocks_are_contiguous() {
        use parking_lot::Mutex;
        let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.for_loop(8, Schedule::Static(None), |th, i| {
                    seen.lock().push((th.thread_num(), i));
                });
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(
            v,
            vec![
                (0, 0),
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 4),
                (1, 5),
                (1, 6),
                (1, 7),
            ]
        );
    }

    #[test]
    fn dynamic_schedule_covers_all_iterations_exactly_once() {
        use parking_lot::Mutex;
        let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        run_omp(zero_cfg(), |m| {
            parallel(m, 3, |th| {
                th.for_loop(10, Schedule::Dynamic(2), |_, i| {
                    seen.lock().push(i);
                });
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn dynamic_schedule_balances_virtual_time() {
        // 4 chunks of wildly different costs on 2 threads: greedy list
        // scheduling should end both threads at similar clocks.
        let costs = [40u64, 10, 10, 10];
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.for_loop(4, Schedule::Dynamic(1), |th, i| {
                    th.do_work(VDur::from_millis(costs[i]));
                });
                // Greedy: t0 takes chunk0 (40); t1 takes 10+10+10 = 30.
                // Barrier aligns at 40.
                assert_eq!(th.clock(), t(40));
            });
        });
    }

    #[test]
    fn guided_schedule_covers_all_iterations() {
        use std::sync::atomic::AtomicUsize;
        let count = AtomicUsize::new(0);
        run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.for_loop(100, Schedule::Guided(4), |_, _| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nowait_skips_the_implicit_barrier() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.for_loop_nowait(2, Schedule::Static(Some(1)), |th, _| {
                    th.do_work(VDur::from_millis(if th.thread_num() == 0 { 10 } else { 1 }));
                });
                if th.thread_num() == 1 {
                    assert_eq!(th.clock(), t(1), "no barrier: fast thread runs ahead");
                }
                th.barrier();
            });
        });
    }

    #[test]
    fn single_runs_once_with_barrier() {
        use std::sync::atomic::AtomicUsize;
        let runs = AtomicUsize::new(0);
        run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.single(|th| {
                    runs.fetch_add(1, Ordering::Relaxed);
                    th.do_work(VDur::from_millis(7));
                });
                // Implicit barrier: everyone leaves at the single's end.
                assert_eq!(th.clock(), t(7));
            });
        });
        assert_eq!(runs.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn master_only_does_not_synchronize() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.master_only(|th| th.do_work(VDur::from_millis(9)));
                if th.thread_num() == 1 {
                    assert_eq!(th.clock(), VTime::ZERO);
                }
                th.barrier();
            });
        });
    }

    #[test]
    fn sections_distribute_round_robin() {
        use parking_lot::Mutex;
        let seen: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                let mut s0 = |th: &mut OmpThread| {
                    seen.lock().push((th.thread_num(), 0));
                };
                let mut s1 = |th: &mut OmpThread| {
                    seen.lock().push((th.thread_num(), 1));
                };
                let mut s2 = |th: &mut OmpThread| {
                    seen.lock().push((th.thread_num(), 2));
                };
                th.sections(&mut [&mut s0, &mut s1, &mut s2]);
            });
        });
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, vec![(0, 0), (0, 2), (1, 1)]);
    }

    #[test]
    fn critical_serializes_in_virtual_time() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.critical("update", |th| th.do_work(VDur::from_millis(5)));
                th.barrier();
                // 4 threads x 5ms serialized: last release at 20ms.
                assert_eq!(th.clock(), t(20));
            });
        });
    }

    #[test]
    fn critical_records_wait_and_body_regions() {
        let trace = run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                th.critical("c", |th| th.do_work(VDur::from_millis(3)));
            });
        });
        let stats = TraceStats::compute(&trace);
        let crit = trace.find_region("omp_critical").unwrap();
        let body = trace.find_region("omp_critical_body").unwrap();
        // Total body time 6ms; total critical occupancy 3 + 6 = 9ms
        // (second contender waits 3ms).
        assert_eq!(stats.region_total(body).inclusive, VDur::from_millis(6));
        assert_eq!(stats.region_total(crit).inclusive, VDur::from_millis(9));
    }

    #[test]
    fn distinct_critical_names_do_not_contend() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                let name = if th.thread_num() == 0 { "a" } else { "b" };
                th.critical(name, |th| th.do_work(VDur::from_millis(5)));
                assert_eq!(th.clock(), t(5), "no cross-name contention");
                th.barrier();
            });
        });
    }

    #[test]
    fn nested_parallelism_forks_subteams() {
        use std::sync::atomic::AtomicUsize;
        let leaf_runs = AtomicUsize::new(0);
        let trace = run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| {
                let outer = th.thread_num();
                parallel(th, 2, |inner| {
                    leaf_runs.fetch_add(1, Ordering::Relaxed);
                    inner.do_work(VDur::from_millis(
                        (outer * 2 + inner.thread_num() + 1) as u64,
                    ));
                });
            });
            // Slowest leaf: outer 1, inner 1 -> 4ms.
            assert_eq!(m.clock(), t(4));
        });
        assert_eq!(leaf_runs.load(Ordering::Relaxed), 4);
        assert!(check_wellformed(&trace).is_empty());
        // 1 master + 1 outer + 2 inner spawned locations.
        assert_eq!(trace.num_locations(), 4);
    }

    #[test]
    fn sequential_regions_reuse_master_location() {
        let trace = run_omp(zero_cfg(), |m| {
            parallel(m, 2, |th| th.do_work(VDur::from_millis(1)));
            parallel(m, 2, |th| th.do_work(VDur::from_millis(1)));
        });
        assert!(check_wellformed(&trace).is_empty());
        // Master location 0 plus one spawned location per region.
        assert_eq!(trace.num_locations(), 3);
        let master = trace.location(LocationId::rank(0)).unwrap();
        let regions: Vec<_> = master
            .events
            .iter()
            .filter(|e| e.enter_region().is_some())
            .collect();
        assert!(regions.len() >= 4, "two region frames plus work frames");
    }

    #[test]
    fn omp_traces_are_deterministic() {
        let program = |m: &mut crate::master::SeqMaster| {
            parallel(m, 4, |th| {
                th.do_work(VDur::from_millis(th.thread_num() as u64 + 1));
                th.barrier();
                th.for_loop(8, Schedule::Dynamic(1), |th, i| {
                    th.do_work(VDur::from_millis((i % 3 + 1) as u64));
                });
                th.critical("c", |th| th.do_work(VDur::from_millis(1)));
                th.barrier();
            });
        };
        let norm = |mut tr: Trace| {
            tr.canonicalize();
            tr
        };
        let a = norm(run_omp(zero_cfg(), program));
        let b = norm(run_omp(zero_cfg(), program));
        assert_eq!(a.regions, b.regions);
        // Clocks (not event interleavings of independent locations) must be
        // identical; compare the full per-location streams except the
        // critical section, whose acquisition order may legally vary while
        // total contention stays fixed.
        assert_eq!(a.end_time(), b.end_time());
        assert_eq!(a.total_alloc_time(), b.total_alloc_time());
    }

    #[test]
    fn imbalance_at_barrier_shape() {
        // The paper's imbalance_at_omp_barrier inner loop: unequal work
        // then a barrier; the trace must show per-thread waits equal to the
        // programmed imbalance.
        let trace = run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.do_work(VDur::from_millis(10 * (th.thread_num() as u64 + 1)));
                th.barrier();
            });
        });
        let stats = TraceStats::compute(&trace);
        let bar = trace.find_region("omp_barrier").unwrap();
        // Thread with 10ms of work waits 30ms; total barrier occupancy =
        // 30 + 20 + 10 + 0 = 60ms.
        assert_eq!(stats.region_total(bar).inclusive, VDur::from_millis(60));
    }

    #[test]
    fn team_reduce_combines_and_synchronizes() {
        run_omp(zero_cfg(), |m| {
            parallel(m, 4, |th| {
                th.do_work(VDur::from_millis(5 * (th.thread_num() as u64 + 1)));
                let sum = th.team_reduce((th.thread_num() + 1) as f64, |a, b| a + b);
                assert_eq!(sum, 10.0);
                // Barrier-like: everyone leaves at the last arriver (20ms).
                assert_eq!(th.clock(), t(20));
                let max = th.team_reduce(th.thread_num() as f64, f64::max);
                assert_eq!(max, 3.0);
            });
        });
    }

    #[test]
    #[should_panic(expected = "team rendezvous stalled")]
    fn member_panic_propagates() {
        let mut cfg = zero_cfg();
        cfg.timeout = Duration::from_millis(100);
        run_omp(cfg, |m| {
            parallel(m, 2, |th| {
                if th.thread_num() == 1 {
                    panic!("kaput");
                }
                // Thread 0 heads into the join barrier and must abort via
                // the timeout rather than hang.
                th.barrier();
            });
        });
    }
}
