//! # ats-omp
//!
//! A virtual-time OpenMP-style substrate: fork/join thread teams,
//! worksharing loops with static/dynamic/guided schedules, barriers,
//! `single`/`master`/`sections`, and named critical sections.
//!
//! The ATS paper's OpenMP property functions (`imbalance_in_omp_pregion`,
//! `imbalance_at_omp_barrier`, `imbalance_in_omp_loop`, ...) need an OpenMP
//! runtime; none exists for Rust (repro note: "no OpenMP; rayon
//! approximation only"), and rayon's work-stealing would *erase* exactly
//! the load imbalances the suite must produce. This substrate therefore
//! implements OpenMP's execution model directly, on the same virtual-time
//! discipline as the MPI substrate:
//!
//! * [`parallel`] forks real OS threads at `clock + fork_overhead` and
//!   joins them at `max(end clocks) + join_overhead`;
//! * barriers release everyone at the last arriver (plus a log-tree cost);
//! * dynamic/guided loops dispense chunks by greedy list scheduling over
//!   *virtual* time, so schedules are host-independent;
//! * critical sections serialize contenders in virtual time.
//!
//! Anything that can host a region implements [`Master`] — the standalone
//! [`SeqMaster`], a simulated MPI rank (via `ats-core`'s hybrid wrapper),
//! or an [`OmpThread`] itself (nested parallelism).
//!
//! ```
//! use ats_omp::{run_omp, parallel, OmpConfig, Schedule};
//! use ats_runtime::VDur;
//!
//! let trace = run_omp(OmpConfig::default(), |m| {
//!     parallel(m, 4, |th| {
//!         th.do_work(VDur::from_millis(th.thread_num() as u64 + 1));
//!         th.barrier();
//!     });
//! });
//! assert_eq!(trace.num_locations(), 4);
//! ```

pub mod exchange;
pub mod master;
pub mod team;
pub mod thread;

pub use master::{run_omp, Master, OmpConfig, SeqMaster};
pub use team::{CriticalSpace, TeamShared, VirtualMutex};
pub use thread::{parallel, OmpThread, Schedule};
