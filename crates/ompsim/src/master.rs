//! The master-side interface to the OpenMP substrate.
//!
//! A *master* is whatever sequential context opens parallel regions: the
//! standalone [`SeqMaster`] for pure shared-memory programs, an MPI rank
//! (via the hybrid wrapper in `ats-core`), or an [`crate::OmpThread`] for
//! nested parallelism. The [`Master`] trait captures exactly what the fork
//! machinery needs; keeping it a trait is what lets the suite compose MPI ×
//! OpenMP test programs without coupling the two substrate crates.

use crate::team::CriticalSpace;
use ats_runtime::{MachineModel, VDur, VTime, WorkEngine, WorkMode};
use ats_trace::{LocalTrace, LocationId, RegionKind, Trace, TraceCollector};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A sequential context able to host parallel regions.
pub trait Master {
    /// Owning MPI rank (0 for standalone shared-memory programs).
    fn rank(&self) -> u32;
    /// Location of this master (its thread id is the base for the
    /// hierarchical thread numbering of teams it forks).
    fn location(&self) -> LocationId;
    /// Current virtual clock.
    fn clock(&self) -> VTime;
    /// Move the clock forward (never backward).
    fn set_clock(&mut self, t: VTime);
    /// The run's trace collector.
    fn collector(&self) -> &TraceCollector;
    /// The master's own event stream.
    fn local_mut(&mut self) -> &mut LocalTrace;
    /// Cost model.
    fn model(&self) -> &MachineModel;
    /// Work mode for the team's threads.
    fn work_mode(&self) -> WorkMode;
    /// RNG root seed.
    fn seed(&self) -> u64;
    /// Real-work calibration, if any.
    fn calibration(&self) -> Option<f64>;
    /// Run-unique synchronization-context id allocator (shared with
    /// nested teams so every barrier/team gets a distinct `comm` id in the
    /// trace).
    fn sync_ids(&self) -> Arc<AtomicU32>;
    /// Trace-location thread-id allocator for forked team members.
    fn thread_ids(&self) -> Arc<AtomicU32>;
    /// The process's named-critical space.
    fn criticals(&self) -> Arc<CriticalSpace>;
    /// Deadlock budget.
    fn timeout(&self) -> Duration;

    /// Allocate one synchronization-context id.
    fn alloc_sync_id(&self) -> u32 {
        self.sync_ids().fetch_add(1, Ordering::Relaxed)
    }
}

/// Configuration for standalone OpenMP-style runs.
#[derive(Debug, Clone)]
pub struct OmpConfig {
    /// Cost model.
    pub model: MachineModel,
    /// Work mode.
    pub work_mode: WorkMode,
    /// RNG root seed.
    pub seed: u64,
    /// Record a trace?
    pub instrumented: bool,
    /// Deadlock budget.
    pub timeout: Duration,
    /// Real-work calibration.
    pub calibration: Option<f64>,
    /// Event-buffer pool for the run's threads (`None` = fresh vectors).
    /// Pooling reuses capacity only; recorded traces are identical.
    pub trace_pool: Option<ats_trace::TracePool>,
}

impl Default for OmpConfig {
    fn default() -> Self {
        OmpConfig {
            model: MachineModel::default(),
            work_mode: WorkMode::Virtual,
            seed: 0x0907_5EED,
            instrumented: true,
            timeout: Duration::from_secs(30),
            calibration: None,
            trace_pool: None,
        }
    }
}

/// The master of a standalone shared-memory program.
pub struct SeqMaster {
    clock: VTime,
    collector: TraceCollector,
    local: LocalTrace,
    engine: WorkEngine,
    config: OmpConfig,
    sync_ids: Arc<AtomicU32>,
    thread_ids: Arc<AtomicU32>,
    criticals: Arc<CriticalSpace>,
}

impl SeqMaster {
    fn new(config: OmpConfig, collector: TraceCollector) -> Self {
        let local = collector.local(LocationId::rank(0));
        let mut engine = WorkEngine::new(config.work_mode, config.seed, 0);
        if let Some(rate) = config.calibration {
            engine.set_calibration(rate);
        }
        SeqMaster {
            clock: VTime::ZERO,
            collector,
            local,
            engine,
            config,
            sync_ids: Arc::new(AtomicU32::new(1)),
            thread_ids: Arc::new(AtomicU32::new(1)),
            criticals: Arc::new(CriticalSpace::new()),
        }
    }

    /// Sequential `do_work` on the master.
    pub fn do_work(&mut self, amount: VDur) {
        if amount.is_zero() {
            return;
        }
        let r = self.collector.intern("do_work", RegionKind::Work);
        self.local.enter(self.clock, r);
        self.engine.do_work(amount);
        self.clock += amount;
        self.local.exit(self.clock, r);
    }

    /// Open a named region at the current clock.
    pub fn enter_region(&mut self, name: &str, kind: RegionKind) {
        let id = self.collector.intern(name, kind);
        self.local.enter(self.clock, id);
    }

    /// Close a named region at the current clock.
    pub fn exit_region(&mut self, name: &str) {
        let id = self.collector.intern(name, RegionKind::User);
        self.local.exit(self.clock, id);
    }

    /// Consume the master, yielding its event stream (drops its collector
    /// handle so the run can be finalized).
    fn into_local(self) -> LocalTrace {
        self.local
    }
}

impl Master for SeqMaster {
    fn rank(&self) -> u32 {
        0
    }
    fn location(&self) -> LocationId {
        LocationId::rank(0)
    }
    fn clock(&self) -> VTime {
        self.clock
    }
    fn set_clock(&mut self, t: VTime) {
        assert!(t >= self.clock, "clock may not move backwards");
        self.clock = t;
    }
    fn collector(&self) -> &TraceCollector {
        &self.collector
    }
    fn local_mut(&mut self) -> &mut LocalTrace {
        &mut self.local
    }
    fn model(&self) -> &MachineModel {
        &self.config.model
    }
    fn work_mode(&self) -> WorkMode {
        self.config.work_mode
    }
    fn seed(&self) -> u64 {
        self.config.seed
    }
    fn calibration(&self) -> Option<f64> {
        self.config.calibration
    }
    fn sync_ids(&self) -> Arc<AtomicU32> {
        self.sync_ids.clone()
    }
    fn thread_ids(&self) -> Arc<AtomicU32> {
        self.thread_ids.clone()
    }
    fn criticals(&self) -> Arc<CriticalSpace> {
        self.criticals.clone()
    }
    fn timeout(&self) -> Duration {
        self.config.timeout
    }
}

/// Run a standalone shared-memory program and return its trace.
pub fn run_omp<F>(config: OmpConfig, f: F) -> Trace
where
    F: FnOnce(&mut SeqMaster),
{
    let mut collector = if config.instrumented {
        TraceCollector::new()
    } else {
        TraceCollector::disabled()
    };
    if let Some(pool) = &config.trace_pool {
        collector = collector.with_pool(pool.clone());
    }
    // Deterministic region-id assignment for the substrate's own names.
    for (name, kind) in [
        ("do_work", RegionKind::Work),
        ("omp_parallel", RegionKind::OmpParallel),
        ("omp_barrier", RegionKind::OmpSync),
        ("omp_for", RegionKind::OmpWorkshare),
        ("omp_sections", RegionKind::OmpWorkshare),
        ("omp_single", RegionKind::OmpWorkshare),
        ("omp_master", RegionKind::OmpWorkshare),
        ("omp_critical", RegionKind::OmpSync),
        ("omp_critical_body", RegionKind::OmpSync),
        ("omp_reduction", RegionKind::OmpSync),
        ("omp_lock", RegionKind::OmpSync),
        ("omp_lock_body", RegionKind::OmpSync),
    ] {
        collector.intern(name, kind);
    }
    let mut master = SeqMaster::new(config, collector.clone());
    f(&mut master);
    collector.submit(master.into_local());
    collector.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_master_records_work() {
        let trace = run_omp(OmpConfig::default(), |m| {
            m.do_work(VDur::from_millis(5));
            m.do_work(VDur::from_millis(3));
        });
        assert_eq!(trace.num_locations(), 1);
        let stats = ats_trace::TraceStats::compute(&trace);
        let r = trace.find_region("do_work").unwrap();
        assert_eq!(stats.region_total(r).inclusive, VDur::from_millis(8));
        assert_eq!(stats.region_total(r).visits, 2);
    }

    #[test]
    fn uninstrumented_records_nothing() {
        let config = OmpConfig {
            instrumented: false,
            ..Default::default()
        };
        let trace = run_omp(config, |m| m.do_work(VDur::from_millis(5)));
        assert_eq!(trace.num_events(), 0);
    }

    #[test]
    fn sync_ids_are_unique() {
        run_omp(OmpConfig::default(), |m| {
            let a = m.alloc_sync_id();
            let b = m.alloc_sync_id();
            assert_ne!(a, b);
        });
    }

    #[test]
    fn user_regions_nest() {
        let trace = run_omp(OmpConfig::default(), |m| {
            m.enter_region("phase1", RegionKind::User);
            m.do_work(VDur::from_millis(1));
            m.exit_region("phase1");
        });
        assert!(ats_trace::check_wellformed(&trace).is_empty());
        assert!(trace.find_region("phase1").is_some());
    }

    #[test]
    #[should_panic(expected = "clock may not move backwards")]
    fn clock_is_monotone() {
        run_omp(OmpConfig::default(), |m| {
            m.do_work(VDur::from_millis(5));
            m.set_clock(VTime::ZERO);
        });
    }
}
