//! Shared thread-team state: barriers, deterministic worksharing
//! dispensers, and virtual critical sections.
//!
//! Team synchronization uses OS condvars, not the discrete-event
//! scheduler: team members are real OS threads even when the enclosing
//! MPI rank is a coroutine on `ats_runtime::sched` (the hybrid harness
//! mode). A master blocking here parks the scheduler's worker thread for
//! the duration of the rendezvous, which is benign — team members never
//! call into MPI or the scheduler, so no scheduler progress is required
//! while the master waits, and virtual-time results are unchanged.

use crate::exchange::ExchangeSlot;
use ats_runtime::{MachineModel, VDur, VTime};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::time::Duration;

/// Everything the members of one parallel region share.
#[derive(Debug)]
pub struct TeamShared {
    /// Run-unique id of this team (used as the `comm` field of OpenMP
    /// pseudo-collective trace events).
    pub id: u32,
    /// Number of threads.
    pub size: usize,
    /// Barrier/fork/join rendezvous carrying entry clocks.
    pub barrier: ExchangeSlot<VTime>,
    /// Reduction rendezvous carrying `(entry clock, contribution)` pairs.
    pub reduction: ExchangeSlot<(VTime, f64)>,
    /// Worksharing dispensers, keyed by the team-local construct sequence
    /// number (threads reach constructs in identical SPMD order).
    pub loops: Mutex<HashMap<u64, Arc<DynSched>>>,
    /// Cost model.
    pub model: MachineModel,
    /// Deadlock budget.
    pub timeout: Duration,
    /// Named critical sections (shared with nested teams).
    pub criticals: Arc<CriticalSpace>,
    /// Sync-id allocator shared with nested teams.
    pub sync_ids: Arc<AtomicU32>,
    /// Trace-location thread-id allocator shared with nested teams.
    pub thread_ids: Arc<AtomicU32>,
    /// RNG root seed inherited by team members.
    pub seed: u64,
    /// Real-work calibration inherited by team members.
    pub calibration: Option<f64>,
}

impl TeamShared {
    /// Barrier exit time given all entries: last arriver plus a
    /// log2-stage combining tree.
    pub fn barrier_exit(&self, entries: &[VTime]) -> VTime {
        let latest = entries.iter().copied().max().unwrap_or(VTime::ZERO);
        latest + self.model.barrier_stage * self.model.tree_stages(entries.len()) as u64
    }

    /// Fetch or create the dispenser for worksharing construct `seq`.
    pub fn dispenser(
        &self,
        seq: u64,
        chunks: impl FnOnce() -> Vec<(usize, usize)>,
    ) -> Arc<DynSched> {
        let mut loops = self.loops.lock();
        loops
            .entry(seq)
            .or_insert_with(|| Arc::new(DynSched::new(self.size, chunks())))
            .clone()
    }
}

/// Deterministic dynamic/guided worksharing dispenser.
///
/// Chunks are assigned by greedy list scheduling over *virtual* time: the
/// next chunk always goes to the participating thread with the smallest
/// virtual clock (ties to the lowest thread id), regardless of host
/// scheduling. To make that decidable, chunk execution is serialized in
/// real time — harmless in virtual-work mode, and documented as the cost of
/// reproducibility in real-work mode.
#[derive(Debug)]
pub struct DynSched {
    m: Mutex<DsState>,
    cv: Condvar,
}

#[derive(Debug)]
struct DsState {
    chunks: Vec<(usize, usize)>,
    next: usize,
    /// Clock of each thread that is waiting for a turn (`None` = not yet
    /// registered, currently executing, or finished).
    waiting: Vec<Option<VTime>>,
    registered: usize,
    executing: bool,
}

/// One grant from the dispenser: a chunk of iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// First iteration index.
    pub start: usize,
    /// One past the last iteration index.
    pub end: usize,
}

impl DynSched {
    fn new(size: usize, chunks: Vec<(usize, usize)>) -> Self {
        DynSched {
            m: Mutex::new(DsState {
                chunks,
                next: 0,
                waiting: vec![None; size],
                registered: 0,
                executing: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register thread `tid` (with its entry clock) as a participant.
    /// All threads must register before any chunk is granted.
    pub fn register(&self, tid: usize, clock: VTime, timeout: Duration) {
        let mut st = self.m.lock();
        st.waiting[tid] = Some(clock);
        st.registered += 1;
        if st.registered == st.waiting.len() {
            self.cv.notify_all();
        } else {
            let deadline = std::time::Instant::now() + timeout;
            while st.registered < st.waiting.len() {
                if self.cv.wait_until(&mut st, deadline).timed_out() {
                    panic!(
                        "worksharing construct stalled: {}/{} threads arrived",
                        st.registered,
                        st.waiting.len()
                    );
                }
            }
        }
    }

    /// Ask for the first chunk as `tid` at virtual time `clock`. Returns
    /// `None` when the iteration space is exhausted. After executing a
    /// granted chunk, the caller must come back through
    /// [`DynSched::finish_and_acquire`] — completion and the next request
    /// are a single atomic step, so a thread is always either *executing*
    /// (dispenser reserved) or *waiting with a current clock*; there is no
    /// window in which another thread could steal its greedy turn.
    pub fn acquire(&self, tid: usize, clock: VTime, timeout: Duration) -> Option<Chunk> {
        let mut st = self.m.lock();
        st.waiting[tid] = Some(clock);
        self.acquire_locked(st, tid, timeout)
    }

    /// Atomically report completion of the previous chunk (ending at
    /// `new_clock`) and request the next one.
    pub fn finish_and_acquire(
        &self,
        tid: usize,
        new_clock: VTime,
        timeout: Duration,
    ) -> Option<Chunk> {
        let mut st = self.m.lock();
        debug_assert!(st.executing, "finish_and_acquire without a granted chunk");
        st.executing = false;
        st.waiting[tid] = Some(new_clock);
        self.cv.notify_all();
        self.acquire_locked(st, tid, timeout)
    }

    fn acquire_locked(
        &self,
        mut st: parking_lot::MutexGuard<'_, DsState>,
        tid: usize,
        timeout: Duration,
    ) -> Option<Chunk> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if st.next >= st.chunks.len() {
                st.waiting[tid] = None;
                self.cv.notify_all();
                return None;
            }
            let my_turn = !st.executing
                && st
                    .waiting
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| c.map(|c| (c, i)))
                    .min()
                    .map(|(_, i)| i)
                    == Some(tid);
            if my_turn {
                let (start, end) = st.chunks[st.next];
                st.next += 1;
                st.executing = true;
                st.waiting[tid] = None;
                return Some(Chunk { start, end });
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() {
                panic!("worksharing dispenser stalled (thread {tid})");
            }
        }
    }
}

/// Compute dynamic-schedule chunk ranges: fixed `chunk` iterations each.
pub fn dynamic_chunks(iters: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(chunk > 0, "chunk size must be positive");
    let mut out = Vec::new();
    let mut i = 0;
    while i < iters {
        out.push((i, (i + chunk).min(iters)));
        i += chunk;
    }
    out
}

/// Compute guided-schedule chunk ranges: each grant takes
/// `ceil(remaining / nthreads)` iterations, never below `min_chunk`.
pub fn guided_chunks(iters: usize, nthreads: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    assert!(min_chunk > 0, "minimum chunk size must be positive");
    assert!(nthreads > 0, "need at least one thread");
    let mut out = Vec::new();
    let mut i = 0;
    while i < iters {
        let remaining = iters - i;
        let take = (remaining.div_ceil(nthreads)).max(min_chunk).min(remaining);
        out.push((i, i + take));
        i += take;
    }
    out
}

/// The named-critical-section space of one process: a virtual mutex per
/// name. Entering a critical section serializes contenders in virtual time
/// (`start = max(arrival, previous holder's release)`).
#[derive(Debug, Default)]
pub struct CriticalSpace {
    locks: Mutex<HashMap<String, Arc<VirtualMutex>>>,
}

impl CriticalSpace {
    /// Create an empty space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch or create the mutex for `name`.
    pub fn named(&self, name: &str) -> Arc<VirtualMutex> {
        self.locks
            .lock()
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(VirtualMutex::new()))
            .clone()
    }
}

/// A mutex whose contention is accounted in virtual time. The real lock is
/// held for the whole (virtually-timed) body so that `free_at` updates are
/// race-free; acquisition order follows host scheduling when virtual
/// arrivals race, which leaves aggregate contention — the quantity the
/// contention property functions program — order-insensitive for the
/// symmetric workloads the suite generates.
#[derive(Debug, Default)]
pub struct VirtualMutex {
    inner: Mutex<VmState>,
}

#[derive(Debug, Default)]
struct VmState {
    free_at: VTime,
    acquisitions: u64,
}

/// Guard-style handle produced by [`VirtualMutex::acquire`].
pub struct VmGuard<'a> {
    state: parking_lot::MutexGuard<'a, VmState>,
    /// Virtual time at which the caller actually obtained the lock.
    pub start: VTime,
    /// Time spent waiting for earlier holders.
    pub waited: VDur,
}

impl VirtualMutex {
    /// Create a free mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquire at virtual `arrival`, adding `lock_overhead`. The returned
    /// guard's `start` is when the body may begin.
    pub fn acquire(&self, arrival: VTime, lock_overhead: VDur) -> VmGuard<'_> {
        let state = self.inner.lock();
        let start = arrival.max(state.free_at) + lock_overhead;
        VmGuard {
            waited: start - arrival,
            start,
            state,
        }
    }

    /// Total successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.inner.lock().acquisitions
    }
}

impl VmGuard<'_> {
    /// Release at virtual time `end` (the clock after the critical body).
    pub fn release(mut self, end: VTime) {
        debug_assert!(end >= self.start, "critical body ended before it began");
        self.state.free_at = end;
        self.state.acquisitions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    #[test]
    fn dynamic_chunk_ranges() {
        assert_eq!(dynamic_chunks(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(dynamic_chunks(0, 4), vec![]);
        assert_eq!(dynamic_chunks(3, 10), vec![(0, 3)]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        dynamic_chunks(10, 0);
    }

    #[test]
    fn guided_chunks_shrink() {
        let chunks = guided_chunks(32, 4, 2);
        // 32/4=8, 24/4=6, 18/4=5(ceil 4.5), 13/4=4(ceil 3.25), ...
        assert_eq!(chunks[0], (0, 8));
        assert!(chunks
            .windows(2)
            .all(|w| (w[0].1 - w[0].0) >= (w[1].1 - w[1].0)));
        assert_eq!(chunks.last().unwrap().1, 32);
        // Full coverage without gaps.
        for w in chunks.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn guided_respects_min_chunk() {
        let chunks = guided_chunks(100, 4, 10);
        for &(a, b) in &chunks[..chunks.len() - 1] {
            assert!(b - a >= 10);
        }
    }

    #[test]
    fn dispenser_grants_to_min_clock_thread() {
        let ds = Arc::new(DynSched::new(2, dynamic_chunks(3, 1)));
        let timeout = Duration::from_secs(5);
        let ds2 = ds.clone();
        // Thread 1 sits at clock 100ms: it must not win a grant while
        // thread 0 keeps presenting smaller clocks.
        let h = std::thread::spawn(move || {
            ds2.register(1, t(100), timeout);
            let mut got = Vec::new();
            let mut next = ds2.acquire(1, t(100), timeout);
            while let Some(c) = next {
                got.push(c);
                next = ds2.finish_and_acquire(1, t(100), timeout);
            }
            got
        });
        ds.register(0, t(1), timeout);
        let first = ds.acquire(0, t(1), timeout).unwrap();
        assert_eq!(first, Chunk { start: 0, end: 1 }, "min clock wins");
        let second = ds.finish_and_acquire(0, t(2), timeout).unwrap();
        assert_eq!(second, Chunk { start: 1, end: 2 }, "still the min clock");
        // Thread 0 retires at a huge clock: the final chunk goes to 1.
        assert_eq!(
            ds.finish_and_acquire(0, t(200), timeout),
            None,
            "thread 1 (100ms) outranks thread 0 (200ms) for the last chunk"
        );
        assert_eq!(h.join().unwrap(), vec![Chunk { start: 2, end: 3 }]);
    }

    #[test]
    fn virtual_mutex_serializes_in_virtual_time() {
        let vm = VirtualMutex::new();
        let g1 = vm.acquire(t(0), VDur::ZERO);
        assert_eq!(g1.start, t(0));
        assert_eq!(g1.waited, VDur::ZERO);
        g1.release(t(10));
        // Second contender arrived at 3 but the lock frees at 10.
        let g2 = vm.acquire(t(3), VDur::ZERO);
        assert_eq!(g2.start, t(10));
        assert_eq!(g2.waited, VDur::from_millis(7));
        g2.release(t(12));
        assert_eq!(vm.acquisitions(), 2);
    }

    #[test]
    fn critical_space_interns_by_name() {
        let cs = CriticalSpace::new();
        let a = cs.named("x");
        let b = cs.named("x");
        let c = cs.named("y");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
