//! Communicators and the collective rendezvous slot.
//!
//! A [`Comm`] is a per-process handle onto shared communicator state: the
//! member list (global ranks in communicator-rank order) and a [`CollSlot`]
//! through which members exchange their collective contributions. `split`
//! and `dup` (implemented in [`crate::proc::Proc`]) derive new communicators
//! group-collectively, exactly like `MPI_Comm_split`/`MPI_Comm_dup` — the
//! mechanism behind the paper's Figure 3.4 experiment where the lower and
//! upper halves of `MPI_COMM_WORLD` run different property functions in
//! parallel.

use ats_runtime::sched::WaitSet;
use ats_runtime::VTime;
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One member's contribution to a collective operation.
#[derive(Debug, Clone, Default)]
pub struct Contrib {
    /// The member's virtual clock on entry.
    pub entry: VTime,
    /// Data payload (send buffer contents, or empty).
    pub data: Vec<u8>,
    /// Per-member element counts for irregular ("v") collectives; only the
    /// root's contribution needs to carry this.
    pub counts: Option<Vec<usize>>,
}

#[derive(Debug)]
struct SlotState {
    filling: bool,
    arrived: usize,
    departed: usize,
    contribs: Vec<Option<Contrib>>,
    /// Built once by the last arriver of a round and shared by every
    /// member — O(P) per collective instead of the O(P²) of per-member
    /// cloning, which is what makes 8k-rank collectives feasible.
    published: Option<Arc<Vec<Contrib>>>,
    seq: u64,
}

/// The rendezvous through which all members of a communicator exchange
/// collective contributions. One logical collective = one `exchange` call
/// per member; the slot hands every member a shared view of the full
/// contribution vector and a per-communicator sequence number identifying
/// the operation instance.
#[derive(Debug)]
pub struct CollSlot {
    state: Mutex<SlotState>,
    ws: WaitSet,
    /// Single-entry memo of the exit-time vector for the most recent
    /// collective round (keyed by `seq`): the LogGP stage walk runs once
    /// per collective, not once per member.
    exits: Mutex<Option<(u64, Arc<Vec<VTime>>)>>,
    /// Same idea for the reduction result: combining P contributions is
    /// O(P), so recomputing it per member made reduce/allreduce O(P²) per
    /// round.
    combined: Mutex<Option<(u64, Arc<Vec<u8>>)>>,
}

impl CollSlot {
    fn new(size: usize) -> Self {
        CollSlot {
            state: Mutex::new(SlotState {
                filling: true,
                arrived: 0,
                departed: 0,
                contribs: vec![None; size],
                published: None,
                seq: 0,
            }),
            ws: WaitSet::new(),
            exits: Mutex::new(None),
            combined: Mutex::new(None),
        }
    }

    /// Deposit `contrib` as member `me` of `size` and return the sequence
    /// number of this collective plus a shared view of everyone's
    /// contributions. `now` is the member's virtual clock on entry.
    ///
    /// # Panics
    /// Panics if not all members arrive within `timeout` (collective
    /// deadlock / mismatched membership), or if `me` deposits twice in one
    /// round (program error).
    pub fn exchange(
        &self,
        me: usize,
        size: usize,
        contrib: Contrib,
        now: VTime,
        timeout: Duration,
    ) -> (u64, Arc<Vec<Contrib>>) {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        // Wait out the drain phase of a previous collective.
        while !st.filling {
            st = self.wait_or_deadlock(st, deadline, now, size);
        }
        assert!(
            st.contribs[me].is_none(),
            "member {me} entered the same collective twice"
        );
        st.contribs[me] = Some(contrib);
        st.arrived += 1;
        if st.arrived == size {
            st.filling = false;
            let all: Vec<Contrib> = st
                .contribs
                .iter_mut()
                .map(|c| c.take().expect("all members deposited"))
                .collect();
            st.published = Some(Arc::new(all));
            self.ws.notify_all(now);
        } else {
            while st.filling {
                st = self.wait_or_deadlock(st, deadline, now, size);
            }
        }
        let seq = st.seq;
        let all = st.published.clone().expect("published by the last arriver");
        st.departed += 1;
        if st.departed == size {
            st.arrived = 0;
            st.departed = 0;
            st.published = None;
            st.seq += 1;
            st.filling = true;
            self.ws.notify_all(now);
        }
        (seq, all)
    }

    /// Exit-time vector for collective round `seq`, computing it at most
    /// once per round: the first member through runs `compute`, the rest
    /// reuse the memoised result. `compute` must be a pure function of the
    /// round's contributions (it is: the LogGP stage walk).
    pub fn cached_exits(&self, seq: u64, compute: impl FnOnce() -> Vec<VTime>) -> Arc<Vec<VTime>> {
        let mut cache = self.exits.lock();
        match &*cache {
            Some((s, exits)) if *s == seq => exits.clone(),
            _ => {
                let exits = Arc::new(compute());
                *cache = Some((seq, exits.clone()));
                exits
            }
        }
    }

    /// Combined reduction payload for collective round `seq`, computed at
    /// most once per round (every member passes the same `op`/`dtype` by
    /// MPI contract, so the result is a pure function of the round).
    pub fn cached_combined(&self, seq: u64, compute: impl FnOnce() -> Vec<u8>) -> Arc<Vec<u8>> {
        let mut cache = self.combined.lock();
        match &*cache {
            Some((s, bytes)) if *s == seq => bytes.clone(),
            _ => {
                let bytes = Arc::new(compute());
                *cache = Some((seq, bytes.clone()));
                bytes
            }
        }
    }

    fn wait_or_deadlock<'m>(
        &'m self,
        st: MutexGuard<'m, SlotState>,
        deadline: Instant,
        now: VTime,
        size: usize,
    ) -> MutexGuard<'m, SlotState> {
        let (st, timed_out) = self
            .ws
            .wait(&self.state, st, deadline, now, "MPI collective");
        if timed_out {
            panic!(
                "collective rendezvous stalled: {}/{} members arrived before timeout \
                 (mismatched collective call or deadlock in the simulated program?)",
                st.arrived, size
            );
        }
        st
    }
}

/// Shared communicator state (one per communicator per run).
#[derive(Debug)]
pub struct CommShared {
    /// Globally unique communicator id within the run.
    pub id: u32,
    /// Global ranks of the members, indexed by communicator-local rank.
    pub members: Vec<usize>,
    /// Collective rendezvous.
    pub slot: CollSlot,
}

impl CommShared {
    /// Create shared state for a communicator over `members`.
    pub fn new(id: u32, members: Vec<usize>) -> Arc<Self> {
        let n = members.len();
        Arc::new(CommShared {
            id,
            members,
            slot: CollSlot::new(n),
        })
    }
}

/// A per-process communicator handle.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) shared: Arc<CommShared>,
    pub(crate) my_rank: usize,
}

impl Comm {
    pub(crate) fn new(shared: Arc<CommShared>, my_rank: usize) -> Self {
        debug_assert!(my_rank < shared.members.len());
        Comm { shared, my_rank }
    }

    /// This process's rank within the communicator (`MPI_Comm_rank`).
    pub fn rank(&self) -> usize {
        self.my_rank
    }

    /// Number of members (`MPI_Comm_size`).
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// The communicator's run-unique id.
    pub fn id(&self) -> u32 {
        self.shared.id
    }

    /// Translate a communicator-local rank to a global (world) rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.shared.members[local]
    }

    /// The member list as global ranks.
    pub fn members(&self) -> &[usize] {
        &self.shared.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const T: Duration = Duration::from_secs(5);

    #[test]
    fn exchange_distributes_all_contributions() {
        let slot = Arc::new(CollSlot::new(4));
        let mut handles = Vec::new();
        for me in 0..4 {
            let slot = slot.clone();
            handles.push(thread::spawn(move || {
                let c = Contrib {
                    entry: VTime(me as u64 * 10),
                    data: vec![me as u8],
                    counts: None,
                };
                slot.exchange(me, 4, c, VTime::ZERO, T)
            }));
        }
        for h in handles {
            let (seq, all) = h.join().unwrap();
            assert_eq!(seq, 0);
            assert_eq!(all.len(), 4);
            for (i, c) in all.iter().enumerate() {
                assert_eq!(c.data, vec![i as u8]);
                assert_eq!(c.entry, VTime(i as u64 * 10));
            }
        }
    }

    #[test]
    fn sequence_numbers_advance_per_round() {
        let slot = Arc::new(CollSlot::new(2));
        let mut handles = Vec::new();
        for me in 0..2 {
            let slot = slot.clone();
            handles.push(thread::spawn(move || {
                let mut seqs = Vec::new();
                for _ in 0..5 {
                    let (seq, _) = slot.exchange(me, 2, Contrib::default(), VTime::ZERO, T);
                    seqs.push(seq);
                }
                seqs
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    #[should_panic(expected = "collective rendezvous stalled")]
    fn lone_member_times_out() {
        let slot = CollSlot::new(2);
        slot.exchange(
            0,
            2,
            Contrib::default(),
            VTime::ZERO,
            Duration::from_millis(50),
        );
    }

    #[test]
    fn cached_exits_computes_once_per_round() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let slot = CollSlot::new(2);
        let computed = AtomicUsize::new(0);
        let compute = || {
            computed.fetch_add(1, Ordering::Relaxed);
            vec![VTime(1), VTime(2)]
        };
        let a = slot.cached_exits(0, compute);
        let b = slot.cached_exits(0, || unreachable!("memoised"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(computed.load(Ordering::Relaxed), 1);
        let c = slot.cached_exits(1, || vec![VTime(9), VTime(9)]);
        assert_eq!(*c, vec![VTime(9), VTime(9)]);
    }

    #[test]
    fn comm_handle_accessors() {
        let shared = CommShared::new(3, vec![8, 9, 10]);
        let c = Comm::new(shared, 1);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.id(), 3);
        assert_eq!(c.global_rank(2), 10);
        assert_eq!(c.members(), &[8, 9, 10]);
    }
}
