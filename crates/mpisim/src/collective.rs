//! Virtual-time cost models for collective operations.
//!
//! Each model maps the members' entry times (plus payload sizes and the
//! [`MachineModel`]) to per-member exit times. The models are deliberately
//! simple binomial-tree / linear-root schedules — what MPICH-era MPIs
//! actually used — because the test suite needs the *wait-state shapes*
//! that define the paper's performance properties:
//!
//! * `Barrier`/`Alltoall`: everyone leaves after the last arriver
//!   (→ *Wait at Barrier*, *Wait at N×N*);
//! * `Bcast`/`Scatter[v]`: data flows root → members, so early members wait
//!   for a late root (→ *Late Broadcast*, *Late Scatter*);
//! * `Reduce`/`Gather[v]`: data flows members → root, so an early root
//!   waits for late members (→ *Early Reduce*, *Early Gather*).
//!
//! All models are pure functions, unit-tested in isolation from the
//! threaded runtime.

use ats_runtime::{MachineModel, VDur, VTime};
use ats_trace::CollOp;

/// Compute per-member exit times for one collective operation.
///
/// `entries[i]` is member `i`'s virtual clock on entry (communicator-local
/// indexing); `root` must be `Some` for rooted operations; `bytes[i]` is the
/// payload size associated with member `i` (meaning depends on the
/// operation: the chunk destined to/from member `i` for scatter/gather, the
/// uniform message size for bcast/reduce-style trees).
///
/// The returned exit times are always `>=` the corresponding entry times.
pub fn exits(
    op: CollOp,
    entries: &[VTime],
    root: Option<usize>,
    bytes: &[u64],
    model: &MachineModel,
) -> Vec<VTime> {
    let p = entries.len();
    assert!(p > 0, "collective over an empty communicator");
    assert_eq!(bytes.len(), p, "one byte count per member required");
    let mut out = match op {
        CollOp::Barrier => barrier_exits(entries, model),
        CollOp::Bcast => bcast_exits(entries, req_root(op, root), max_bytes(bytes), model),
        CollOp::Scatter | CollOp::Scatterv => {
            scatter_exits(entries, req_root(op, root), bytes, model)
        }
        CollOp::Gather | CollOp::Gatherv => gather_exits(entries, req_root(op, root), bytes, model),
        CollOp::Reduce => reduce_exits(entries, req_root(op, root), max_bytes(bytes), model),
        CollOp::Allreduce => {
            let t = last(entries) + stagev(model, max_bytes(bytes), 2 * model.tree_stages(p));
            vec![t; p]
        }
        CollOp::Allgather => {
            let total: u64 = bytes.iter().sum();
            let t = last(entries) + stagev(model, total, model.tree_stages(p));
            vec![t; p]
        }
        CollOp::Alltoall | CollOp::Alltoallv => {
            let t = last(entries) + model.latency + model.transfer(max_bytes(bytes) as usize);
            vec![t; p]
        }
        CollOp::Scan => scan_exits(entries, max_bytes(bytes), model),
        CollOp::OmpBarrier | CollOp::OmpFork | CollOp::OmpJoin => {
            unreachable!("shared-memory pseudo-collectives are priced by ats-omp")
        }
    };
    for (x, e) in out.iter_mut().zip(entries) {
        *x = (*x).max(*e);
    }
    out
}

/// Per-member waiting time implied by a set of entries/exits: the portion of
/// the member's occupancy spent before the operation could possibly
/// complete. Used by unit tests and by severity cross-checks.
pub fn imbalance_waits(entries: &[VTime]) -> Vec<VDur> {
    let latest = last(entries);
    entries.iter().map(|e| latest - *e).collect()
}

fn req_root(op: CollOp, root: Option<usize>) -> usize {
    root.unwrap_or_else(|| panic!("{op} requires a root"))
}

fn max_bytes(bytes: &[u64]) -> u64 {
    bytes.iter().copied().max().unwrap_or(0)
}

fn last(entries: &[VTime]) -> VTime {
    entries.iter().copied().max().unwrap_or(VTime::ZERO)
}

fn stagev(model: &MachineModel, bytes: u64, stages: u32) -> VDur {
    model.stage_cost(bytes as usize) * stages as u64
}

fn barrier_exits(entries: &[VTime], model: &MachineModel) -> Vec<VTime> {
    let p = entries.len();
    let t = last(entries) + stagev(model, 0, model.tree_stages(p));
    vec![t; p]
}

/// Highest power of two `<= rel` (rel >= 1).
fn msb(rel: usize) -> usize {
    1 << (usize::BITS - 1 - rel.leading_zeros())
}

fn bcast_exits(entries: &[VTime], root: usize, bytes: u64, model: &MachineModel) -> Vec<VTime> {
    let p = entries.len();
    let stage = model.stage_cost(bytes as usize);
    let abs = |rel: usize| (rel + root) % p;
    // avail[rel] = virtual time the payload is available at tree position rel.
    let mut avail = vec![VTime::ZERO; p];
    avail[0] = entries[root];
    #[allow(clippy::needless_range_loop)] // avail[rel] depends on avail[parent]
    for rel in 1..p {
        let parent = rel - msb(rel);
        // The parent forwards only once it has both entered and received.
        avail[rel] = avail[parent].max(entries[abs(parent)]) + stage;
    }
    let mut out = vec![VTime::ZERO; p];
    for (rel, &av) in avail.iter().enumerate() {
        let a = abs(rel);
        out[a] = if rel == 0 {
            // The root performs (at least) its first forwarding send.
            if p == 1 {
                entries[a]
            } else {
                entries[a] + stage
            }
        } else {
            entries[a].max(av) + model.recv_overhead
        };
    }
    out
}

fn reduce_exits(entries: &[VTime], root: usize, bytes: u64, model: &MachineModel) -> Vec<VTime> {
    let p = entries.len();
    let stage = model.stage_cost(bytes as usize);
    let abs = |rel: usize| (rel + root) % p;
    // send_time[rel] = when tree position rel has combined its subtree and
    // can send to its parent. Children have larger rel than their parent,
    // so a descending sweep sees children first.
    let mut send_time = vec![VTime::ZERO; p];
    for rel in (0..p).rev() {
        let mut ready = entries[abs(rel)];
        // children of rel: rel + 2^k for 2^k > rel, rel + 2^k < p
        let mut k = if rel == 0 { 1 } else { msb(rel) << 1 };
        while rel + k < p {
            ready = ready.max(send_time[rel + k] + stage);
            k <<= 1;
        }
        send_time[rel] = ready;
    }
    let mut out = vec![VTime::ZERO; p];
    for rel in 0..p {
        let a = abs(rel);
        out[a] = if rel == 0 {
            send_time[0]
        } else {
            send_time[rel] + model.send_overhead
        };
    }
    out
}

fn scatter_exits(
    entries: &[VTime],
    root: usize,
    bytes: &[u64],
    model: &MachineModel,
) -> Vec<VTime> {
    let p = entries.len();
    let mut out = vec![VTime::ZERO; p];
    let mut cursor = VDur::ZERO;
    for i in 0..p {
        if i == root {
            continue;
        }
        cursor += model.transfer(bytes[i] as usize);
        let arrival = entries[root] + cursor + model.latency;
        out[i] = entries[i].max(arrival) + model.recv_overhead;
    }
    out[root] = entries[root] + cursor + model.send_overhead;
    out
}

fn gather_exits(entries: &[VTime], root: usize, bytes: &[u64], model: &MachineModel) -> Vec<VTime> {
    let p = entries.len();
    let mut out = vec![VTime::ZERO; p];
    let mut latest_arrival = entries[root];
    let mut drain = VDur::ZERO;
    for i in 0..p {
        if i == root {
            continue;
        }
        out[i] = entries[i] + model.send_overhead;
        latest_arrival = latest_arrival.max(entries[i] + model.send_overhead + model.latency);
        drain += model.transfer(bytes[i] as usize);
    }
    out[root] = latest_arrival + drain;
    out
}

fn scan_exits(entries: &[VTime], bytes: u64, model: &MachineModel) -> Vec<VTime> {
    let p = entries.len();
    let stages = model.tree_stages(p);
    let mut out = vec![VTime::ZERO; p];
    let mut prefix_latest = VTime::ZERO;
    for i in 0..p {
        prefix_latest = prefix_latest.max(entries[i]);
        out[i] = prefix_latest + stagev(model, bytes, stages);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VTime {
        VTime(ms * 1_000_000)
    }

    fn zero() -> MachineModel {
        MachineModel::zero()
    }

    #[test]
    fn barrier_releases_all_at_last_entry() {
        let entries = vec![t(1), t(5), t(3)];
        let out = exits(CollOp::Barrier, &entries, None, &[0, 0, 0], &zero());
        assert_eq!(out, vec![t(5); 3]);
    }

    #[test]
    fn barrier_waits_match_imbalance() {
        let entries = vec![t(1), t(5), t(3)];
        let waits = imbalance_waits(&entries);
        assert_eq!(
            waits,
            vec![VDur::from_millis(4), VDur::ZERO, VDur::from_millis(2)]
        );
    }

    #[test]
    fn late_broadcast_blocks_everyone_on_root() {
        // Root (rank 0) enters at 100ms; others at ~0. With a zero model,
        // everyone exits exactly at the root's entry.
        let entries = vec![t(100), t(1), t(2), t(3)];
        let out = exits(CollOp::Bcast, &entries, Some(0), &[8; 4], &zero());
        assert_eq!(out, vec![t(100); 4]);
    }

    #[test]
    fn bcast_nonzero_root_indexing() {
        let entries = vec![t(0), t(0), t(50), t(0)];
        let out = exits(CollOp::Bcast, &entries, Some(2), &[8; 4], &zero());
        assert_eq!(out, vec![t(50); 4], "all wait for the late root (rank 2)");
    }

    #[test]
    fn bcast_with_early_root_releases_members_at_their_entry() {
        // Root at 0, members enter late: no waiting (exit == entry) under a
        // zero-cost model.
        let entries = vec![t(0), t(30), t(40), t(50)];
        let out = exits(CollOp::Bcast, &entries, Some(0), &[8; 4], &zero());
        assert_eq!(out[1], t(30));
        assert_eq!(out[2], t(40));
        assert_eq!(out[3], t(50));
    }

    #[test]
    fn bcast_stage_costs_follow_binomial_depth() {
        let mut m = zero();
        m.collective_stage = VDur::from_millis(1);
        let entries = vec![t(0); 8];
        let out = exits(CollOp::Bcast, &entries, Some(0), &[0; 8], &m);
        // Each hop along the binomial parent chain (clear the highest set
        // bit) adds one stage.
        assert_eq!(out[1], t(1)); // 0 -> 1
        assert_eq!(out[2], t(1)); // 0 -> 2
        assert_eq!(out[3], t(2)); // 0 -> 1 -> 3
        assert_eq!(out[4], t(1)); // 0 -> 4
        assert_eq!(out[7], t(3)); // 0 -> 1 -> 3 -> 7
    }

    #[test]
    fn early_reduce_root_waits_for_latest_member() {
        // Root enters first; members arrive late. Root's exit tracks the
        // latest member.
        let entries = vec![t(0), t(20), t(70), t(40)];
        let out = exits(CollOp::Reduce, &entries, Some(0), &[8; 4], &zero());
        assert_eq!(out[0], t(70));
        // Non-roots leave as soon as their subtree is combined: rel 1's
        // subtree is {1, 3}, so it leaves at max(20, 40) = 40.
        assert_eq!(out[2], t(70));
        assert_eq!(out[1], t(40));
    }

    #[test]
    fn reduce_leaf_exits_at_own_entry_with_zero_model() {
        let entries = vec![t(5), t(9), t(7), t(3)];
        let out = exits(CollOp::Reduce, &entries, Some(0), &[0; 4], &zero());
        // rel 3 (abs 3) is a leaf: exits at its own entry.
        assert_eq!(out[3], t(3));
    }

    #[test]
    fn late_scatter_everyone_waits_for_root() {
        let entries = vec![t(2), t(80), t(4), t(6)];
        let out = exits(CollOp::Scatter, &entries, Some(1), &[16; 4], &zero());
        for (i, x) in out.iter().enumerate() {
            if i != 1 {
                assert_eq!(*x, t(80), "member {i} must wait for the late root");
            }
        }
        assert_eq!(out[1], t(80));
    }

    #[test]
    fn scatter_serializes_root_transfers() {
        let mut m = zero();
        m.ns_per_byte = 1000.0; // 1us per byte
        let entries = vec![t(0); 3];
        let bytes = vec![1000, 1000, 1000]; // 1ms transfer each
        let out = exits(CollOp::Scatter, &entries, Some(0), &bytes, &m);
        assert_eq!(out[1], t(1));
        assert_eq!(out[2], t(2));
        assert_eq!(out[0], t(2));
    }

    #[test]
    fn early_gather_root_waits_senders_leave_quickly() {
        let entries = vec![t(0), t(30), t(60), t(10)];
        let out = exits(CollOp::Gather, &entries, Some(0), &[8; 4], &zero());
        assert_eq!(out[0], t(60), "root waits for last sender");
        assert_eq!(out[1], t(30));
        assert_eq!(out[2], t(60));
        assert_eq!(out[3], t(10));
    }

    #[test]
    fn alltoall_is_a_full_synchronization() {
        let entries = vec![t(9), t(1), t(5)];
        let out = exits(CollOp::Alltoall, &entries, None, &[64; 3], &zero());
        assert_eq!(out, vec![t(9); 3]);
    }

    #[test]
    fn allreduce_synchronizes_all() {
        let entries = vec![t(3), t(11), t(7)];
        let out = exits(CollOp::Allreduce, &entries, None, &[8; 3], &zero());
        assert_eq!(out, vec![t(11); 3]);
    }

    #[test]
    fn scan_depends_only_on_prefix() {
        let entries = vec![t(10), t(2), t(30), t(4)];
        let out = exits(CollOp::Scan, &entries, None, &[8; 4], &zero());
        assert_eq!(out[0], t(10));
        assert_eq!(out[1], t(10), "rank 1 waits for rank 0's late entry");
        assert_eq!(out[2], t(30));
        assert_eq!(out[3], t(30), "rank 3 waits for rank 2");
    }

    #[test]
    fn exits_never_precede_entries() {
        let entries = vec![t(100), t(1), t(50), t(2)];
        for op in [
            CollOp::Barrier,
            CollOp::Bcast,
            CollOp::Scatter,
            CollOp::Gather,
            CollOp::Reduce,
            CollOp::Allreduce,
            CollOp::Allgather,
            CollOp::Alltoall,
            CollOp::Scan,
        ] {
            let root = op.is_rooted().then_some(0);
            let out = exits(op, &entries, root, &[8; 4], &MachineModel::default());
            for (x, e) in out.iter().zip(&entries) {
                assert!(x >= e, "{op}: exit {x} before entry {e}");
            }
        }
    }

    #[test]
    fn singleton_communicator_is_trivial() {
        let entries = vec![t(7)];
        for op in [CollOp::Barrier, CollOp::Bcast, CollOp::Reduce, CollOp::Scan] {
            let root = op.is_rooted().then_some(0);
            let out = exits(op, &entries, root, &[128], &zero());
            assert_eq!(out, vec![t(7)], "{op} with p=1");
        }
    }

    #[test]
    #[should_panic(expected = "requires a root")]
    fn rooted_op_without_root_panics() {
        exits(CollOp::Bcast, &[t(0)], None, &[0], &zero());
    }
}
