//! MPI datatypes and reduction operators.
//!
//! The substrate moves raw bytes; datatypes give those bytes meaning for
//! reductions and for buffer sizing, mirroring the role of `MPI_Datatype` in
//! the paper's buffer-management component ("the data type argument is
//! needed to represent an MPI buffer", §3.1.3).

use std::fmt;

/// Element type of a typed message buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Datatype {
    /// 8-bit opaque byte (`MPI_BYTE`).
    Byte,
    /// 32-bit signed integer (`MPI_INT`).
    Int32,
    /// 64-bit signed integer (`MPI_LONG_LONG`).
    Int64,
    /// 32-bit IEEE float (`MPI_FLOAT`).
    Float32,
    /// 64-bit IEEE float (`MPI_DOUBLE`).
    Float64,
}

impl Datatype {
    /// Size of one element in bytes.
    pub fn size(self) -> usize {
        match self {
            Datatype::Byte => 1,
            Datatype::Int32 | Datatype::Float32 => 4,
            Datatype::Int64 | Datatype::Float64 => 8,
        }
    }

    /// The MPI-style name of this type.
    pub fn name(self) -> &'static str {
        match self {
            Datatype::Byte => "MPI_BYTE",
            Datatype::Int32 => "MPI_INT",
            Datatype::Int64 => "MPI_LONG_LONG",
            Datatype::Float32 => "MPI_FLOAT",
            Datatype::Float64 => "MPI_DOUBLE",
        }
    }
}

impl fmt::Display for Datatype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reduction operator (`MPI_Op`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise product.
    Prod,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

macro_rules! reduce_typed {
    ($ty:ty, $acc:expr, $inp:expr, $op:expr) => {{
        let n = std::mem::size_of::<$ty>();
        debug_assert_eq!($acc.len() % n, 0);
        for (a, b) in $acc.chunks_exact_mut(n).zip($inp.chunks_exact(n)) {
            let x = <$ty>::from_le_bytes(a.try_into().unwrap());
            let y = <$ty>::from_le_bytes(b.try_into().unwrap());
            let r: $ty = match $op {
                ReduceOp::Sum => x + y,
                ReduceOp::Prod => x * y,
                ReduceOp::Max => {
                    if y > x {
                        y
                    } else {
                        x
                    }
                }
                ReduceOp::Min => {
                    if y < x {
                        y
                    } else {
                        x
                    }
                }
            };
            a.copy_from_slice(&r.to_le_bytes());
        }
    }};
}

impl ReduceOp {
    /// Combine `input` into `acc` elementwise, interpreting both as little-
    /// endian arrays of `dtype`. Lengths must match and be a whole number of
    /// elements.
    pub fn combine(self, dtype: Datatype, acc: &mut [u8], input: &[u8]) {
        assert_eq!(
            acc.len(),
            input.len(),
            "reduction buffers must have equal length"
        );
        assert_eq!(
            acc.len() % dtype.size(),
            0,
            "reduction buffer not a whole number of {dtype} elements"
        );
        match dtype {
            Datatype::Byte => reduce_typed!(u8, acc, input, self),
            Datatype::Int32 => reduce_typed!(i32, acc, input, self),
            Datatype::Int64 => reduce_typed!(i64, acc, input, self),
            Datatype::Float32 => reduce_typed!(f32, acc, input, self),
            Datatype::Float64 => reduce_typed!(f64, acc, input, self),
        }
    }

    /// The identity element for this operator and type, as bytes.
    pub fn identity(self, dtype: Datatype) -> Vec<u8> {
        macro_rules! ident {
            ($ty:ty, $zero:expr, $one:expr, $min:expr, $max:expr) => {
                match self {
                    ReduceOp::Sum => ($zero as $ty).to_le_bytes().to_vec(),
                    ReduceOp::Prod => ($one as $ty).to_le_bytes().to_vec(),
                    ReduceOp::Max => ($min as $ty).to_le_bytes().to_vec(),
                    ReduceOp::Min => ($max as $ty).to_le_bytes().to_vec(),
                }
            };
        }
        match dtype {
            Datatype::Byte => ident!(u8, 0, 1, u8::MIN, u8::MAX),
            Datatype::Int32 => ident!(i32, 0, 1, i32::MIN, i32::MAX),
            Datatype::Int64 => ident!(i64, 0, 1, i64::MIN, i64::MAX),
            Datatype::Float32 => ident!(f32, 0.0, 1.0, f32::NEG_INFINITY, f32::INFINITY),
            Datatype::Float64 => ident!(f64, 0.0, 1.0, f64::NEG_INFINITY, f64::INFINITY),
        }
    }
}

/// Encode a slice of `i32` as a little-endian byte vector.
pub fn i32s_to_bytes(vals: &[i32]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode a little-endian byte slice as `i32`s.
pub fn bytes_to_i32s(bytes: &[u8]) -> Vec<i32> {
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Encode a slice of `f64` as a little-endian byte vector.
pub fn f64s_to_bytes(vals: &[f64]) -> Vec<u8> {
    vals.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Decode a little-endian byte slice as `f64`s.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Datatype::Byte.size(), 1);
        assert_eq!(Datatype::Int32.size(), 4);
        assert_eq!(Datatype::Int64.size(), 8);
        assert_eq!(Datatype::Float32.size(), 4);
        assert_eq!(Datatype::Float64.size(), 8);
    }

    #[test]
    fn sum_i32() {
        let mut acc = i32s_to_bytes(&[1, 2, 3]);
        let inp = i32s_to_bytes(&[10, 20, 30]);
        ReduceOp::Sum.combine(Datatype::Int32, &mut acc, &inp);
        assert_eq!(bytes_to_i32s(&acc), vec![11, 22, 33]);
    }

    #[test]
    fn max_min_f64() {
        let mut acc = f64s_to_bytes(&[1.0, 9.0]);
        let inp = f64s_to_bytes(&[5.0, 2.0]);
        ReduceOp::Max.combine(Datatype::Float64, &mut acc, &inp);
        assert_eq!(bytes_to_f64s(&acc), vec![5.0, 9.0]);
        let mut acc = f64s_to_bytes(&[1.0, 9.0]);
        ReduceOp::Min.combine(Datatype::Float64, &mut acc, &inp);
        assert_eq!(bytes_to_f64s(&acc), vec![1.0, 2.0]);
    }

    #[test]
    fn prod_i64() {
        let mut acc = vec![];
        acc.extend(2i64.to_le_bytes());
        let mut inp = vec![];
        inp.extend(21i64.to_le_bytes());
        ReduceOp::Prod.combine(Datatype::Int64, &mut acc, &inp);
        assert_eq!(i64::from_le_bytes(acc.try_into().unwrap()), 42);
    }

    #[test]
    fn identities_are_neutral() {
        for op in [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Max, ReduceOp::Min] {
            let mut acc = op.identity(Datatype::Int32);
            let inp = i32s_to_bytes(&[17]);
            op.combine(Datatype::Int32, &mut acc, &inp);
            assert_eq!(bytes_to_i32s(&acc), vec![17], "op {op:?}");
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let mut acc = vec![0u8; 4];
        ReduceOp::Sum.combine(Datatype::Int32, &mut acc, &[0u8; 8]);
    }

    #[test]
    fn byte_reduction() {
        let mut acc = vec![200u8];
        ReduceOp::Max.combine(Datatype::Byte, &mut acc, &[55u8]);
        assert_eq!(acc, vec![200]);
    }

    #[test]
    fn roundtrip_helpers() {
        let vals = vec![-1i32, 0, i32::MAX];
        assert_eq!(bytes_to_i32s(&i32s_to_bytes(&vals)), vals);
        let fs = vec![0.5f64, -2.25];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&fs)), fs);
    }
}
