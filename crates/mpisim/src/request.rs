//! Nonblocking communication requests.

use crate::comm::Comm;
use crate::mailbox::{Handshake, MatchSpec};
use ats_runtime::VTime;
use std::sync::Arc;

/// Completion status of a receive (`MPI_Status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Communicator-local rank of the message source.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// An in-flight nonblocking operation, completed by
/// [`crate::proc::Proc::wait`].
///
/// Requests own everything they need (buffers are returned on completion),
/// so any number can be outstanding; dropping a request without waiting on
/// it is a program error that MPI would also punish, and is reported by the
/// `Drop` guard in debug builds.
#[derive(Debug)]
pub struct Request(pub(crate) ReqInner);

#[derive(Debug)]
pub(crate) enum ReqInner {
    /// An eager `isend`: the message is already queued at the destination;
    /// completion only charges the local send overhead.
    SendEager { post: VTime },
    /// A rendezvous (large or synchronous) `isend`: completion blocks until
    /// the matching receive posts.
    SendRendezvous {
        post: VTime,
        bytes: usize,
        handshake: Arc<Handshake>,
    },
    /// An `irecv`: matching is deferred to the wait.
    Recv {
        post: VTime,
        spec: MatchSpec,
        comm: Comm,
    },
    /// Already waited on (or constructed empty).
    Done,
}

impl Request {
    /// True once the request has been completed by a wait.
    pub fn is_done(&self) -> bool {
        matches!(self.0, ReqInner::Done)
    }

    /// True if this is a receive request.
    pub fn is_recv(&self) -> bool {
        matches!(self.0, ReqInner::Recv { .. })
    }

    /// The virtual time at which the operation was posted (zero if done).
    pub fn post_time(&self) -> VTime {
        match &self.0 {
            ReqInner::SendEager { post }
            | ReqInner::SendRendezvous { post, .. }
            | ReqInner::Recv { post, .. } => *post,
            ReqInner::Done => VTime::ZERO,
        }
    }

    pub(crate) fn take(&mut self) -> ReqInner {
        std::mem::replace(&mut self.0, ReqInner::Done)
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        // Stay quiet while unwinding: a deadlock panic (or the event
        // scheduler cancelling sibling ranks after one panics) legitimately
        // drops live requests mid-operation, and a second panic here would
        // abort the process before the real diagnosis surfaces.
        debug_assert!(
            self.is_done() || std::thread::panicking(),
            "a Request was dropped without being waited on; \
             every isend/irecv must be completed (as in MPI)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_request_properties() {
        let r = Request(ReqInner::Done);
        assert!(r.is_done());
        assert!(!r.is_recv());
        assert_eq!(r.post_time(), VTime::ZERO);
    }

    #[test]
    fn send_request_reports_post_time() {
        let mut r = Request(ReqInner::SendEager { post: VTime(42) });
        assert!(!r.is_done());
        assert_eq!(r.post_time(), VTime(42));
        let inner = r.take();
        assert!(matches!(inner, ReqInner::SendEager { .. }));
        assert!(r.is_done());
    }

    #[test]
    #[should_panic(expected = "dropped without being waited")]
    #[cfg(debug_assertions)]
    fn dropping_live_request_panics_in_debug() {
        let _r = Request(ReqInner::SendEager { post: VTime(1) });
    }
}
