//! The per-process handle: clocks, work, point-to-point and collective
//! operations, and communicator management.
//!
//! One [`Proc`] is handed to the user closure on each simulated rank's
//! thread. Every MPI-like call (1) records an `Enter` event, (2) performs
//! the data movement through the shared-memory transport, (3) advances the
//! rank's virtual clock according to the [`ats_runtime::MachineModel`], and
//! (4) records the corresponding message/collective and `Exit` events.

use crate::collective;
use crate::comm::{Comm, CommShared, Contrib};
use crate::datatype::{Datatype, ReduceOp};
use crate::mailbox::{Envelope, Handshake, MatchSpec};
use crate::request::{ReqInner, Request, Status};
use crate::world::WorldShared;
use ats_runtime::{MachineModel, VDur, VTime, WorkEngine, WorkMode};
use ats_trace::{CollOp, LocalTrace, LocationId, RegionId, RegionKind, TraceCollector};
use std::sync::atomic::AtomicU32;
use std::sync::Arc;
use std::time::Duration;

/// Handle to one simulated MPI process. See the module docs.
pub struct Proc {
    rank: usize,
    nprocs: usize,
    clock: VTime,
    engine: WorkEngine,
    local: LocalTrace,
    collector: TraceCollector,
    world: Arc<WorldShared>,
    world_comm: Arc<CommShared>,
    r_work: RegionId,
    /// Pointer-keyed intern cache for the `&'static str` MPI region names:
    /// skips the shared table's lock + string hash on every call. Literals
    /// duplicated across codegen units at worst add a second entry — the
    /// table's ids stay consistent either way.
    interned: Vec<(usize, RegionId)>,
    work_mode: WorkMode,
    seed: u64,
    calibration: Option<f64>,
    thread_ids: Arc<AtomicU32>,
    omp_sync_ids: Arc<AtomicU32>,
}

impl Proc {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        nprocs: usize,
        engine: WorkEngine,
        collector: TraceCollector,
        world: Arc<WorldShared>,
        world_comm: Arc<CommShared>,
        work_mode: WorkMode,
        seed: u64,
        calibration: Option<f64>,
    ) -> Self {
        let local = collector.local(LocationId::rank(rank as u32));
        let r_work = collector.intern("do_work", RegionKind::Work);
        Proc {
            rank,
            nprocs,
            clock: VTime::ZERO,
            engine,
            local,
            collector,
            world,
            world_comm,
            r_work,
            interned: Vec::new(),
            work_mode,
            seed,
            calibration,
            thread_ids: Arc::new(AtomicU32::new(1)),
            // Per-rank OpenMP sync-id space, disjoint from MPI comm ids
            // (which stay far below 2^20) and from other ranks' spaces, so
            // team ids are deterministic regardless of rank scheduling.
            omp_sync_ids: Arc::new(AtomicU32::new((rank as u32 + 1) << 20)),
        }
    }

    // ----- identity and clock -------------------------------------------

    /// Global rank of this process.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of processes in the run.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// A handle to `MPI_COMM_WORLD`.
    pub fn comm_world(&self) -> Comm {
        Comm::new(self.world_comm.clone(), self.rank)
    }

    /// Current virtual time on this rank.
    pub fn clock(&self) -> VTime {
        self.clock
    }

    /// Overwrite the virtual clock (used by the hybrid OpenMP glue, which
    /// forks a thread team at the rank's clock and joins it back).
    ///
    /// # Panics
    /// Panics if `t` would move the clock backwards.
    pub fn set_clock(&mut self, t: VTime) {
        assert!(t >= self.clock, "clock may not move backwards");
        self.clock = t;
    }

    /// Advance the clock without recording work (pure delay).
    pub fn advance(&mut self, d: VDur) {
        self.clock += d;
    }

    /// This rank's private RNG stream.
    pub fn rng(&mut self) -> &mut ats_runtime::SplitMix64 {
        self.engine.rng()
    }

    /// The shared trace collector (for interning regions and for the
    /// hybrid glue, which creates additional per-thread local traces).
    pub fn collector(&self) -> &TraceCollector {
        &self.collector
    }

    // ----- hybrid (MPI × OpenMP) integration surface ----------------------
    //
    // These accessors exist so `ats-core` can adapt a rank into an
    // `ats_omp::Master` without coupling the two substrate crates.

    /// The rank's event stream (hybrid glue only).
    pub fn local_mut(&mut self) -> &mut LocalTrace {
        &mut self.local
    }

    /// The run's cost model.
    pub fn model(&self) -> &MachineModel {
        &self.world.model
    }

    /// The run's work mode.
    pub fn work_mode(&self) -> WorkMode {
        self.work_mode
    }

    /// The run's RNG root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The run's real-work calibration, if any.
    pub fn calibration(&self) -> Option<f64> {
        self.calibration
    }

    /// The run's deadlock budget.
    pub fn timeout(&self) -> Duration {
        self.world.timeout
    }

    /// Synchronization-context id allocator for OpenMP teams forked from
    /// this rank. Each rank owns the disjoint range `(rank+1)·2^20 ..`, so
    /// team ids are deterministic and never collide with MPI communicator
    /// ids (allocated from 0 upward).
    pub fn sync_ids(&self) -> Arc<AtomicU32> {
        self.omp_sync_ids.clone()
    }

    /// Trace-location thread-id allocator for OpenMP teams forked from
    /// this rank.
    pub fn thread_ids(&self) -> Arc<AtomicU32> {
        self.thread_ids.clone()
    }

    // ----- instrumentation ----------------------------------------------

    /// Intern a static region name through the per-rank pointer cache
    /// (a handful of entries, so a linear scan beats hashing the string).
    fn intern_static(&mut self, name: &'static str, kind: RegionKind) -> RegionId {
        let key = name.as_ptr() as usize;
        if let Some(&(_, id)) = self.interned.iter().find(|(k, _)| *k == key) {
            return id;
        }
        let id = self.collector.intern(name, kind);
        self.interned.push((key, id));
        id
    }

    /// Open a named region at the current clock (property-function frames
    /// and user phases).
    pub fn enter_region(&mut self, name: &str, kind: RegionKind) {
        let id = self.collector.intern(name, kind);
        self.local.enter(self.clock, id);
    }

    /// Close a named region at the current clock.
    pub fn exit_region(&mut self, name: &str) {
        let id = self.collector.intern(name, RegionKind::User);
        self.local.exit(self.clock, id);
    }

    // ----- work -----------------------------------------------------------

    /// The ATS `do_work`: consume `amount` of CPU time, recorded as a
    /// `do_work` region.
    pub fn do_work(&mut self, amount: VDur) {
        if amount.is_zero() {
            return;
        }
        self.local.enter(self.clock, self.r_work);
        self.engine.do_work(amount);
        self.clock += amount;
        self.local.exit(self.clock, self.r_work);
    }

    // ----- point-to-point -------------------------------------------------

    /// Blocking standard-mode send (`MPI_Send`): eager below the model's
    /// threshold, rendezvous above it.
    pub fn send(&mut self, data: &[u8], dest: usize, tag: i32, comm: &Comm) {
        let rendezvous = !self.world.model.is_eager(data.len());
        self.send_impl("MPI_Send", data, dest, tag, comm, rendezvous);
    }

    /// Blocking synchronous-mode send (`MPI_Ssend`): always rendezvous —
    /// completion requires the matching receive. This is the mode that
    /// makes the *Late Receiver* property observable at any message size.
    pub fn ssend(&mut self, data: &[u8], dest: usize, tag: i32, comm: &Comm) {
        self.send_impl("MPI_Ssend", data, dest, tag, comm, true);
    }

    fn send_impl(
        &mut self,
        region: &'static str,
        data: &[u8],
        dest: usize,
        tag: i32,
        comm: &Comm,
        rendezvous: bool,
    ) {
        assert!(dest < comm.size(), "send destination out of range");
        let r = self.intern_static(region, RegionKind::MpiP2p);
        let post = self.clock;
        self.local.enter(post, r);
        // Events carry *global* ranks (what a measurement system records);
        // matching metadata (comm, tag) rides along.
        self.local.send(
            post,
            comm.global_rank(dest) as u32,
            comm.id(),
            tag,
            data.len() as u64,
        );
        let handshake = rendezvous.then(|| Arc::new(Handshake::default()));
        let env = Envelope {
            comm: comm.id(),
            src: comm.rank() as u32,
            tag,
            data: data.to_vec(),
            send_post: post,
            handshake: handshake.clone(),
        };
        self.world.mailbox(comm.global_rank(dest)).push(env);
        let model = &self.world.model;
        self.clock = match handshake {
            None => post + model.send_overhead,
            Some(h) => {
                let recv_post = h.await_receiver(post, self.world.timeout);
                post.max(recv_post) + model.p2p_wire(data.len())
            }
        };
        self.local.exit(self.clock, r);
    }

    /// Blocking receive (`MPI_Recv`) from a specific source and tag.
    pub fn recv(&mut self, src: usize, tag: i32, comm: &Comm) -> (Vec<u8>, Status) {
        self.recv_select(Some(src), Some(tag), comm)
    }

    /// Blocking receive with optional wildcards (`MPI_ANY_SOURCE` /
    /// `MPI_ANY_TAG` expressed as `None`).
    pub fn recv_select(
        &mut self,
        src: Option<usize>,
        tag: Option<i32>,
        comm: &Comm,
    ) -> (Vec<u8>, Status) {
        let r = self.intern_static("MPI_Recv", RegionKind::MpiP2p);
        let post = self.clock;
        self.local.enter(post, r);
        let spec = MatchSpec {
            comm: comm.id(),
            src: src.map(|s| s as u32),
            tag,
        };
        let env = self
            .world
            .mailbox(comm.global_rank(comm.rank()))
            .take_match(spec, post, self.world.timeout);
        let (data, status, completion) = self.complete_recv(post, env, comm);
        self.clock = completion;
        self.local.exit(self.clock, r);
        (data, status)
    }

    /// Compute delivery time for a matched envelope and record the Recv
    /// event. Returns `(payload, status, completion_time)`.
    fn complete_recv(
        &mut self,
        post: VTime,
        env: Envelope,
        comm: &Comm,
    ) -> (Vec<u8>, Status, VTime) {
        let model = &self.world.model;
        let completion = match &env.handshake {
            None => {
                // Eager: message travels as soon as it was posted.
                (post + model.recv_overhead)
                    .max(env.send_post + model.send_overhead + model.p2p_wire(env.data.len()))
            }
            Some(h) => {
                // Rendezvous: transfer starts when both sides are ready.
                h.complete(post);
                post.max(env.send_post) + model.p2p_wire(env.data.len())
            }
        };
        let status = Status {
            source: env.src as usize,
            tag: env.tag,
            bytes: env.data.len(),
        };
        self.local.recv(
            completion,
            comm.global_rank(env.src as usize) as u32,
            env.comm,
            env.tag,
            env.data.len() as u64,
            post,
        );
        (env.data, status, completion)
    }

    /// Nonblocking standard-mode send (`MPI_Isend`).
    pub fn isend(&mut self, data: &[u8], dest: usize, tag: i32, comm: &Comm) -> Request {
        assert!(dest < comm.size(), "send destination out of range");
        let r = self.intern_static("MPI_Isend", RegionKind::MpiP2p);
        let post = self.clock;
        self.local.enter(post, r);
        self.local.send(
            post,
            comm.global_rank(dest) as u32,
            comm.id(),
            tag,
            data.len() as u64,
        );
        let rendezvous = !self.world.model.is_eager(data.len());
        let handshake = rendezvous.then(|| Arc::new(Handshake::default()));
        let env = Envelope {
            comm: comm.id(),
            src: comm.rank() as u32,
            tag,
            data: data.to_vec(),
            send_post: post,
            handshake: handshake.clone(),
        };
        self.world.mailbox(comm.global_rank(dest)).push(env);
        // Posting itself is cheap; the transfer cost is charged at wait.
        self.local.exit(self.clock, r);
        match handshake {
            None => Request(ReqInner::SendEager { post }),
            Some(h) => Request(ReqInner::SendRendezvous {
                post,
                bytes: data.len(),
                handshake: h,
            }),
        }
    }

    /// Nonblocking receive (`MPI_Irecv`). Matching happens at the wait, in
    /// wait order — sufficient for the suite's property functions, which
    /// keep at most one receive outstanding per peer.
    pub fn irecv(&mut self, src: usize, tag: i32, comm: &Comm) -> Request {
        let r = self.intern_static("MPI_Irecv", RegionKind::MpiP2p);
        let post = self.clock;
        self.local.enter(post, r);
        self.local.exit(post, r);
        Request(ReqInner::Recv {
            post,
            spec: MatchSpec {
                comm: comm.id(),
                src: Some(src as u32),
                tag: Some(tag),
            },
            comm: comm.clone(),
        })
    }

    /// Complete a nonblocking operation (`MPI_Wait`). For receives, returns
    /// the payload and status.
    pub fn wait(&mut self, req: &mut Request) -> Option<(Vec<u8>, Status)> {
        let r = self.intern_static("MPI_Wait", RegionKind::MpiP2p);
        let at = self.clock;
        self.local.enter(at, r);
        let result = match req.take() {
            ReqInner::Done => panic!("wait on an already-completed request"),
            ReqInner::SendEager { post } => {
                self.clock = at.max(post + self.world.model.send_overhead);
                None
            }
            ReqInner::SendRendezvous {
                post,
                bytes,
                handshake,
            } => {
                let recv_post = handshake.await_receiver(at, self.world.timeout);
                let done = post.max(recv_post) + self.world.model.p2p_wire(bytes);
                self.clock = at.max(done);
                None
            }
            ReqInner::Recv { post, spec, comm } => {
                let env = self
                    .world
                    .mailbox(comm.global_rank(comm.rank()))
                    .take_match(spec, at, self.world.timeout);
                let (data, status, completion) = self.complete_recv(post, env, &comm);
                self.clock = at.max(completion);
                Some((data, status))
            }
        };
        self.local.exit(self.clock, r);
        result
    }

    /// Complete exactly one request of a set (`MPI_Waitany`). Eager sends
    /// complete without blocking; otherwise the process blocks across all
    /// pending receive specs at once and completes whichever message comes
    /// first in *virtual* time — so the choice is deterministic and does
    /// not depend on request order or real-time arrival races. Returns the
    /// index completed and, for receives, the payload.
    pub fn waitany(&mut self, reqs: &mut [Request]) -> (usize, Option<(Vec<u8>, Status)>) {
        assert!(!reqs.is_empty(), "waitany on an empty request set");
        assert!(
            reqs.iter().any(|r| !r.is_done()),
            "waitany with all requests already completed"
        );
        // Eager sends are completable without blocking: finish the first.
        if let Some(i) = reqs
            .iter()
            .position(|r| matches!(r.0, ReqInner::SendEager { .. }))
        {
            return (i, self.wait(&mut reqs[i]));
        }
        // Block across *all* pending
        // receive specs at once (every Recv targets this process's single
        // mailbox); a message already queued is found by the initial scan
        // without blocking.
        let pending: Vec<(usize, MatchSpec)> = reqs
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match &r.0 {
                ReqInner::Recv { spec, .. } => Some((i, *spec)),
                _ => None,
            })
            .collect();
        if pending.is_empty() {
            // Only rendezvous sends remain: complete the first live one.
            let i = reqs
                .iter()
                .position(|r| !r.is_done())
                .expect("checked above");
            return (i, self.wait(&mut reqs[i]));
        }
        let specs: Vec<MatchSpec> = pending.iter().map(|&(_, s)| s).collect();
        let at = self.clock;
        let (si, env) =
            self.world
                .mailbox(self.rank)
                .take_match_any(&specs, at, self.world.timeout);
        let i = pending[si].0;
        let (post, comm) = match reqs[i].take() {
            ReqInner::Recv { post, comm, .. } => (post, comm),
            _ => unreachable!("pending holds receives"),
        };
        let r = self.intern_static("MPI_Wait", RegionKind::MpiP2p);
        self.local.enter(at, r);
        let (data, status, completion) = self.complete_recv(post, env, &comm);
        self.clock = at.max(completion);
        self.local.exit(self.clock, r);
        (i, Some((data, status)))
    }

    /// `MPI_Probe`: block until a matching message is available and return
    /// its status without receiving it.
    pub fn probe(&mut self, src: Option<usize>, tag: Option<i32>, comm: &Comm) -> Status {
        let r = self.intern_static("MPI_Probe", RegionKind::MpiP2p);
        let post = self.clock;
        self.local.enter(post, r);
        let spec = MatchSpec {
            comm: comm.id(),
            src: src.map(|s| s as u32),
            tag,
        };
        // Take and immediately put back: the mailbox keeps FIFO order per
        // source because we re-deliver before anyone else can observe the
        // queue (we hold no other messages).
        let mb = self.world.mailbox(comm.global_rank(comm.rank()));
        let env = mb.take_match(spec, post, self.world.timeout);
        let status = Status {
            source: env.src as usize,
            tag: env.tag,
            bytes: env.data.len(),
        };
        // The probe observes the message's arrival: clock advances to when
        // the message is available.
        let arrival = env.send_post
            + self.world.model.send_overhead
            + self.world.model.p2p_wire(env.data.len());
        mb.push_front(env);
        self.clock = self.clock.max(arrival);
        self.local.exit(self.clock, r);
        status
    }

    /// Complete a set of requests in order (`MPI_Waitall`).
    pub fn waitall(&mut self, reqs: &mut [Request]) -> Vec<Option<(Vec<u8>, Status)>> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    // ----- collectives ----------------------------------------------------

    /// Shared skeleton: record entry, rendezvous, price the operation,
    /// advance the clock, record completion. Returns a shared view of the
    /// gathered contributions for the data phase.
    fn coll_exchange(
        &mut self,
        op: CollOp,
        comm: &Comm,
        root: Option<usize>,
        data: Vec<u8>,
        counts: Option<Vec<usize>>,
        bytes_of: impl FnOnce(&[Contrib]) -> Vec<u64>,
    ) -> (u64, Arc<Vec<Contrib>>) {
        let r = self.intern_static(op.region_name(), RegionKind::MpiCollective);
        let entry = self.clock;
        self.local.enter(entry, r);
        let my_bytes = data.len() as u64;
        let (seq, all) = comm.shared.slot.exchange(
            comm.rank(),
            comm.size(),
            Contrib {
                entry,
                data,
                counts,
            },
            entry,
            self.world.timeout,
        );
        if let Some(obs) = &self.world.obs {
            obs.mpi.collectives.inc();
            obs.mpi
                .collective_rounds
                .add(self.world.model.tree_stages(comm.size()) as u64);
        }
        // One LogGP stage walk per collective, not per member: the exit
        // vector is a pure function of the round, memoised on the slot.
        let exits = comm.shared.slot.cached_exits(seq, || {
            let entries: Vec<VTime> = all.iter().map(|c| c.entry).collect();
            let bytes = bytes_of(&all);
            collective::exits(op, &entries, root, &bytes, &self.world.model)
        });
        let exit = exits[comm.rank()];
        self.clock = exit;
        self.local.coll_end(
            exit,
            op,
            comm.id(),
            root.map(|r| r as u32),
            seq,
            my_bytes,
            entry,
        );
        self.local.exit(exit, r);
        (seq, all)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: &Comm) {
        let p = comm.size();
        self.coll_exchange(CollOp::Barrier, comm, None, Vec::new(), None, |_| {
            vec![0; p]
        });
    }

    /// `MPI_Bcast`: on the root, `buf` is the payload; on other ranks it is
    /// replaced by the root's data.
    pub fn bcast(&mut self, buf: &mut Vec<u8>, root: usize, comm: &Comm) {
        let data = if comm.rank() == root {
            std::mem::take(buf)
        } else {
            Vec::new()
        };
        let p = comm.size();
        let (_, all) =
            self.coll_exchange(CollOp::Bcast, comm, Some(root), data, None, move |all| {
                vec![all[root].data.len() as u64; p]
            });
        *buf = all[root].data.clone();
    }

    /// `MPI_Scatter` with equal chunks: the root's `send` buffer is split
    /// into `size` equal parts; every rank receives its part.
    pub fn scatter(&mut self, send: &[u8], root: usize, comm: &Comm) -> Vec<u8> {
        let p = comm.size();
        let data = if comm.rank() == root {
            assert_eq!(send.len() % p, 0, "scatter buffer not divisible by size");
            send.to_vec()
        } else {
            Vec::new()
        };
        let (_, all) =
            self.coll_exchange(CollOp::Scatter, comm, Some(root), data, None, move |all| {
                let chunk = (all[root].data.len() / p) as u64;
                vec![chunk; p]
            });
        let chunk = all[root].data.len() / p;
        all[root].data[comm.rank() * chunk..(comm.rank() + 1) * chunk].to_vec()
    }

    /// `MPI_Scatterv`: the root supplies per-rank byte counts.
    pub fn scatterv(&mut self, send: &[u8], counts: &[usize], root: usize, comm: &Comm) -> Vec<u8> {
        let p = comm.size();
        let (data, counts_opt) = if comm.rank() == root {
            assert_eq!(counts.len(), p, "one count per rank required");
            assert_eq!(
                counts.iter().sum::<usize>(),
                send.len(),
                "counts must cover buffer"
            );
            (send.to_vec(), Some(counts.to_vec()))
        } else {
            (Vec::new(), None)
        };
        let (_, all) = self.coll_exchange(
            CollOp::Scatterv,
            comm,
            Some(root),
            data,
            counts_opt,
            move |all| {
                let counts = all[root].counts.as_ref().expect("root supplies counts");
                counts.iter().map(|&c| c as u64).collect()
            },
        );
        let counts = all[root].counts.as_ref().expect("root supplies counts");
        let offset: usize = counts[..comm.rank()].iter().sum();
        all[root].data[offset..offset + counts[comm.rank()]].to_vec()
    }

    /// `MPI_Gather`: the root receives the concatenation of all
    /// contributions in rank order.
    pub fn gather(&mut self, mine: &[u8], root: usize, comm: &Comm) -> Option<Vec<u8>> {
        let (_, all) = self.coll_exchange(
            CollOp::Gather,
            comm,
            Some(root),
            mine.to_vec(),
            None,
            |all| all.iter().map(|c| c.data.len() as u64).collect(),
        );
        (comm.rank() == root).then(|| all.iter().flat_map(|c| c.data.iter().copied()).collect())
    }

    /// `MPI_Gatherv` — identical to [`Proc::gather`] here because each
    /// contribution already carries its own length; kept separate so traces
    /// name the irregular operation, as the paper's property list does.
    pub fn gatherv(&mut self, mine: &[u8], root: usize, comm: &Comm) -> Option<Vec<u8>> {
        let (_, all) = self.coll_exchange(
            CollOp::Gatherv,
            comm,
            Some(root),
            mine.to_vec(),
            None,
            |all| all.iter().map(|c| c.data.len() as u64).collect(),
        );
        (comm.rank() == root).then(|| all.iter().flat_map(|c| c.data.iter().copied()).collect())
    }

    /// `MPI_Reduce`: elementwise combination delivered to the root.
    pub fn reduce(
        &mut self,
        mine: &[u8],
        op: ReduceOp,
        dtype: Datatype,
        root: usize,
        comm: &Comm,
    ) -> Option<Vec<u8>> {
        let p = comm.size();
        let (seq, all) = self.coll_exchange(
            CollOp::Reduce,
            comm,
            Some(root),
            mine.to_vec(),
            None,
            move |all| vec![all.iter().map(|c| c.data.len() as u64).max().unwrap_or(0); p],
        );
        (comm.rank() == root).then(|| {
            comm.shared
                .slot
                .cached_combined(seq, || combine_all(&all, op, dtype))
                .to_vec()
        })
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &mut self,
        mine: &[u8],
        op: ReduceOp,
        dtype: Datatype,
        comm: &Comm,
    ) -> Vec<u8> {
        let p = comm.size();
        let (seq, all) = self.coll_exchange(
            CollOp::Allreduce,
            comm,
            None,
            mine.to_vec(),
            None,
            move |all| vec![all.iter().map(|c| c.data.len() as u64).max().unwrap_or(0); p],
        );
        // O(P) per member: the first one through combines, the rest share.
        comm.shared
            .slot
            .cached_combined(seq, || combine_all(&all, op, dtype))
            .to_vec()
    }

    /// `MPI_Allgather`.
    pub fn allgather(&mut self, mine: &[u8], comm: &Comm) -> Vec<u8> {
        let (_, all) =
            self.coll_exchange(CollOp::Allgather, comm, None, mine.to_vec(), None, |all| {
                all.iter().map(|c| c.data.len() as u64).collect()
            });
        all.iter().flat_map(|c| c.data.iter().copied()).collect()
    }

    /// `MPI_Alltoall` with equal chunks: each rank's buffer is split into
    /// `size` chunks; rank `i` receives chunk `i` of every sender,
    /// concatenated in sender order.
    pub fn alltoall(&mut self, send: &[u8], comm: &Comm) -> Vec<u8> {
        let p = comm.size();
        assert_eq!(send.len() % p, 0, "alltoall buffer not divisible by size");
        let (_, all) =
            self.coll_exchange(CollOp::Alltoall, comm, None, send.to_vec(), None, |all| {
                all.iter().map(|c| c.data.len() as u64).collect()
            });
        let me = comm.rank();
        let mut out = Vec::with_capacity(send.len());
        for c in all.iter() {
            let chunk = c.data.len() / p;
            out.extend_from_slice(&c.data[me * chunk..(me + 1) * chunk]);
        }
        out
    }

    /// `MPI_Alltoallv`: fully irregular exchange. `send` is this rank's
    /// flattened buffer; `counts[d]` is the number of bytes destined to
    /// communicator rank `d`. Returns the received bytes concatenated in
    /// sender order. All ranks must agree on the (global) count matrix
    /// implicitly: rank `r` receives exactly what each sender addressed to
    /// it.
    pub fn alltoallv(&mut self, send: &[u8], counts: &[usize], comm: &Comm) -> Vec<u8> {
        let p = comm.size();
        assert_eq!(counts.len(), p, "one byte count per destination");
        assert_eq!(
            counts.iter().sum::<usize>(),
            send.len(),
            "counts must cover the send buffer"
        );
        let (_, all) = self.coll_exchange(
            CollOp::Alltoallv,
            comm,
            None,
            send.to_vec(),
            Some(counts.to_vec()),
            |all| all.iter().map(|c| c.data.len() as u64).collect(),
        );
        let me = comm.rank();
        let mut out = Vec::new();
        for c in all.iter() {
            let counts = c.counts.as_ref().expect("every member supplies counts");
            let offset: usize = counts[..me].iter().sum();
            out.extend_from_slice(&c.data[offset..offset + counts[me]]);
        }
        out
    }

    /// `MPI_Reduce_scatter_block`: elementwise reduction of equal-sized
    /// blocks, with block `i` delivered to rank `i`.
    pub fn reduce_scatter_block(
        &mut self,
        mine: &[u8],
        op: ReduceOp,
        dtype: Datatype,
        comm: &Comm,
    ) -> Vec<u8> {
        let p = comm.size();
        assert_eq!(mine.len() % p, 0, "buffer not divisible by size");
        // Priced like an allreduce (reduce + scatter phases share the
        // tree); data-wise it is a full reduction followed by block
        // extraction.
        let (seq, all) = self.coll_exchange(
            CollOp::Allreduce,
            comm,
            None,
            mine.to_vec(),
            None,
            move |all| vec![all.iter().map(|c| c.data.len() as u64).max().unwrap_or(0); p],
        );
        let combined = comm
            .shared
            .slot
            .cached_combined(seq, || combine_all(&all, op, dtype));
        let block = combined.len() / p;
        combined[comm.rank() * block..(comm.rank() + 1) * block].to_vec()
    }

    /// `MPI_Scan`: inclusive prefix reduction over ranks `0..=me`.
    pub fn scan(&mut self, mine: &[u8], op: ReduceOp, dtype: Datatype, comm: &Comm) -> Vec<u8> {
        let p = comm.size();
        let (_, all) =
            self.coll_exchange(CollOp::Scan, comm, None, mine.to_vec(), None, move |all| {
                vec![all.iter().map(|c| c.data.len() as u64).max().unwrap_or(0); p]
            });
        combine_all(&all[..=comm.rank()], op, dtype)
    }

    /// `MPI_Sendrecv`: combined send and receive with deadlock-free
    /// internal ordering (the send is posted nonblocking first).
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        send_data: &[u8],
        dest: usize,
        send_tag: i32,
        src: usize,
        recv_tag: i32,
        comm: &Comm,
    ) -> (Vec<u8>, Status) {
        let mut sreq = self.isend(send_data, dest, send_tag, comm);
        let (data, status) = self.recv(src, recv_tag, comm);
        self.wait(&mut sreq);
        (data, status)
    }

    // ----- communicator management ----------------------------------------

    /// `MPI_Comm_split`: group members by `color` (negative = do not join
    /// any new communicator, like `MPI_UNDEFINED`), ordered by `(key, old
    /// rank)`.
    pub fn comm_split(&mut self, color: i64, key: i64, comm: &Comm) -> Option<Comm> {
        let r = self
            .collector
            .intern("MPI_Comm_split", RegionKind::MpiSetup);
        let entry = self.clock;
        self.local.enter(entry, r);
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        let (seq, all) = comm.shared.slot.exchange(
            comm.rank(),
            comm.size(),
            Contrib {
                entry,
                data: payload,
                counts: None,
            },
            entry,
            self.world.timeout,
        );
        // Split is synchronizing: price it like a barrier.
        let exits = comm.shared.slot.cached_exits(seq, || {
            let entries: Vec<VTime> = all.iter().map(|c| c.entry).collect();
            collective::exits(
                CollOp::Barrier,
                &entries,
                None,
                &vec![0; comm.size()],
                &self.world.model,
            )
        });
        let exit = exits[comm.rank()];
        self.clock = exit;
        self.local.exit(exit, r);

        let decoded: Vec<(i64, i64)> = all
            .iter()
            .map(|c| {
                let color = i64::from_le_bytes(c.data[0..8].try_into().unwrap());
                let key = i64::from_le_bytes(c.data[8..16].try_into().unwrap());
                (color, key)
            })
            .collect();
        if color < 0 {
            return None;
        }
        // Members of my color, ordered by (key, old local rank).
        let mut group: Vec<(i64, usize)> = decoded
            .iter()
            .enumerate()
            .filter(|(_, (c, _))| *c == color)
            .map(|(old, (_, k))| (*k, old))
            .collect();
        group.sort_unstable();
        let members: Vec<usize> = group
            .iter()
            .map(|&(_, old)| comm.global_rank(old))
            .collect();
        let my_new_rank = group
            .iter()
            .position(|&(_, old)| old == comm.rank())
            .expect("caller is in its own color group");
        let shared = self.world.comm_for_group(comm.id(), seq, color, &members);
        Some(Comm::new(shared, my_new_rank))
    }

    /// `MPI_Comm_dup`: a communicator with identical membership but a
    /// separate matching space.
    pub fn comm_dup(&mut self, comm: &Comm) -> Comm {
        self.comm_split(0, comm.rank() as i64, comm)
            .expect("dup color is non-negative")
    }

    // ----- lifecycle (called by the world runner) --------------------------

    pub(crate) fn sim_init(&mut self, cost: VDur) {
        let r = self.intern_static("MPI_Init", RegionKind::MpiSetup);
        self.local.enter(self.clock, r);
        self.clock += cost;
        self.local.exit(self.clock, r);
    }

    pub(crate) fn sim_finalize(&mut self, cost: VDur) {
        let r = self.intern_static("MPI_Finalize", RegionKind::MpiSetup);
        let entry = self.clock;
        self.local.enter(entry, r);
        // Finalize synchronizes all ranks, like a world barrier.
        let comm = self.comm_world();
        let (_, all) = comm.shared.slot.exchange(
            comm.rank(),
            comm.size(),
            Contrib {
                entry,
                data: Vec::new(),
                counts: None,
            },
            entry,
            self.world.timeout,
        );
        let latest = all.iter().map(|c| c.entry).max().unwrap_or(entry);
        self.clock = latest + cost;
        self.local.exit(self.clock, r);
    }

    pub(crate) fn into_local(self) -> (LocalTrace, TraceCollector) {
        (self.local, self.collector)
    }
}

fn combine_all(contribs: &[Contrib], op: ReduceOp, dtype: Datatype) -> Vec<u8> {
    let mut iter = contribs.iter();
    let first = iter.next().expect("at least one contribution").data.clone();
    iter.fold(first, |mut acc, c| {
        op.combine(dtype, &mut acc, &c.data);
        acc
    })
}
