//! Point-to-point message transport: per-rank mailboxes with MPI matching
//! semantics.
//!
//! Every rank owns one [`Mailbox`]. A send (from any rank) pushes an
//! [`Envelope`]; a receive scans the mailbox in arrival order for the first
//! envelope matching `(communicator, source, tag)` — wildcards allowed —
//! and blocks on a [`WaitSet`] until one appears: a coroutine re-enters the
//! discrete-event queue on the event backend, an OS thread parks on a
//! condvar on the thread backend. Because each sender pushes its envelopes
//! in program order, arrival-order scanning yields MPI's non-overtaking
//! guarantee per (source, communicator, tag).

use ats_runtime::sched::{self, WaitSet};
use ats_runtime::VTime;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rendezvous handshake cell: the receiver deposits its post time, waking
/// the blocked (synchronous-mode) sender.
#[derive(Debug, Default)]
pub struct Handshake {
    slot: Mutex<Option<VTime>>,
    ws: WaitSet,
}

impl Handshake {
    /// Receiver side: publish the receive post time. The blocked sender
    /// resumes no earlier than `recv_post` on the event backend.
    pub fn complete(&self, recv_post: VTime) {
        *self.slot.lock() = Some(recv_post);
        self.ws.notify_all(recv_post);
    }

    /// Sender side: block until the receiver posts, returning its post time.
    /// `now` is the sender's virtual clock at the blocking point.
    ///
    /// # Panics
    /// Panics after `timeout` of inactivity — the test-suite's deadlock
    /// detector (thread backend; the event backend detects structurally).
    pub fn await_receiver(&self, now: VTime, timeout: Duration) -> VTime {
        let mut slot = self.slot.lock();
        let deadline = Instant::now() + timeout;
        while slot.is_none() {
            let (guard, timed_out) =
                self.ws
                    .wait(&self.slot, slot, deadline, now, "rendezvous send");
            slot = guard;
            if timed_out {
                panic!(
                    "rendezvous send blocked for {timeout:?}: matching receive never posted \
                     (deadlock in the simulated program?)"
                );
            }
        }
        slot.unwrap()
    }
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Communicator id the message was sent on.
    pub comm: u32,
    /// Communicator-local rank of the sender.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<u8>,
    /// Sender's virtual clock when the send was posted.
    pub send_post: VTime,
    /// Present for synchronous/rendezvous sends; the receiver must call
    /// [`Handshake::complete`] when it matches this envelope.
    pub handshake: Option<Arc<Handshake>>,
}

/// Matching selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Communicator to match (exact).
    pub comm: u32,
    /// Source rank (communicator-local), or `None` for `MPI_ANY_SOURCE`.
    pub src: Option<u32>,
    /// Tag, or `None` for `MPI_ANY_TAG`.
    pub tag: Option<i32>,
}

impl MatchSpec {
    fn matches(&self, env: &Envelope) -> bool {
        env.comm == self.comm
            && self.src.is_none_or(|s| s == env.src)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// One rank's incoming-message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    ws: WaitSet,
    obs: Option<ats_obs::Handle>,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty mailbox that records message counts and the
    /// high-water queue depth into `obs`.
    pub fn with_obs(obs: Option<ats_obs::Handle>) -> Self {
        Mailbox {
            obs,
            ..Self::default()
        }
    }

    /// Deliver an envelope (called from the sender's thread or task). A
    /// blocked receiver resumes no earlier than the send's post time.
    pub fn push(&self, env: Envelope) {
        let at = env.send_post;
        let mut q = self.queue.lock();
        q.push_back(env);
        if let Some(obs) = &self.obs {
            obs.mpi.messages.inc();
            obs.mpi.mailbox_depth_max.set_max(q.len() as u64);
        }
        drop(q);
        self.ws.notify_all(at);
    }

    /// Re-deliver an envelope at the *front* of the queue (used by probe,
    /// which must observe without disturbing matching order). Not counted
    /// as a new message — it was counted when first pushed.
    pub fn push_front(&self, env: Envelope) {
        let at = env.send_post;
        self.queue.lock().push_front(env);
        self.ws.notify_all(at);
    }

    /// Number of queued messages (diagnostics only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Remove and return the first envelope matching `spec`, blocking until
    /// one arrives. `now` is the receiver's virtual clock at the blocking
    /// point.
    ///
    /// # Panics
    /// Panics after `timeout` without a match (deadlock detection).
    pub fn take_match(&self, spec: MatchSpec, now: VTime, timeout: Duration) -> Envelope {
        self.take_match_any(std::slice::from_ref(&spec), now, timeout)
            .1
    }

    /// Remove and return the queued envelope with the earliest virtual send
    /// post that matches *any* of `specs`, blocking until one arrives.
    /// Returns the index of the spec it satisfied alongside the envelope —
    /// the matcher behind `waitany` as well as single-spec receives.
    ///
    /// # Panics
    /// Panics after `timeout` without a match (deadlock detection).
    pub fn take_match_any(
        &self,
        specs: &[MatchSpec],
        now: VTime,
        timeout: Duration,
    ) -> (usize, Envelope) {
        assert!(!specs.is_empty(), "take_match_any needs at least one spec");
        let mut q = self.queue.lock();
        let deadline = Instant::now() + timeout;
        // On the event backend the scheduler resumes a blocked receiver no
        // earlier than the waking send's post time and pops tasks in
        // virtual-time order, so every envelope with an earlier virtual
        // post is already queued when we scan: no real-time grace needed.
        // On the thread backend, when matching is ambiguous (wildcard
        // source, or several specs), grant one short real-time grace round
        // after the first candidate appears, so messages with *earlier
        // virtual post times* that are still in flight (their sender
        // threads not yet scheduled) can join the selection. This keeps
        // ANY_SOURCE matching as close to virtual-time order as an online
        // matcher can be.
        let coop = sched::in_task();
        let mut graced = coop || (specs.len() == 1 && specs[0].src.is_some());
        loop {
            // Among queued matches, prefer the earliest *virtual* send
            // (ties: lowest source, then arrival order, then spec order).
            // For exact-source receives this coincides with FIFO
            // (non-overtaking).
            let best = q
                .iter()
                .enumerate()
                .filter_map(|(i, e)| specs.iter().position(|s| s.matches(e)).map(|si| (i, si, e)))
                .min_by_key(|(i, si, e)| (e.send_post, e.src, *i, *si))
                .map(|(i, si, _)| (i, si));
            if let Some((pos, si)) = best {
                if !graced {
                    graced = true;
                    let _ = self.ws.wait_for_os(&mut q, Duration::from_micros(500));
                    continue;
                }
                return (si, q.remove(pos).expect("position came from iteration"));
            }
            let (guard, timed_out) = self.ws.wait(&self.queue, q, deadline, now, "MPI receive");
            q = guard;
            if timed_out {
                panic!(
                    "receive matching {specs:?} blocked for {timeout:?} with {} queued \
                     non-matching messages (deadlock in the simulated program?)",
                    q.len()
                );
            }
        }
    }

    /// Nonblocking variant of [`Mailbox::take_match`].
    pub fn try_take_match(&self, spec: MatchSpec) -> Option<Envelope> {
        let mut q = self.queue.lock();
        q.iter()
            .enumerate()
            .filter(|(_, e)| spec.matches(e))
            .min_by_key(|(i, e)| (e.send_post, e.src, *i))
            .map(|(i, _)| i)
            .and_then(|pos| q.remove(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(comm: u32, src: u32, tag: i32) -> Envelope {
        Envelope {
            comm,
            src,
            tag,
            data: vec![src as u8],
            send_post: VTime(src as u64),
            handshake: None,
        }
    }

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn exact_match_fifo_per_source() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5));
        mb.push(env(0, 1, 5));
        let spec = MatchSpec {
            comm: 0,
            src: Some(1),
            tag: Some(5),
        };
        let first = mb.take_match(spec, VTime::ZERO, T);
        assert_eq!(first.send_post, VTime(1));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn tag_mismatch_skipped() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5));
        mb.push(env(0, 1, 9));
        let got = mb.take_match(
            MatchSpec {
                comm: 0,
                src: Some(1),
                tag: Some(9),
            },
            VTime::ZERO,
            T,
        );
        assert_eq!(got.tag, 9);
        assert_eq!(mb.len(), 1, "the tag-5 message stays queued");
    }

    #[test]
    fn communicator_isolation() {
        let mb = Mailbox::new();
        mb.push(env(7, 0, 1));
        assert!(mb
            .try_take_match(MatchSpec {
                comm: 8,
                src: Some(0),
                tag: Some(1)
            })
            .is_none());
        assert!(mb
            .try_take_match(MatchSpec {
                comm: 7,
                src: Some(0),
                tag: Some(1)
            })
            .is_some());
    }

    #[test]
    fn wildcards_match_anything() {
        let mb = Mailbox::new();
        mb.push(env(0, 3, 42));
        let got = mb.take_match(
            MatchSpec {
                comm: 0,
                src: None,
                tag: None,
            },
            VTime::ZERO,
            T,
        );
        assert_eq!((got.src, got.tag), (3, 42));
    }

    #[test]
    fn blocking_receive_wakes_on_push() {
        // Re-expressed in virtual time (was: OS thread + sleep, racing the
        // wall clock): the receiver blocks at t=0, the sender delivers at
        // t=50ns, and the scheduler guarantees the wake-up ordering.
        let mb = Mailbox::new();
        let got = Mutex::new(None);
        sched::run_tasks(
            128 * 1024,
            vec![
                Box::new(|| {
                    let e = mb.take_match(
                        MatchSpec {
                            comm: 0,
                            src: Some(0),
                            tag: Some(0),
                        },
                        VTime::ZERO,
                        T,
                    );
                    *got.lock() = Some(e);
                }),
                Box::new(|| {
                    sched::yield_at(VTime(50));
                    mb.push(Envelope {
                        comm: 0,
                        src: 0,
                        tag: 0,
                        data: vec![9],
                        send_post: VTime(50),
                        handshake: None,
                    });
                }),
            ],
        );
        let e = got.into_inner().expect("receive completed");
        assert_eq!((e.src, e.send_post), (0, VTime(50)));
    }

    #[test]
    fn take_match_any_prefers_earliest_virtual_send() {
        let mb = Mailbox::new();
        mb.push(env(0, 3, 7));
        mb.push(env(0, 1, 7));
        let specs = [
            MatchSpec {
                comm: 0,
                src: Some(3),
                tag: None,
            },
            MatchSpec {
                comm: 0,
                src: Some(1),
                tag: None,
            },
        ];
        let (idx, got) = mb.take_match_any(&specs, VTime::ZERO, T);
        assert_eq!(
            (idx, got.src),
            (1, 1),
            "earliest virtual send wins, whichever spec it satisfies"
        );
        assert_eq!(mb.len(), 1);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn timeout_panics() {
        let mb = Mailbox::new();
        mb.take_match(
            MatchSpec {
                comm: 0,
                src: Some(0),
                tag: Some(0),
            },
            VTime::ZERO,
            Duration::from_millis(50),
        );
    }

    #[test]
    fn handshake_passes_post_time() {
        // Re-expressed in virtual time (was: OS thread + sleep).
        let h = Handshake::default();
        let seen = Mutex::new(None);
        sched::run_tasks(
            128 * 1024,
            vec![
                Box::new(|| *seen.lock() = Some(h.await_receiver(VTime::ZERO, T))),
                Box::new(|| {
                    sched::yield_at(VTime(123));
                    h.complete(VTime(123));
                }),
            ],
        );
        assert_eq!(seen.into_inner(), Some(VTime(123)));
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn handshake_timeout_panics() {
        Handshake::default().await_receiver(VTime::ZERO, Duration::from_millis(50));
    }
}
