//! Point-to-point message transport: per-rank mailboxes with MPI matching
//! semantics.
//!
//! Every rank owns one [`Mailbox`]. A send (from any rank) pushes an
//! [`Envelope`]; a receive scans the mailbox in arrival order for the first
//! envelope matching `(communicator, source, tag)` — wildcards allowed —
//! and blocks on a condition variable until one appears. Because each
//! sender pushes its envelopes in program order, arrival-order scanning
//! yields MPI's non-overtaking guarantee per (source, communicator, tag).

use ats_runtime::VTime;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rendezvous handshake cell: the receiver deposits its post time, waking
/// the blocked (synchronous-mode) sender.
#[derive(Debug, Default)]
pub struct Handshake {
    slot: Mutex<Option<VTime>>,
    cv: Condvar,
}

impl Handshake {
    /// Receiver side: publish the receive post time.
    pub fn complete(&self, recv_post: VTime) {
        *self.slot.lock() = Some(recv_post);
        self.cv.notify_all();
    }

    /// Sender side: block until the receiver posts, returning its post time.
    ///
    /// # Panics
    /// Panics after `timeout` of inactivity — the test-suite's deadlock
    /// detector.
    pub fn await_receiver(&self, timeout: Duration) -> VTime {
        let mut slot = self.slot.lock();
        let deadline = Instant::now() + timeout;
        while slot.is_none() {
            if self.cv.wait_until(&mut slot, deadline).timed_out() {
                panic!(
                    "rendezvous send blocked for {timeout:?}: matching receive never posted \
                     (deadlock in the simulated program?)"
                );
            }
        }
        slot.unwrap()
    }
}

/// A message in flight.
#[derive(Debug)]
pub struct Envelope {
    /// Communicator id the message was sent on.
    pub comm: u32,
    /// Communicator-local rank of the sender.
    pub src: u32,
    /// Message tag.
    pub tag: i32,
    /// Payload.
    pub data: Vec<u8>,
    /// Sender's virtual clock when the send was posted.
    pub send_post: VTime,
    /// Present for synchronous/rendezvous sends; the receiver must call
    /// [`Handshake::complete`] when it matches this envelope.
    pub handshake: Option<Arc<Handshake>>,
}

/// Matching selector for receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchSpec {
    /// Communicator to match (exact).
    pub comm: u32,
    /// Source rank (communicator-local), or `None` for `MPI_ANY_SOURCE`.
    pub src: Option<u32>,
    /// Tag, or `None` for `MPI_ANY_TAG`.
    pub tag: Option<i32>,
}

impl MatchSpec {
    fn matches(&self, env: &Envelope) -> bool {
        env.comm == self.comm
            && self.src.is_none_or(|s| s == env.src)
            && self.tag.is_none_or(|t| t == env.tag)
    }
}

/// One rank's incoming-message queue.
#[derive(Debug, Default)]
pub struct Mailbox {
    queue: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
    obs: Option<ats_obs::Handle>,
}

impl Mailbox {
    /// Create an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty mailbox that records message counts and the
    /// high-water queue depth into `obs`.
    pub fn with_obs(obs: Option<ats_obs::Handle>) -> Self {
        Mailbox {
            obs,
            ..Self::default()
        }
    }

    /// Deliver an envelope (called from the sender's thread).
    pub fn push(&self, env: Envelope) {
        let mut q = self.queue.lock();
        q.push_back(env);
        if let Some(obs) = &self.obs {
            obs.mpi.messages.inc();
            obs.mpi.mailbox_depth_max.set_max(q.len() as u64);
        }
        drop(q);
        self.cv.notify_all();
    }

    /// Re-deliver an envelope at the *front* of the queue (used by probe,
    /// which must observe without disturbing matching order). Not counted
    /// as a new message — it was counted when first pushed.
    pub fn push_front(&self, env: Envelope) {
        self.queue.lock().push_front(env);
        self.cv.notify_all();
    }

    /// Number of queued messages (diagnostics only).
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Remove and return the first envelope matching `spec`, blocking until
    /// one arrives.
    ///
    /// # Panics
    /// Panics after `timeout` without a match (deadlock detection).
    pub fn take_match(&self, spec: MatchSpec, timeout: Duration) -> Envelope {
        let mut q = self.queue.lock();
        let deadline = Instant::now() + timeout;
        // For wildcard sources, grant one short real-time grace round after
        // the first candidate appears, so messages with *earlier virtual
        // post times* that are still in flight (their sender threads not yet
        // scheduled) can join the selection. This keeps ANY_SOURCE matching
        // as close to virtual-time order as an online matcher can be.
        let mut graced = spec.src.is_some();
        loop {
            // Among queued matches, prefer the earliest *virtual* send
            // (ties: lowest source, then arrival order). For exact-source
            // receives this coincides with FIFO (non-overtaking).
            let pos = q
                .iter()
                .enumerate()
                .filter(|(_, e)| spec.matches(e))
                .min_by_key(|(i, e)| (e.send_post, e.src, *i))
                .map(|(i, _)| i);
            if let Some(pos) = pos {
                if !graced {
                    graced = true;
                    let _ = self.cv.wait_for(&mut q, Duration::from_micros(500));
                    continue;
                }
                return q.remove(pos).expect("position came from iteration");
            }
            if self.cv.wait_until(&mut q, deadline).timed_out() {
                panic!(
                    "receive matching {spec:?} blocked for {timeout:?} with {} queued \
                     non-matching messages (deadlock in the simulated program?)",
                    q.len()
                );
            }
        }
    }

    /// Nonblocking variant of [`Mailbox::take_match`].
    pub fn try_take_match(&self, spec: MatchSpec) -> Option<Envelope> {
        let mut q = self.queue.lock();
        q.iter()
            .enumerate()
            .filter(|(_, e)| spec.matches(e))
            .min_by_key(|(i, e)| (e.send_post, e.src, *i))
            .map(|(i, _)| i)
            .and_then(|pos| q.remove(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(comm: u32, src: u32, tag: i32) -> Envelope {
        Envelope {
            comm,
            src,
            tag,
            data: vec![src as u8],
            send_post: VTime(src as u64),
            handshake: None,
        }
    }

    const T: Duration = Duration::from_secs(2);

    #[test]
    fn exact_match_fifo_per_source() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5));
        mb.push(env(0, 1, 5));
        let spec = MatchSpec {
            comm: 0,
            src: Some(1),
            tag: Some(5),
        };
        let first = mb.take_match(spec, T);
        assert_eq!(first.send_post, VTime(1));
        assert_eq!(mb.len(), 1);
    }

    #[test]
    fn tag_mismatch_skipped() {
        let mb = Mailbox::new();
        mb.push(env(0, 1, 5));
        mb.push(env(0, 1, 9));
        let got = mb.take_match(
            MatchSpec {
                comm: 0,
                src: Some(1),
                tag: Some(9),
            },
            T,
        );
        assert_eq!(got.tag, 9);
        assert_eq!(mb.len(), 1, "the tag-5 message stays queued");
    }

    #[test]
    fn communicator_isolation() {
        let mb = Mailbox::new();
        mb.push(env(7, 0, 1));
        assert!(mb
            .try_take_match(MatchSpec {
                comm: 8,
                src: Some(0),
                tag: Some(1)
            })
            .is_none());
        assert!(mb
            .try_take_match(MatchSpec {
                comm: 7,
                src: Some(0),
                tag: Some(1)
            })
            .is_some());
    }

    #[test]
    fn wildcards_match_anything() {
        let mb = Mailbox::new();
        mb.push(env(0, 3, 42));
        let got = mb.take_match(
            MatchSpec {
                comm: 0,
                src: None,
                tag: None,
            },
            T,
        );
        assert_eq!((got.src, got.tag), (3, 42));
    }

    #[test]
    fn blocking_receive_wakes_on_push() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = mb.clone();
        let h = std::thread::spawn(move || {
            mb2.take_match(
                MatchSpec {
                    comm: 0,
                    src: Some(0),
                    tag: Some(0),
                },
                T,
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.push(env(0, 0, 0));
        let got = h.join().unwrap();
        assert_eq!(got.src, 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn timeout_panics() {
        let mb = Mailbox::new();
        mb.take_match(
            MatchSpec {
                comm: 0,
                src: Some(0),
                tag: Some(0),
            },
            Duration::from_millis(50),
        );
    }

    #[test]
    fn handshake_passes_post_time() {
        let h = Arc::new(Handshake::default());
        let h2 = h.clone();
        let waiter = std::thread::spawn(move || h2.await_receiver(T));
        std::thread::sleep(Duration::from_millis(10));
        h.complete(VTime(123));
        assert_eq!(waiter.join().unwrap(), VTime(123));
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn handshake_timeout_panics() {
        Handshake::default().await_receiver(Duration::from_millis(50));
    }
}
