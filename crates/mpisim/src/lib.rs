//! # ats-mpi
//!
//! A virtual-time MPI substrate: the message-passing layer on which the
//! ATS performance-property functions run.
//!
//! The paper's framework assumes a working MPI; this reproduction cannot
//! (repro note: no system MPI, thin bindings only), so the substrate is
//! built from scratch with the semantics that *define* the MPI performance
//! properties:
//!
//! * N ranks = N coroutines on a discrete-event scheduler (default; 10k+
//!   ranks in one process) or N OS threads — selectable via
//!   [`SimBackend`] — each with a virtual clock ([`ats_runtime`]);
//! * blocking/nonblocking point-to-point with per-(communicator, source,
//!   tag) matching, wildcards, non-overtaking order, and an eager /
//!   rendezvous protocol switch (→ *Late Sender*, *Late Receiver*);
//! * communicators with `split`/`dup` (→ the paper's Figure 3.4 two-
//!   communicator experiment);
//! * tree-modelled collectives (→ *Wait at Barrier*, *Late Broadcast*,
//!   *Early Reduce*, *Wait at N×N*, ...);
//! * every operation records EPILOG-style events into [`ats_trace`].
//!
//! Entry points: [`run`] / [`run_collect`] with a [`SimConfig`].
//!
//! ```
//! use ats_mpi::{run, SimConfig};
//! use ats_runtime::VDur;
//!
//! let trace = run(SimConfig::with_procs(2), |p| {
//!     let world = p.comm_world();
//!     if p.rank() == 0 {
//!         p.do_work(VDur::from_millis(5));
//!         p.send(b"hi", 1, 0, &world);
//!     } else {
//!         let (msg, _status) = p.recv(0, 0, &world);
//!         assert_eq!(msg, b"hi");
//!     }
//! });
//! assert_eq!(trace.num_locations(), 2);
//! ```

pub mod collective;
pub mod comm;
pub mod config;
pub mod datatype;
pub mod mailbox;
pub mod proc;
pub mod request;
pub mod topology;
pub mod world;

pub use ats_runtime::SimBackend;
pub use comm::Comm;
pub use config::SimConfig;
pub use datatype::{Datatype, ReduceOp};
pub use proc::Proc;
pub use request::{Request, Status};
pub use topology::{dims_create, CartComm};
pub use world::{run, run_collect};
