//! The run entry points: execute the user program once per simulated rank —
//! as coroutines on the discrete-event scheduler (default) or as one OS
//! thread per rank — and collect the merged trace.

use crate::comm::CommShared;
use crate::config::SimConfig;
use crate::mailbox::Mailbox;
use crate::proc::Proc;
use ats_runtime::{sched, MachineModel, SimBackend, WorkEngine};
use ats_trace::{Trace, TraceCollector};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared world state: the transport and the communicator broker.
pub(crate) struct WorldShared {
    mailboxes: Vec<Mailbox>,
    pub(crate) next_comm_id: Arc<AtomicU32>,
    /// `(parent comm id, parent collective seq, color) -> child comm`:
    /// the first member to ask creates the shared state, the rest reuse it.
    broker: Mutex<HashMap<(u32, u64, i64), Arc<CommShared>>>,
    pub(crate) model: MachineModel,
    pub(crate) timeout: Duration,
    pub(crate) obs: Option<ats_obs::Handle>,
    collector: TraceCollector,
}

impl WorldShared {
    pub(crate) fn mailbox(&self, global_rank: usize) -> &Mailbox {
        &self.mailboxes[global_rank]
    }

    pub(crate) fn comm_for_group(
        &self,
        parent: u32,
        seq: u64,
        color: i64,
        members: &[usize],
    ) -> Arc<CommShared> {
        let mut broker = self.broker.lock();
        let entry = broker
            .entry((parent, seq, color))
            .or_insert_with(|| {
                let id = self.next_comm_id.fetch_add(1, Ordering::Relaxed);
                self.collector
                    .register_comm(id, members.iter().map(|&m| m as u32).collect());
                CommShared::new(id, members.to_vec())
            })
            .clone();
        debug_assert_eq!(
            entry.members, members,
            "inconsistent group computation across members"
        );
        entry
    }
}

/// Run `f` on `config.nprocs` simulated ranks and return the merged trace.
///
/// The closure is executed once per rank — on a coroutine of the
/// discrete-event scheduler or on its own OS thread, per
/// `config.backend` — receiving that rank's [`Proc`] handle, exactly like
/// an SPMD `main` between `MPI_Init` and `MPI_Finalize`. Recorded traces
/// are byte-identical across backends.
///
/// # Panics
/// Propagates panics from ranks (including the substrate's deadlock
/// detectors).
pub fn run<F>(config: SimConfig, f: F) -> Trace
where
    F: Fn(&mut Proc) + Sync,
{
    run_collect(config, |p| f(p)).0
}

/// Like [`run`], but also returns each rank's result, ordered by rank.
/// Used by the validation suite to compare instrumented vs. uninstrumented
/// program outputs.
pub fn run_collect<R, F>(config: SimConfig, f: F) -> (Trace, Vec<R>)
where
    R: Send,
    F: Fn(&mut Proc) -> R + Sync,
{
    assert!(config.nprocs > 0, "need at least one process");
    let mut collector = if config.instrumented {
        TraceCollector::new()
    } else {
        TraceCollector::disabled()
    };
    if let Some(pool) = &config.trace_pool {
        collector = collector.with_pool(pool.clone());
    }
    // Pre-intern the substrate's region names in a fixed order so region
    // ids do not depend on which rank thread first reaches which call.
    {
        use ats_trace::RegionKind::*;
        for (name, kind) in [
            ("do_work", Work),
            ("MPI_Init", MpiSetup),
            ("MPI_Finalize", MpiSetup),
            ("MPI_Send", MpiP2p),
            ("MPI_Ssend", MpiP2p),
            ("MPI_Recv", MpiP2p),
            ("MPI_Isend", MpiP2p),
            ("MPI_Irecv", MpiP2p),
            ("MPI_Wait", MpiP2p),
            ("MPI_Probe", MpiP2p),
            ("MPI_Comm_split", MpiSetup),
        ] {
            collector.intern(name, kind);
        }
        for op in [
            ats_trace::CollOp::Barrier,
            ats_trace::CollOp::Bcast,
            ats_trace::CollOp::Scatter,
            ats_trace::CollOp::Scatterv,
            ats_trace::CollOp::Gather,
            ats_trace::CollOp::Gatherv,
            ats_trace::CollOp::Reduce,
            ats_trace::CollOp::Allreduce,
            ats_trace::CollOp::Allgather,
            ats_trace::CollOp::Alltoall,
            ats_trace::CollOp::Alltoallv,
            ats_trace::CollOp::Scan,
        ] {
            collector.intern(op.region_name(), ats_trace::RegionKind::MpiCollective);
        }
    }
    if let Some(obs) = &config.obs {
        obs.mpi.runs.inc();
        obs.mpi.ranks.add(config.nprocs as u64);
    }
    let world = Arc::new(WorldShared {
        mailboxes: (0..config.nprocs)
            .map(|_| Mailbox::with_obs(config.obs.clone()))
            .collect(),
        next_comm_id: Arc::new(AtomicU32::new(1)),
        broker: Mutex::new(HashMap::new()),
        model: config.model.clone(),
        timeout: config.progress_timeout,
        obs: config.obs.clone(),
        collector: collector.clone(),
    });
    collector.register_comm(0, (0..config.nprocs as u32).collect());
    let world_comm = CommShared::new(0, (0..config.nprocs).collect());

    let results: Vec<R> = match config.backend.effective() {
        SimBackend::Thread => run_threads(&config, &collector, &world, &world_comm, &f),
        SimBackend::Event => run_event(&config, &collector, &world, &world_comm, &f),
    };
    // The world holds a collector handle (for communicator registration);
    // release it before finalizing the trace.
    drop(world);
    (collector.finish(), results)
}

/// One rank's whole life: engine setup, `MPI_Init`, user body,
/// `MPI_Finalize`, trace submission. Identical on both backends.
fn run_rank<R, F>(
    rank: usize,
    config: &SimConfig,
    collector: TraceCollector,
    world: Arc<WorldShared>,
    world_comm: Arc<CommShared>,
    f: &F,
) -> R
where
    F: Fn(&mut Proc) -> R,
{
    let mut engine = WorkEngine::new(config.work_mode, config.seed, rank as u64);
    if let Some(rate) = config.calibration {
        engine.set_calibration(rate);
    }
    let mut proc = Proc::new(
        rank,
        config.nprocs,
        engine,
        collector.clone(),
        world,
        world_comm,
        config.work_mode,
        config.seed,
        config.calibration,
    );
    proc.sim_init(config.init_time);
    let result = f(&mut proc);
    proc.sim_finalize(config.finalize_time);
    let (local, _collector) = proc.into_local();
    if let Some(obs) = &config.obs {
        obs.mpi.events.add(local.len() as u64);
    }
    collector.submit(local);
    result
}

/// The legacy backend: one OS thread per rank, kept for one release as a
/// differential-testing oracle against the event scheduler.
fn run_threads<R, F>(
    config: &SimConfig,
    collector: &TraceCollector,
    world: &Arc<WorldShared>,
    world_comm: &Arc<CommShared>,
    f: &F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Proc) -> R + Sync,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..config.nprocs)
            .map(|rank| {
                let collector = collector.clone();
                let world = world.clone();
                let world_comm = world_comm.clone();
                s.spawn(move || run_rank(rank, config, collector, world, world_comm, f))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

/// The discrete-event backend: every rank is a coroutine on one scheduler
/// thread, a blocked receive or collective is a re-entry into the
/// virtual-clock ready queue, and rank counts scale to 10k+ per process.
fn run_event<R, F>(
    config: &SimConfig,
    collector: &TraceCollector,
    world: &Arc<WorldShared>,
    world_comm: &Arc<CommShared>,
    f: &F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Proc) -> R + Sync,
{
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..config.nprocs).map(|_| None).collect());
    let tasks: Vec<Box<dyn FnOnce() + '_>> = (0..config.nprocs)
        .map(|rank| {
            let collector = collector.clone();
            let world = world.clone();
            let world_comm = world_comm.clone();
            let results = &results;
            Box::new(move || {
                let result = run_rank(rank, config, collector, world, world_comm, f);
                results.lock()[rank] = Some(result);
            }) as Box<dyn FnOnce() + '_>
        })
        .collect();
    let stats = sched::run_tasks(config.task_stack_bytes, tasks);
    if let Some(obs) = &config.obs {
        obs.mpi.sched_events.add(stats.events);
        obs.mpi
            .sched_ready_depth_max
            .set_max(stats.max_ready as u64);
    }
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every rank task completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::{bytes_to_i32s, i32s_to_bytes, Datatype, ReduceOp};
    use ats_runtime::{VDur, VTime};
    use ats_trace::check_wellformed;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn ranks_and_world_comm() {
        let (_, ranks) = run_collect(cfg(4), |p| {
            let c = p.comm_world();
            assert_eq!(c.size(), 4);
            assert_eq!(c.rank(), p.rank());
            p.rank()
        });
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ping_pong_transfers_data_and_time() {
        let trace = run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.do_work(VDur::from_millis(10));
                p.send(b"hello", 1, 7, &c);
            } else {
                let (data, st) = p.recv(0, 7, &c);
                assert_eq!(data, b"hello");
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                // Receiver posted at 0 but message was sent at 10ms: a
                // late-sender wait of 10ms with the zero cost model.
                assert_eq!(p.clock(), VTime::from_secs(0.010));
            }
        });
        assert!(check_wellformed(&trace).is_empty());
        assert_eq!(trace.num_locations(), 2);
    }

    #[test]
    fn late_receiver_blocks_synchronous_sender() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.ssend(b"payload", 1, 0, &c);
                // Receiver posts at 25ms; rendezvous completes then.
                assert_eq!(p.clock(), VTime::from_secs(0.025));
            } else {
                p.do_work(VDur::from_millis(25));
                let _ = p.recv(0, 0, &c);
            }
        });
    }

    #[test]
    fn eager_send_does_not_block() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.send(b"x", 1, 0, &c);
                assert_eq!(p.clock(), VTime::ZERO, "eager send returns immediately");
            } else {
                p.do_work(VDur::from_millis(50));
                let _ = p.recv(0, 0, &c);
            }
        });
    }

    #[test]
    fn isend_irecv_wait_roundtrip() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                let mut req = p.isend(b"abc", 1, 3, &c);
                p.do_work(VDur::from_millis(5));
                p.wait(&mut req);
            } else {
                let mut req = p.irecv(0, 3, &c);
                p.do_work(VDur::from_millis(2));
                let (data, st) = p.wait(&mut req).expect("recv request yields data");
                assert_eq!(data, b"abc");
                assert_eq!(st.bytes, 3);
            }
        });
    }

    #[test]
    fn non_overtaking_same_source_tag() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.send(b"first", 1, 1, &c);
                p.send(b"second", 1, 1, &c);
            } else {
                let (a, _) = p.recv(0, 1, &c);
                let (b, _) = p.recv(0, 1, &c);
                assert_eq!(a, b"first");
                assert_eq!(b, b"second");
            }
        });
    }

    #[test]
    fn tagged_messages_match_out_of_order() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.send(b"tag5", 1, 5, &c);
                p.send(b"tag9", 1, 9, &c);
            } else {
                let (b9, _) = p.recv(0, 9, &c);
                let (b5, _) = p.recv(0, 5, &c);
                assert_eq!(b9, b"tag9");
                assert_eq!(b5, b"tag5");
            }
        });
    }

    #[test]
    fn wildcard_receive() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            match p.rank() {
                0 => {
                    let (_, st1) = p.recv_select(None, None, &c);
                    let (_, st2) = p.recv_select(None, None, &c);
                    let mut sources = vec![st1.source, st2.source];
                    sources.sort_unstable();
                    assert_eq!(sources, vec![1, 2]);
                }
                r => p.send(&[r as u8], 0, 0, &c),
            }
        });
    }

    #[test]
    fn barrier_aligns_clocks() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            p.do_work(VDur::from_millis(10 * (p.rank() as u64 + 1)));
            p.barrier(&c);
            assert_eq!(p.clock(), VTime::from_secs(0.040));
        });
    }

    #[test]
    fn bcast_delivers_root_payload() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let mut buf = if p.rank() == 2 {
                i32s_to_bytes(&[10, 20, 30])
            } else {
                Vec::new()
            };
            p.bcast(&mut buf, 2, &c);
            assert_eq!(bytes_to_i32s(&buf), vec![10, 20, 30]);
        });
    }

    #[test]
    fn scatter_gather_roundtrip() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let send: Vec<u8> = (0..16).collect();
            let mine = p.scatter(&send, 0, &c);
            assert_eq!(
                mine,
                ((p.rank() * 4) as u8..(p.rank() * 4 + 4) as u8).collect::<Vec<_>>()
            );
            let gathered = p.gather(&mine, 0, &c);
            if p.rank() == 0 {
                assert_eq!(gathered.unwrap(), send);
            } else {
                assert!(gathered.is_none());
            }
        });
    }

    #[test]
    fn scatterv_respects_counts() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            let send: Vec<u8> = (0..6).collect();
            let mine = p.scatterv(&send, &[1, 2, 3], 0, &c);
            match p.rank() {
                0 => assert_eq!(mine, vec![0]),
                1 => assert_eq!(mine, vec![1, 2]),
                2 => assert_eq!(mine, vec![3, 4, 5]),
                _ => unreachable!(),
            }
        });
    }

    #[test]
    fn reduce_and_allreduce_sum() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let mine = i32s_to_bytes(&[p.rank() as i32 + 1]);
            let total = p.reduce(&mine, ReduceOp::Sum, Datatype::Int32, 0, &c);
            if p.rank() == 0 {
                assert_eq!(bytes_to_i32s(&total.unwrap()), vec![10]);
            }
            let all = p.allreduce(&mine, ReduceOp::Max, Datatype::Int32, &c);
            assert_eq!(bytes_to_i32s(&all), vec![4]);
        });
    }

    #[test]
    fn alltoall_transposes() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            // Rank r sends byte (10*r + dest) to each dest.
            let send: Vec<u8> = (0..3).map(|d| (10 * p.rank() + d) as u8).collect();
            let recv = p.alltoall(&send, &c);
            let expect: Vec<u8> = (0..3).map(|s| (10 * s + p.rank()) as u8).collect();
            assert_eq!(recv, expect);
        });
    }

    #[test]
    fn allgather_concatenates() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            let got = p.allgather(&[p.rank() as u8], &c);
            assert_eq!(got, vec![0, 1, 2]);
        });
    }

    #[test]
    fn scan_prefix_sums() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let mine = i32s_to_bytes(&[1]);
            let pre = p.scan(&mine, ReduceOp::Sum, Datatype::Int32, &c);
            assert_eq!(bytes_to_i32s(&pre), vec![p.rank() as i32 + 1]);
        });
    }

    #[test]
    fn sendrecv_combined_exchanges_without_deadlock() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let right = (p.rank() + 1) % 4;
            let left = (p.rank() + 3) % 4;
            // Everyone sends right / receives from left simultaneously —
            // pure blocking sends would deadlock under rendezvous.
            let (data, st) = p.sendrecv(&[p.rank() as u8], right, 1, left, 1, &c);
            assert_eq!(data, vec![left as u8]);
            assert_eq!(st.source, left);
        });
    }

    #[test]
    fn comm_split_halves() {
        run(cfg(8), |p| {
            let c = p.comm_world();
            let color = (p.rank() / 4) as i64;
            let half = p.comm_split(color, p.rank() as i64, &c).unwrap();
            assert_eq!(half.size(), 4);
            assert_eq!(half.rank(), p.rank() % 4);
            assert_eq!(half.global_rank(0), if p.rank() < 4 { 0 } else { 4 });
            // Communication inside the halves must not cross.
            let got = p.allgather(&[p.rank() as u8], &half);
            let base = (p.rank() / 4 * 4) as u8;
            assert_eq!(got, vec![base, base + 1, base + 2, base + 3]);
        });
    }

    #[test]
    fn comm_split_undefined_color() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            let color = if p.rank() == 0 { -1 } else { 0 };
            let sub = p.comm_split(color, 0, &c);
            if p.rank() == 0 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 3);
            }
        });
    }

    #[test]
    fn comm_dup_preserves_layout_and_isolates_traffic() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            let d = p.comm_dup(&c);
            assert_eq!(d.rank(), c.rank());
            assert_eq!(d.size(), c.size());
            assert_ne!(d.id(), c.id());
            if p.rank() == 0 {
                p.send(b"on-dup", 1, 0, &d);
                p.send(b"on-world", 1, 0, &c);
            } else if p.rank() == 1 {
                // Receive world first even though dup was sent first.
                let (w, _) = p.recv(0, 0, &c);
                let (dd, _) = p.recv(0, 0, &d);
                assert_eq!(w, b"on-world");
                assert_eq!(dd, b"on-dup");
            }
        });
    }

    #[test]
    fn init_finalize_recorded_with_costs() {
        let mut config = cfg(2);
        config.init_time = VDur::from_millis(5);
        config.finalize_time = VDur::from_millis(3);
        let trace = run(config, |p| {
            p.do_work(VDur::from_millis(1));
        });
        let init = trace.find_region("MPI_Init").unwrap();
        let fin = trace.find_region("MPI_Finalize").unwrap();
        let stats = ats_trace::TraceStats::compute(&trace);
        for loc in &trace.locations {
            assert_eq!(
                stats.profiles[&loc.location][&init].inclusive,
                VDur::from_millis(5)
            );
            assert_eq!(
                stats.profiles[&loc.location][&fin].inclusive,
                VDur::from_millis(3)
            );
        }
    }

    #[test]
    fn uninstrumented_runs_produce_empty_traces_but_same_results() {
        let body = |p: &mut Proc| {
            let c = p.comm_world();
            let sum = p.allreduce(
                &i32s_to_bytes(&[p.rank() as i32]),
                ReduceOp::Sum,
                Datatype::Int32,
                &c,
            );
            bytes_to_i32s(&sum)[0]
        };
        let (t1, r1) = run_collect(cfg(4), body);
        let (t2, r2) = run_collect(cfg(4).uninstrumented(), body);
        assert_eq!(r1, r2, "instrumentation must not change program results");
        assert!(t1.num_events() > 0);
        assert_eq!(t2.num_events(), 0);
    }

    #[test]
    fn traces_are_deterministic_across_runs() {
        let body = |p: &mut Proc| {
            let c = p.comm_world();
            p.do_work(VDur::from_millis((p.rank() as u64 + 1) * 3));
            p.barrier(&c);
            if p.rank() == 0 {
                p.send(b"m", 1, 0, &c);
            } else if p.rank() == 1 {
                let _ = p.recv(0, 0, &c);
            }
            p.barrier(&c);
        };
        let mut a = run(cfg(4), body);
        let mut b = run(cfg(4), body);
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.locations, b.locations, "virtual time must be bit-stable");
    }

    #[test]
    fn all_traces_wellformed() {
        let trace = run(cfg(4), |p| {
            let c = p.comm_world();
            p.do_work(VDur::from_millis(1));
            p.barrier(&c);
            let _ = p.allgather(&[0u8], &c);
        });
        assert!(check_wellformed(&trace).is_empty());
    }

    #[test]
    fn single_process_world() {
        let trace = run(cfg(1), |p| {
            let c = p.comm_world();
            p.barrier(&c);
            let mut b = vec![1, 2, 3];
            p.bcast(&mut b, 0, &c);
            assert_eq!(b, vec![1, 2, 3]);
        });
        assert_eq!(trace.num_locations(), 1);
    }

    #[test]
    fn alltoallv_irregular_exchange() {
        run(cfg(3), |p| {
            let c = p.comm_world();
            // Rank r sends (d+1) copies of byte (10r+d) to destination d.
            let me = p.rank();
            let counts: Vec<usize> = (0..3).map(|d| d + 1).collect();
            let mut send = Vec::new();
            for d in 0..3 {
                send.extend(std::iter::repeat_n((10 * me + d) as u8, d + 1));
            }
            let recv = p.alltoallv(&send, &counts, &c);
            // I receive (me+1) bytes from each sender s, value 10s+me.
            let mut expect = Vec::new();
            for s in 0..3 {
                expect.extend(std::iter::repeat_n((10 * s + me) as u8, me + 1));
            }
            assert_eq!(recv, expect);
        });
    }

    #[test]
    fn reduce_scatter_block_delivers_owned_block() {
        run(cfg(4), |p| {
            let c = p.comm_world();
            // Each rank contributes [1, 2, 3, 4] per block; sum = 4x each.
            let mine = i32s_to_bytes(&[1, 2, 3, 4]);
            let block = p.reduce_scatter_block(&mine, ReduceOp::Sum, Datatype::Int32, &c);
            assert_eq!(bytes_to_i32s(&block), vec![(p.rank() as i32 + 1) * 4]);
        });
    }

    #[test]
    fn waitany_prefers_already_arrived_messages() {
        // Re-expressed in virtual time (was: wall-clock sleeps racing
        // loaded CI machines): rank 2 sends at t=0, rank 1 at t=30ms.
        // waitany must complete the earlier *virtual* send first even
        // though rank 1's request is listed first.
        run(cfg(3), |p| {
            let c = p.comm_world();
            match p.rank() {
                0 => {
                    let mut reqs = vec![p.irecv(1, 0, &c), p.irecv(2, 0, &c)];
                    let (idx, data) = p.waitany(&mut reqs);
                    assert_eq!(idx, 1, "the earlier virtual send completes first");
                    assert_eq!(data.unwrap().0, vec![2u8]);
                    let (idx2, data2) = p.waitany(&mut reqs);
                    assert_eq!(idx2, 0);
                    assert_eq!(data2.unwrap().0, vec![1u8]);
                }
                1 => {
                    p.do_work(VDur::from_millis(30));
                    p.send(&[1u8], 0, 0, &c);
                }
                _ => p.send(&[2u8], 0, 0, &c),
            }
        });
    }

    #[test]
    fn thread_and_event_backends_produce_identical_traces() {
        let body = |p: &mut Proc| {
            let c = p.comm_world();
            p.do_work(VDur::from_millis((p.rank() as u64 + 1) * 3));
            p.barrier(&c);
            if p.rank() == 0 {
                p.send(b"m", 1, 0, &c);
            } else if p.rank() == 1 {
                let _ = p.recv(0, 0, &c);
            }
            let _ = p.allgather(&[p.rank() as u8], &c);
        };
        let mut a = run(cfg(4), body);
        let mut b = run(cfg(4).backend(SimBackend::Thread), body);
        a.canonicalize();
        b.canonicalize();
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.locations, b.locations, "backends must agree bit-for-bit");
    }

    #[test]
    fn event_backend_hosts_many_ranks_cheaply() {
        // Far beyond what per-rank OS threads tolerate in a unit test.
        let (_, ranks) = run_collect(cfg(512), |p| {
            let c = p.comm_world();
            p.barrier(&c);
            p.rank()
        });
        assert_eq!(ranks.len(), 512);
        assert!(ranks.iter().enumerate().all(|(i, &r)| i == r));
    }

    #[test]
    fn probe_reports_without_consuming() {
        run(cfg(2), |p| {
            let c = p.comm_world();
            if p.rank() == 0 {
                p.do_work(VDur::from_millis(7));
                p.send(b"xyz", 1, 42, &c);
            } else {
                let st = p.probe(Some(0), None, &c);
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 42);
                assert_eq!(st.bytes, 3);
                assert_eq!(
                    p.clock(),
                    VTime::from_secs(0.007),
                    "probe waits for arrival"
                );
                // The message is still receivable afterwards.
                let (data, st2) = p.recv(0, 42, &c);
                assert_eq!(data, b"xyz");
                assert_eq!(st2.bytes, 3);
            }
        });
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        // Event backend: the scheduler cancels the surviving ranks
        // structurally (no timeout needed) and re-raises the original
        // panic payload.
        run(cfg(2), |p| {
            if p.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn rank_panic_propagates_thread_backend() {
        // Short progress timeout: the surviving rank blocks in finalize
        // once its peer dies, and must abort quickly rather than hang.
        let mut config = cfg(2).backend(SimBackend::Thread);
        config.progress_timeout = Duration::from_millis(100);
        run(config, |p| {
            if p.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
