//! Cartesian process topologies (`MPI_Cart_create` and friends).
//!
//! Stencil applications — the dominant shape in the paper's application
//! tier — address neighbours by grid coordinates, not ranks. This module
//! provides the MPI topology calls those codes use: balanced dimension
//! factorization (`MPI_Dims_create`), Cartesian communicators with optional
//! periodicity, rank↔coordinate translation, and neighbour shifts.

use crate::comm::Comm;
use crate::proc::Proc;

/// A Cartesian view over a communicator.
#[derive(Debug, Clone)]
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    periodic: Vec<bool>,
}

/// Factor `nnodes` into `ndims` balanced dimensions (`MPI_Dims_create`):
/// dimensions are as close to equal as possible, in non-increasing order.
pub fn dims_create(nnodes: usize, ndims: usize) -> Vec<usize> {
    assert!(nnodes > 0, "need at least one node");
    assert!(ndims > 0, "need at least one dimension");
    let mut dims = vec![1usize; ndims];
    let mut remaining = nnodes;
    // Repeatedly peel the largest prime factor onto the smallest dimension.
    let mut factors = Vec::new();
    let mut f = 2;
    while f * f <= remaining {
        while remaining.is_multiple_of(f) {
            factors.push(f);
            remaining /= f;
        }
        f += 1;
    }
    if remaining > 1 {
        factors.push(remaining);
    }
    for factor in factors.into_iter().rev() {
        let min = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| **d)
            .map(|(i, _)| i)
            .expect("ndims > 0");
        dims[min] *= factor;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

impl CartComm {
    /// The grid dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension periodicity.
    pub fn periodic(&self) -> &[bool] {
        &self.periodic
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// This process's grid coordinates (`MPI_Cart_coords` of own rank).
    pub fn coords(&self) -> Vec<usize> {
        self.coords_of(self.comm.rank())
    }

    /// Coordinates of any communicator rank (row-major, like MPI).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.comm.size(), "rank out of range");
        let mut rest = rank;
        let mut coords = vec![0; self.dims.len()];
        for (i, &d) in self.dims.iter().enumerate().rev() {
            coords[i] = rest % d;
            rest /= d;
        }
        coords
    }

    /// Rank of grid coordinates (`MPI_Cart_rank`). Out-of-range coordinates
    /// wrap in periodic dimensions and return `None` otherwise.
    pub fn rank_of(&self, coords: &[isize]) -> Option<usize> {
        assert_eq!(coords.len(), self.dims.len(), "one coordinate per dim");
        let mut rank = 0usize;
        for (i, (&c, &d)) in coords.iter().zip(&self.dims).enumerate() {
            let d = d as isize;
            let c = if self.periodic[i] {
                c.rem_euclid(d)
            } else if (0..d).contains(&c) {
                c
            } else {
                return None;
            };
            rank = rank * d as usize + c as usize;
        }
        Some(rank)
    }

    /// `MPI_Cart_shift`: the `(source, destination)` ranks for a shift of
    /// `disp` along `dim`. `None` marks an off-grid neighbour
    /// (`MPI_PROC_NULL`) in a non-periodic dimension.
    pub fn shift(&self, dim: usize, disp: isize) -> (Option<usize>, Option<usize>) {
        assert!(dim < self.dims.len(), "dimension out of range");
        let me: Vec<isize> = self.coords().iter().map(|&c| c as isize).collect();
        let mut dest = me.clone();
        dest[dim] += disp;
        let mut src = me;
        src[dim] -= disp;
        (self.rank_of(&src), self.rank_of(&dest))
    }
}

impl Proc {
    /// `MPI_Cart_create`: impose a Cartesian topology on `comm`. The grid
    /// must exactly cover the communicator. Rank order is preserved
    /// (`reorder = false`), so the returned view shares `comm`'s matching
    /// space via a duplicate.
    pub fn cart_create(&mut self, comm: &Comm, dims: &[usize], periodic: &[bool]) -> CartComm {
        assert_eq!(dims.len(), periodic.len(), "one periodicity flag per dim");
        assert_eq!(
            dims.iter().product::<usize>(),
            comm.size(),
            "grid must cover the communicator exactly"
        );
        let dup = self.comm_dup(comm);
        CartComm {
            comm: dup,
            dims: dims.to_vec(),
            periodic: periodic.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use ats_runtime::{MachineModel, VDur};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn dims_create_balances() {
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(16, 2), vec![4, 4]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 2), vec![1, 1]);
        assert_eq!(dims_create(30, 2), vec![6, 5]);
    }

    #[test]
    fn coords_roundtrip_row_major() {
        crate::run(cfg(6), |p| {
            let world = p.comm_world();
            let cart = p.cart_create(&world, &[2, 3], &[false, false]);
            let coords = cart.coords();
            // Row-major: rank = x*3 + y.
            assert_eq!(p.rank(), coords[0] * 3 + coords[1]);
            let back = cart.rank_of(&[coords[0] as isize, coords[1] as isize]);
            assert_eq!(back, Some(p.rank()));
        });
    }

    #[test]
    fn shift_nonperiodic_has_null_edges() {
        crate::run(cfg(4), |p| {
            let world = p.comm_world();
            let cart = p.cart_create(&world, &[4], &[false]);
            let (src, dst) = cart.shift(0, 1);
            match p.rank() {
                0 => {
                    assert_eq!(src, None, "nothing to my left");
                    assert_eq!(dst, Some(1));
                }
                3 => {
                    assert_eq!(src, Some(2));
                    assert_eq!(dst, None, "nothing to my right");
                }
                r => {
                    assert_eq!(src, Some(r - 1));
                    assert_eq!(dst, Some(r + 1));
                }
            }
        });
    }

    #[test]
    fn shift_periodic_wraps() {
        crate::run(cfg(4), |p| {
            let world = p.comm_world();
            let cart = p.cart_create(&world, &[4], &[true]);
            let (src, dst) = cart.shift(0, 1);
            assert_eq!(src, Some((p.rank() + 3) % 4));
            assert_eq!(dst, Some((p.rank() + 1) % 4));
        });
    }

    #[test]
    fn cart_comm_carries_real_traffic() {
        // 2x2 torus: exchange along dimension 0.
        crate::run(cfg(4), |p| {
            let world = p.comm_world();
            let cart = p.cart_create(&world, &[2, 2], &[true, true]);
            let (src, dst) = cart.shift(0, 1);
            let comm = cart.comm().clone();
            let mut req = p.isend(&[p.rank() as u8], dst.unwrap(), 5, &comm);
            let (data, _) = p.recv(src.unwrap(), 5, &comm);
            p.wait(&mut req);
            assert_eq!(data, vec![src.unwrap() as u8]);
        });
    }

    #[test]
    #[should_panic(expected = "grid must cover")]
    fn wrong_grid_size_panics() {
        crate::run(cfg(4), |p| {
            let world = p.comm_world();
            let _ = p.cart_create(&world, &[3], &[false]);
        });
    }

    #[test]
    fn two_d_shift_both_dimensions() {
        crate::run(cfg(6), |p| {
            let world = p.comm_world();
            let cart = p.cart_create(&world, &[2, 3], &[true, true]);
            let c = cart.coords();
            let (_, down) = cart.shift(0, 1);
            let (_, right) = cart.shift(1, 1);
            assert_eq!(
                cart.coords_of(down.unwrap()),
                vec![(c[0] + 1) % 2, c[1]],
                "dim-0 neighbour"
            );
            assert_eq!(
                cart.coords_of(right.unwrap()),
                vec![c[0], (c[1] + 1) % 3],
                "dim-1 neighbour"
            );
        });
    }
}
