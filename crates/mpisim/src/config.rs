//! Simulation run configuration.

use ats_runtime::{MachineModel, SimBackend, VDur, WorkMode};
use ats_trace::TracePool;
use std::time::Duration;

/// Configuration of one simulated MPI run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of MPI processes.
    pub nprocs: usize,
    /// Communication cost model.
    pub model: MachineModel,
    /// Whether `do_work` burns host CPU or only virtual time.
    pub work_mode: WorkMode,
    /// Root seed for all per-participant RNG streams.
    pub seed: u64,
    /// Simulated cost of `MPI_Init`. The paper's Fig. 3.2 remarks that the
    /// *High MPI Initialization/Finalization Overhead* property is "hard to
    /// avoid in the view of the small sizes of the test programs" — this
    /// knob reproduces it.
    pub init_time: VDur,
    /// Simulated cost of `MPI_Finalize`.
    pub finalize_time: VDur,
    /// Whether the run records a trace (instrumented) or not.
    pub instrumented: bool,
    /// Wall-clock budget for any single blocking operation before the run
    /// is declared deadlocked and aborted. A test *suite* must fail fast on
    /// substrate bugs rather than hang CI.
    pub progress_timeout: Duration,
    /// Calibrated busy-loop rate for real work mode (`None` = library
    /// default; see [`ats_runtime::work::DEFAULT_ITERS_PER_SEC`]).
    pub calibration: Option<f64>,
    /// Event-buffer pool the run's ranks draw from (`None` = fresh
    /// vectors). Pooling reuses capacity only; recorded traces are
    /// identical either way.
    pub trace_pool: Option<TracePool>,
    /// Observability registry the run records into (`None` = no
    /// recording). Like the pool, this never changes recorded traces.
    pub obs: Option<ats_obs::Handle>,
    /// Execution backend: one coroutine per rank on a discrete-event
    /// scheduler (default), or one OS thread per rank. Recorded traces are
    /// byte-identical either way; the thread backend survives as a
    /// differential-testing oracle.
    pub backend: SimBackend,
    /// Stack size for each rank coroutine on the event backend (ignored by
    /// the thread backend). Rank bodies are shallow — the default leaves
    /// generous headroom — but deep user closures can raise it.
    pub task_stack_bytes: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nprocs: 4,
            model: MachineModel::default(),
            work_mode: WorkMode::Virtual,
            seed: 0x05EE_DA75,
            init_time: VDur::from_millis(1),
            finalize_time: VDur::from_millis(1),
            instrumented: true,
            progress_timeout: Duration::from_secs(30),
            calibration: None,
            trace_pool: None,
            obs: None,
            backend: SimBackend::default(),
            task_stack_bytes: 512 * 1024,
        }
    }
}

impl SimConfig {
    /// A config with `nprocs` processes and defaults otherwise.
    pub fn with_procs(nprocs: usize) -> Self {
        SimConfig {
            nprocs,
            ..Default::default()
        }
    }

    /// Builder: set the machine model.
    pub fn model(mut self, model: MachineModel) -> Self {
        self.model = model;
        self
    }

    /// Builder: set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: run with real (calibrated busy-loop) work.
    pub fn real_work(mut self) -> Self {
        self.work_mode = WorkMode::Real;
        self
    }

    /// Builder: disable trace recording.
    pub fn uninstrumented(mut self) -> Self {
        self.instrumented = false;
        self
    }

    /// Builder: set init/finalize overheads.
    pub fn setup_costs(mut self, init: VDur, finalize: VDur) -> Self {
        self.init_time = init;
        self.finalize_time = finalize;
        self
    }

    /// Builder: draw event buffers from `pool` instead of allocating.
    pub fn trace_pool(mut self, pool: TracePool) -> Self {
        self.trace_pool = Some(pool);
        self
    }

    /// Builder: record run/message/collective metrics into `obs`.
    pub fn obs(mut self, obs: ats_obs::Handle) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Builder: select the execution backend.
    pub fn backend(mut self, backend: SimBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: set the per-rank coroutine stack size (event backend).
    pub fn task_stack_bytes(mut self, bytes: usize) -> Self {
        self.task_stack_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = SimConfig::default();
        assert_eq!(c.nprocs, 4);
        assert!(c.instrumented);
        assert_eq!(c.work_mode, WorkMode::Virtual);
        assert_eq!(c.backend, SimBackend::Event);
        assert!(c.task_stack_bytes >= 64 * 1024);
    }

    #[test]
    fn backend_builder() {
        let c = SimConfig::default().backend(SimBackend::Thread);
        assert_eq!(c.backend, SimBackend::Thread);
        assert_eq!(c.backend.effective(), SimBackend::Thread);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::with_procs(8)
            .seed(7)
            .uninstrumented()
            .setup_costs(VDur::from_millis(50), VDur::from_millis(20));
        assert_eq!(c.nprocs, 8);
        assert_eq!(c.seed, 7);
        assert!(!c.instrumented);
        assert_eq!(c.init_time, VDur::from_millis(50));
        assert_eq!(c.finalize_time, VDur::from_millis(20));
    }

    #[test]
    fn real_work_builder() {
        assert_eq!(SimConfig::default().real_work().work_mode, WorkMode::Real);
    }
}
