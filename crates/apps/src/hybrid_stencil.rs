//! A hybrid MPI × OpenMP stencil: the SR-8000-style programming model the
//! paper's hybrid property catalog targets.
//!
//! Each rank owns a slab of rows; per sweep, a thread team relaxes the
//! slab in a worksharing loop, then the rank exchanges boundary rows with
//! its neighbours and synchronizes globally. The thread-level schedule is
//! the knob: static chunks over uniform rows are clean; static chunks over
//! cost-skewed rows idle most of the team at the loop barrier, and the
//! slowest rank's team drags everyone into the MPI barrier.

use crate::AppSpec;
use ats_core::{with_omp, Distr};
use ats_mpi::{Proc, SimConfig};
use ats_omp::{parallel, Schedule};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "hybrid_stencil",
    description: "MPI slab decomposition with an OpenMP worksharing loop per sweep",
    structure: "per sweep: omp for over rows -> halo sendrecv -> MPI_Barrier",
    balanced_behavior: "uniform rows: loop barrier and MPI barrier are both wait-free",
    imbalanced_properties: &["OmpWaitAtBarrier", "WaitAtBarrier"],
};

/// Configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Ranks.
    pub nprocs: usize,
    /// Threads per rank.
    pub nthreads: usize,
    /// Sweeps.
    pub sweeps: usize,
    /// Rows per rank.
    pub rows: usize,
    /// Per-row cost distribution over row indices (uniform = clean;
    /// skewed = the pathological mode). The distribution is evaluated
    /// over the row index within the rank.
    pub row_cost: Distr,
    /// Whether the rank-level slabs are also skewed (adds the MPI-level
    /// imbalance on top of the thread-level one).
    pub rank_skew: f64,
}

impl HybridConfig {
    /// The documented clean configuration.
    pub fn balanced(nprocs: usize, nthreads: usize) -> Self {
        HybridConfig {
            nprocs,
            nthreads,
            sweeps: 3,
            rows: nthreads * 4,
            row_cost: Distr::same(0.002),
            rank_skew: 0.0,
        }
    }

    /// The documented pathological configuration: the first rows of each
    /// slab are 6x as expensive (boundary physics), and rank `r` carries
    /// `1 + rank_skew·r` times the work.
    pub fn skewed(nprocs: usize, nthreads: usize) -> Self {
        HybridConfig {
            row_cost: Distr::block2(0.006, 0.001),
            rank_skew: 0.4,
            ..Self::balanced(nprocs, nthreads)
        }
    }
}

/// Per-rank output: checksum over the slab after all sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HybridOutput {
    /// Sum of the slab values.
    pub checksum: i64,
}

/// Run the stencil.
pub fn run(config: &HybridConfig) -> (Trace, Vec<HybridOutput>) {
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| rank_body(p, &config))
}

fn rank_body(p: &mut Proc, config: &HybridConfig) -> HybridOutput {
    let world = p.comm_world();
    let me = world.rank();
    let sz = world.size();
    let rank_scale = 1.0 + config.rank_skew * me as f64;
    p.enter_region("hybrid_sweeps", RegionKind::User);
    // The slab: rows x 1 values (costs are virtual; data is a checksum
    // carrier).
    let slab: Vec<std::sync::atomic::AtomicI64> = (0..config.rows)
        .map(|r| std::sync::atomic::AtomicI64::new((me * 100 + r) as i64))
        .collect();
    for sweep in 0..config.sweeps {
        // Thread-parallel row relaxation with static scheduling.
        let rows = config.rows;
        let row_cost = config.row_cost.clone();
        let slab_ref = &slab;
        with_omp(p, |m| {
            parallel(m, config.nthreads, |th| {
                th.for_loop(rows, Schedule::Static(None), |th, row| {
                    th.do_work(row_cost.work(row, rows, rank_scale));
                    slab_ref[row].fetch_add(sweep as i64 + 1, std::sync::atomic::Ordering::Relaxed);
                });
            });
        });
        // Halo exchange (first/last row values) with neighbours.
        let first = slab[0].load(std::sync::atomic::Ordering::Relaxed);
        let last = slab[config.rows - 1].load(std::sync::atomic::Ordering::Relaxed);
        let mut reqs = Vec::new();
        if me > 0 {
            reqs.push(p.isend(&first.to_le_bytes(), me - 1, 0, &world));
        }
        if me + 1 < sz {
            reqs.push(p.isend(&last.to_le_bytes(), me + 1, 1, &world));
        }
        if me + 1 < sz {
            let (data, _) = p.recv(me + 1, 0, &world);
            let v = i64::from_le_bytes(data.try_into().expect("one i64"));
            slab[config.rows - 1].fetch_add(v % 7, std::sync::atomic::Ordering::Relaxed);
        }
        if me > 0 {
            let (data, _) = p.recv(me - 1, 1, &world);
            let v = i64::from_le_bytes(data.try_into().expect("one i64"));
            slab[0].fetch_add(v % 7, std::sync::atomic::Ordering::Relaxed);
        }
        for r in &mut reqs {
            p.wait(r);
        }
        p.barrier(&world);
    }
    p.exit_region("hybrid_sweeps");
    let checksum = slab
        .iter()
        .map(|v| v.load(std::sync::atomic::Ordering::Relaxed))
        .sum();
    HybridOutput { checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn hybrid_stencil_is_deterministic_and_wellformed() {
        let config = HybridConfig::balanced(2, 3);
        let (trace, out1) = run(&config);
        let (_, out2) = run(&config);
        assert_eq!(out1, out2, "numerics are schedule-independent");
        assert!(check_wellformed(&trace).is_empty());
        // Thread locations exist.
        assert!(trace.locations.iter().any(|l| l.location.thread > 0));
    }

    #[test]
    fn balanced_configuration_is_clean() {
        let (trace, _) = run(&HybridConfig::balanced(2, 4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "balanced hybrid stencil produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn skewed_configuration_shows_both_levels() {
        let (trace, _) = run(&HybridConfig::skewed(3, 4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        for prop in SPEC.imbalanced_properties {
            assert!(
                report.severity_of(prop) > 0.0,
                "expected {prop}: {:?}",
                report.findings
            );
        }
        // The OpenMP-level wait is localized inside the sweep frame.
        assert!(report
            .findings_for("OmpWaitAtBarrier")
            .iter()
            .any(|f| f.call_path.contains("hybrid_sweeps")));
    }

    #[test]
    fn rank_skew_alone_creates_only_mpi_level_waits() {
        let config = HybridConfig {
            rank_skew: 0.5,
            ..HybridConfig::balanced(3, 4)
        };
        let (trace, _) = run(&config);
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.severity_of("WaitAtBarrier") > 0.0,
            "{:?}",
            report.findings
        );
        assert_eq!(
            report.severity_of("OmpWaitAtBarrier"),
            0.0,
            "uniform rows keep the thread level clean"
        );
    }
}
