//! # ats-apps
//!
//! Real-world-shaped mini-applications with *documented performance
//! behavior* — the paper's Chapter 4 ("Applications"), made executable.
//!
//! The paper proposes collecting "publicly available application programs
//! together with a standardized description including ... descriptions of
//! the application's performance behavior", so tools can be tested beyond
//! carefully-constructed synthetic cases. External suites (NPB, ASCI
//! codes, Grindstone) cannot run on a simulated substrate, so ATS-RS ships
//! self-contained kernels in the same spirit: each mini-app
//!
//! * computes something *checkable* (a numeric answer with a closed form
//!   or invariant, so semantics-preservation tests apply),
//! * has a **balanced** configuration documented as clean, and an
//!   **imbalanced/misconfigured** one documented with the performance
//!   properties a correct tool must report,
//! * carries that documentation as machine-readable metadata
//!   ([`AppSpec`]), mirroring the paper's "standardized description".
//!
//! Apps: [`jacobi`] (1-D halo-exchange stencil), [`heat2d`] (2-D stencil on
//! a Cartesian process grid), [`taskfarm`] (master/worker), [`pipeline`]
//! (staged dataflow), [`transpose`] (alltoall-dominated spectral step),
//! [`hybrid_stencil`] (MPI × OpenMP).

pub mod heat2d;
pub mod hybrid_stencil;
pub mod jacobi;
pub mod pipeline;
pub mod taskfarm;
pub mod transpose;

use serde::Serialize;

/// The standardized description the paper's application collection calls
/// for, as data.
#[derive(Debug, Clone, Serialize)]
pub struct AppSpec {
    /// Application name.
    pub name: &'static str,
    /// Short description (the paper's "short description of the
    /// application").
    pub description: &'static str,
    /// The communication/computation structure.
    pub structure: &'static str,
    /// Documented performance behavior of the *balanced* configuration.
    pub balanced_behavior: &'static str,
    /// Properties a correct tool must report for the *imbalanced*
    /// configuration.
    pub imbalanced_properties: &'static [&'static str],
}

/// The collection index.
pub fn collection() -> Vec<AppSpec> {
    vec![
        jacobi::SPEC.clone(),
        heat2d::SPEC.clone(),
        taskfarm::SPEC.clone(),
        pipeline::SPEC.clone(),
        transpose::SPEC.clone(),
        hybrid_stencil::SPEC.clone(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collection_is_complete_and_documented() {
        let apps = collection();
        assert_eq!(apps.len(), 6);
        for app in &apps {
            assert!(!app.description.is_empty());
            assert!(!app.structure.is_empty());
            assert!(!app.balanced_behavior.is_empty());
            assert!(
                !app.imbalanced_properties.is_empty(),
                "{}: every app documents its pathological mode",
                app.name
            );
        }
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6, "unique names");
    }
}
