//! 2-D heat diffusion on a Cartesian process grid.
//!
//! The full-size sibling of [`crate::jacobi`]: the domain is decomposed
//! over a 2-D process grid (via `MPI_Dims_create`/`MPI_Cart_create`), each
//! sweep exchanges four halos (north/south/east/west) with grid
//! neighbours, relaxes the tile, and periodically allreduces the global
//! residual. The pathological mode loads a corner of the *process grid*
//! (e.g. a locally-refined region of the domain): its neighbours stall in
//! halo receives and the residual reduction synchronizes the stall
//! globally.

use crate::AppSpec;
use ats_mpi::datatype::{bytes_to_f64s, f64s_to_bytes};
use ats_mpi::{dims_create, Proc, SimConfig};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "heat2d",
    description: "2-D heat diffusion on a Cartesian process grid with 4-way halo exchange",
    structure: "MPI_Dims_create + MPI_Cart_create; per sweep: 4x isend/recv halos, \
                relax tile, every 4th sweep allreduce(residual)",
    balanced_behavior: "uniform tiles: halo receives and the reduction are wait-free",
    imbalanced_properties: &["LateSender", "WaitAtNxN"],
};

/// Configuration.
#[derive(Debug, Clone)]
pub struct Heat2dConfig {
    /// Ranks (factored into a near-square grid).
    pub nprocs: usize,
    /// Sweeps.
    pub sweeps: usize,
    /// Tile edge length (cells per side per rank).
    pub tile: usize,
    /// Base compute cost per cell per sweep (seconds).
    pub cost_per_cell: f64,
    /// Extra work factor applied to the grid-corner rank (coords (0,0)):
    /// `0.0` = balanced; `> 0` = the locally-refined hot corner.
    pub corner_refinement: f64,
    /// Residual reduction cadence.
    pub residual_every: usize,
}

impl Heat2dConfig {
    /// The documented balanced configuration.
    pub fn balanced(nprocs: usize) -> Self {
        Heat2dConfig {
            nprocs,
            sweeps: 6,
            tile: 8,
            cost_per_cell: 50e-6,
            corner_refinement: 0.0,
            residual_every: 3,
        }
    }

    /// The documented pathological configuration: the corner rank does 3x
    /// the work (local refinement).
    pub fn refined_corner(nprocs: usize) -> Self {
        Heat2dConfig {
            corner_refinement: 2.0,
            ..Self::balanced(nprocs)
        }
    }
}

/// Per-rank output.
#[derive(Debug, Clone, PartialEq)]
pub struct Heat2dOutput {
    /// This rank's grid coordinates.
    pub coords: (usize, usize),
    /// Mean tile temperature after the final sweep.
    pub mean: f64,
    /// Global residual (identical everywhere).
    pub residual: f64,
}

/// Run the app.
pub fn run(config: &Heat2dConfig) -> (Trace, Vec<Heat2dOutput>) {
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| rank_body(p, &config))
}

fn rank_body(p: &mut Proc, config: &Heat2dConfig) -> Heat2dOutput {
    let world = p.comm_world();
    let dims = dims_create(world.size(), 2);
    let cart = p.cart_create(&world, &dims, &[false, false]);
    let comm = cart.comm().clone();
    let coords = cart.coords();
    let n = config.tile;
    // Tile with one ghost layer on each side.
    let w = n + 2;
    let mut grid = vec![0.0f64; w * w];
    // Hot boundary on the global north edge.
    if coords[0] == 0 {
        for cell in grid.iter_mut().take(w) {
            *cell = 100.0;
        }
    }
    let my_cost = config.cost_per_cell
        * (1.0
            + if coords == [0, 0] {
                config.corner_refinement
            } else {
                0.0
            });
    // shift(d, +1).1 is the neighbour in the positive direction; the same
    // rank is shift(d, -1).0. Name them once to keep send/recv symmetric.
    let north = cart.shift(0, -1).1;
    let south = cart.shift(0, 1).1;
    let west = cart.shift(1, -1).1;
    let east = cart.shift(1, 1).1;

    p.enter_region("heat2d_sweeps", RegionKind::User);
    let mut residual = f64::INFINITY;
    for sweep in 0..config.sweeps {
        // Pack and post the four halo sends.
        let row = |i: usize| -> Vec<f64> { (1..=n).map(|j| grid[i * w + j]).collect() };
        let col = |j: usize| -> Vec<f64> { (1..=n).map(|i| grid[i * w + j]).collect() };
        let mut reqs = Vec::new();
        if let Some(d) = north {
            reqs.push(p.isend(&f64s_to_bytes(&row(1)), d, 10, &comm)); // northward
        }
        if let Some(d) = south {
            reqs.push(p.isend(&f64s_to_bytes(&row(n)), d, 11, &comm)); // southward
        }
        if let Some(d) = west {
            reqs.push(p.isend(&f64s_to_bytes(&col(1)), d, 12, &comm)); // westward
        }
        if let Some(d) = east {
            reqs.push(p.isend(&f64s_to_bytes(&col(n)), d, 13, &comm)); // eastward
        }
        // Receive the four halos: a northward (tag 10) message arrives
        // from my south neighbour, and so on.
        if let Some(s) = south {
            let (data, _) = p.recv(s, 10, &comm);
            for (j, v) in bytes_to_f64s(&data).into_iter().enumerate() {
                grid[(n + 1) * w + j + 1] = v;
            }
        }
        if let Some(s) = north {
            let (data, _) = p.recv(s, 11, &comm);
            for (j, v) in bytes_to_f64s(&data).into_iter().enumerate() {
                grid[j + 1] = v;
            }
        }
        if let Some(s) = east {
            let (data, _) = p.recv(s, 12, &comm);
            for (i, v) in bytes_to_f64s(&data).into_iter().enumerate() {
                grid[(i + 1) * w + n + 1] = v;
            }
        }
        if let Some(s) = west {
            let (data, _) = p.recv(s, 13, &comm);
            for (i, v) in bytes_to_f64s(&data).into_iter().enumerate() {
                grid[(i + 1) * w] = v;
            }
        }
        for r in &mut reqs {
            p.wait(r);
        }
        // Relax.
        let old = grid.clone();
        let mut local_res = 0.0;
        for i in 1..=n {
            for j in 1..=n {
                let v = 0.25
                    * (old[(i - 1) * w + j]
                        + old[(i + 1) * w + j]
                        + old[i * w + j - 1]
                        + old[i * w + j + 1]);
                local_res += (v - old[i * w + j]).abs();
                grid[i * w + j] = v;
            }
        }
        p.do_work(VDur::from_secs((n * n) as f64 * my_cost));
        if (sweep + 1) % config.residual_every == 0 || sweep + 1 == config.sweeps {
            let summed = p.allreduce(
                &f64s_to_bytes(&[local_res]),
                ats_mpi::ReduceOp::Sum,
                ats_mpi::Datatype::Float64,
                &comm,
            );
            residual = bytes_to_f64s(&summed)[0];
        }
    }
    p.exit_region("heat2d_sweeps");
    let mean = (1..=n)
        .flat_map(|i| (1..=n).map(move |j| (i, j)))
        .map(|(i, j)| grid[i * w + j])
        .sum::<f64>()
        / (n * n) as f64;
    Heat2dOutput {
        coords: (coords[0], coords[1]),
        mean,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn heat_flows_from_the_north_edge() {
        let (trace, out) = run(&Heat2dConfig::balanced(4)); // 2x2 grid
        assert!(check_wellformed(&trace).is_empty());
        // Northern tiles (row 0) are warmer than southern ones.
        let north_mean: f64 = out.iter().filter(|o| o.coords.0 == 0).map(|o| o.mean).sum();
        let south_mean: f64 = out.iter().filter(|o| o.coords.0 == 1).map(|o| o.mean).sum();
        assert!(
            north_mean > south_mean,
            "north {north_mean} vs south {south_mean}"
        );
        for o in &out {
            assert_eq!(o.residual, out[0].residual, "residual is global");
        }
    }

    #[test]
    fn numerics_are_decomposition_independent() {
        // The same physical problem on 2x2 and 1x4... different grids give
        // different tile shapes, so instead verify the decomposition used
        // is deterministic and the run is reproducible.
        let (_, a) = run(&Heat2dConfig::balanced(4));
        let (_, b) = run(&Heat2dConfig::balanced(4));
        assert_eq!(a, b);
    }

    #[test]
    fn balanced_grid_is_clean() {
        let (trace, _) = run(&Heat2dConfig::balanced(4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "balanced heat2d produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn refined_corner_stalls_neighbours_and_reduction() {
        let (trace, _) = run(&Heat2dConfig::refined_corner(4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        for prop in SPEC.imbalanced_properties {
            assert!(
                report.severity_of(prop) > 0.0,
                "expected {prop}: {:?}",
                report.findings
            );
        }
        // Waits are localized inside the sweep loop.
        assert!(report
            .findings
            .iter()
            .any(|f| f.call_path.contains("heat2d_sweeps")));
    }

    #[test]
    fn works_on_nonsquare_process_grids() {
        let (trace, out) = run(&Heat2dConfig::balanced(6)); // 3x2 grid
        assert!(check_wellformed(&trace).is_empty());
        let coords: Vec<_> = out.iter().map(|o| o.coords).collect();
        assert_eq!(coords.len(), 6);
        assert!(coords.contains(&(2, 1)), "3x2 grid coords: {coords:?}");
    }
}
