//! Master/worker task farm (the Grindstone suite's classic shape).
//!
//! Rank 0 hands out independent tasks on demand; workers request, compute,
//! and return results until the pool drains. With a *fast* master the farm
//! self-balances; with a *slow* master (per-task dispatch overhead) the
//! workers starve in `MPI_Recv` waiting for work — a pure Late Sender
//! bottleneck localized at the master.

use crate::AppSpec;
use ats_mpi::{Proc, SimConfig};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "taskfarm",
    description: "self-scheduling master/worker farm over independent tasks",
    structure: "workers loop: send request -> recv task -> compute -> send result; \
                master loop: recv request (any source) -> send task / poison pill",
    balanced_behavior: "dispatch cost << task cost: workers stay busy, farm self-balances",
    imbalanced_properties: &["LateSender"],
};

const TAG_REQUEST: i32 = 1;
const TAG_TASK: i32 = 2;
const TAG_RESULT: i32 = 3;

/// Farm configuration.
#[derive(Debug, Clone)]
pub struct FarmConfig {
    /// Total ranks (1 master + n-1 workers).
    pub nprocs: usize,
    /// Number of tasks in the pool.
    pub tasks: usize,
    /// Compute cost per task on a worker (seconds).
    pub task_cost: f64,
    /// Master-side dispatch cost per task (seconds) — the severity knob:
    /// `0` = instant master (balanced); `>= task_cost/(n-1)` = the master
    /// becomes the bottleneck and workers starve.
    pub dispatch_cost: f64,
}

impl FarmConfig {
    /// The documented healthy configuration.
    pub fn balanced(nprocs: usize) -> Self {
        FarmConfig {
            nprocs,
            tasks: 3 * (nprocs - 1),
            task_cost: 0.010,
            dispatch_cost: 0.0,
        }
    }

    /// The documented bottlenecked configuration.
    pub fn starved(nprocs: usize) -> Self {
        FarmConfig {
            dispatch_cost: 0.012,
            ..Self::balanced(nprocs)
        }
    }
}

/// Per-rank output: the master returns the checksum of all results, the
/// workers return how many tasks they completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmOutput {
    /// Master: sum of all task results.
    Master { checksum: u64, results: usize },
    /// Worker: tasks completed.
    Worker { completed: usize },
}

/// Run the farm.
pub fn run(config: &FarmConfig) -> (Trace, Vec<FarmOutput>) {
    assert!(config.nprocs >= 2, "a farm needs a master and a worker");
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| {
        if p.rank() == 0 {
            master(p, &config)
        } else {
            worker(p, &config)
        }
    })
}

fn master(p: &mut Proc, config: &FarmConfig) -> FarmOutput {
    let world = p.comm_world();
    p.enter_region("farm_master", RegionKind::User);
    let mut next_task = 0u64;
    let mut checksum = 0u64;
    let mut results = 0usize;
    let mut active_workers = world.size() - 1;
    while active_workers > 0 {
        let (_, st) = p.recv_select(None, Some(TAG_REQUEST), &world);
        if next_task < config.tasks as u64 {
            // The dispatch overhead is the bottleneck knob.
            p.do_work(VDur::from_secs(config.dispatch_cost));
            p.send(&next_task.to_le_bytes(), st.source, TAG_TASK, &world);
            next_task += 1;
        } else {
            // Poison pill: u64::MAX.
            p.send(&u64::MAX.to_le_bytes(), st.source, TAG_TASK, &world);
            active_workers -= 1;
        }
    }
    // Collect all results (workers send them eagerly as they finish).
    for _ in 0..config.tasks {
        let (data, _) = p.recv_select(None, Some(TAG_RESULT), &world);
        checksum += u64::from_le_bytes(data.try_into().expect("one u64"));
        results += 1;
    }
    p.exit_region("farm_master");
    FarmOutput::Master { checksum, results }
}

fn worker(p: &mut Proc, config: &FarmConfig) -> FarmOutput {
    let world = p.comm_world();
    p.enter_region("farm_worker", RegionKind::User);
    let mut completed = 0usize;
    loop {
        p.send(&[], 0, TAG_REQUEST, &world);
        let (data, _) = p.recv(0, TAG_TASK, &world);
        let task = u64::from_le_bytes(data.try_into().expect("one u64"));
        if task == u64::MAX {
            break;
        }
        p.do_work(VDur::from_secs(config.task_cost));
        let result = task * task + 1;
        p.send(&result.to_le_bytes(), 0, TAG_RESULT, &world);
        completed += 1;
    }
    p.exit_region("farm_worker");
    FarmOutput::Worker { completed }
}

/// Closed form for the farm's checksum: Σ (t² + 1) over the task pool.
pub fn expected_checksum(tasks: usize) -> u64 {
    (0..tasks as u64).map(|t| t * t + 1).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn farm_computes_the_checksum_and_drains_the_pool() {
        for nprocs in [2, 4, 5] {
            let config = FarmConfig::balanced(nprocs);
            let (trace, out) = run(&config);
            assert!(check_wellformed(&trace).is_empty());
            match &out[0] {
                FarmOutput::Master { checksum, results } => {
                    assert_eq!(*checksum, expected_checksum(config.tasks));
                    assert_eq!(*results, config.tasks);
                }
                _ => panic!("rank 0 is the master"),
            }
            let total: usize = out[1..]
                .iter()
                .map(|o| match o {
                    FarmOutput::Worker { completed } => *completed,
                    _ => panic!("workers after rank 0"),
                })
                .sum();
            assert_eq!(total, config.tasks, "every task done exactly once");
        }
    }

    fn worker_starvation(config: &FarmConfig) -> f64 {
        let (trace, _) = run(config);
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        report
            .findings_for("LateSender")
            .iter()
            .filter(|f| f.call_path.contains("farm_worker"))
            .map(|f| f.severity)
            .sum()
    }

    #[test]
    fn instant_master_keeps_workers_busier_than_a_slow_one() {
        // Self-scheduling farms are inherently arrival-order dependent
        // (the master's wildcard receive), so the robust contract is
        // relative: a slow master starves workers far harder than an
        // instant one, across repeated runs.
        let balanced: f64 = (0..3)
            .map(|_| worker_starvation(&FarmConfig::balanced(4)))
            .fold(f64::INFINITY, f64::min);
        let starved: f64 = (0..3)
            .map(|_| worker_starvation(&FarmConfig::starved(4)))
            .fold(f64::INFINITY, f64::min);
        assert!(
            starved > balanced * 2.0 && starved > 0.1,
            "starved {starved} vs balanced {balanced}"
        );
    }

    #[test]
    fn slow_master_starves_workers_with_late_sender_at_the_task_recv() {
        let (trace, out) = run(&FarmConfig::starved(4));
        // Numerics unchanged by the bottleneck.
        match &out[0] {
            FarmOutput::Master { checksum, .. } => {
                assert_eq!(*checksum, expected_checksum(FarmConfig::starved(4).tasks));
            }
            _ => unreachable!(),
        }
        let report = analyze(&trace, &AnalyzerConfig::default());
        let worker_starve: f64 = report
            .findings_for("LateSender")
            .iter()
            .filter(|f| f.call_path.contains("farm_worker"))
            .map(|f| f.severity)
            .sum();
        assert!(
            worker_starve > 0.05,
            "starved farm must show worker-side LateSender: {:?}",
            report.findings
        );
    }

    #[test]
    fn starvation_grows_with_dispatch_cost() {
        let mut severities = Vec::new();
        for dispatch in [0.0, 0.006, 0.012, 0.024] {
            let config = FarmConfig {
                dispatch_cost: dispatch,
                ..FarmConfig::balanced(4)
            };
            let (trace, _) = run(&config);
            let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
            severities.push(report.severity_of("LateSender"));
        }
        for w in severities.windows(2) {
            assert!(w[0] <= w[1], "not monotone: {severities:?}");
        }
        assert!(severities.last().unwrap() > &0.1);
    }
}
