//! A spectral-method-style distributed matrix transpose.
//!
//! The communication skeleton of 2-D FFTs and spectral solvers: compute on
//! row blocks, `MPI_Alltoall` to transpose, compute on column blocks.
//! Balanced row work streams cleanly; skewed row work turns every
//! transpose into a full-synchronization stall (Wait at N×N) — the
//! pathology that dominates real spectral codes at scale.

use crate::AppSpec;
use ats_core::Distr;
use ats_mpi::{Proc, SimConfig};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "transpose",
    description: "spectral-solver skeleton: compute / alltoall transpose / compute",
    structure: "per step: row-block compute, MPI_Alltoall (block transpose), column-block compute",
    balanced_behavior: "equal row blocks: the alltoall costs only transport",
    imbalanced_properties: &["WaitAtNxN"],
};

/// Transpose-benchmark configuration.
#[derive(Debug, Clone)]
pub struct TransposeConfig {
    /// Ranks (the matrix is `nprocs x nprocs` blocks).
    pub nprocs: usize,
    /// Transpose steps.
    pub steps: usize,
    /// Elements (i64) per block.
    pub block_elems: usize,
    /// Row-phase compute cost per rank, as a distribution.
    pub row_cost: Distr,
}

impl TransposeConfig {
    /// The documented balanced configuration.
    pub fn balanced(nprocs: usize) -> Self {
        TransposeConfig {
            nprocs,
            steps: 4,
            block_elems: 16,
            row_cost: Distr::same(0.010),
        }
    }

    /// The documented skewed configuration: a linear compute ramp.
    pub fn skewed(nprocs: usize) -> Self {
        TransposeConfig {
            row_cost: Distr::linear(0.005, 0.030),
            ..Self::balanced(nprocs)
        }
    }
}

/// Per-rank output: a checksum proving the transposes happened correctly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransposeOutput {
    /// Checksum over the rank's final blocks.
    pub checksum: i64,
}

/// Run the benchmark.
pub fn run(config: &TransposeConfig) -> (Trace, Vec<TransposeOutput>) {
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| rank_body(p, &config))
}

fn rank_body(p: &mut Proc, config: &TransposeConfig) -> TransposeOutput {
    let world = p.comm_world();
    let me = world.rank() as i64;
    let sz = world.size();
    let cost = config.row_cost.work(world.rank(), sz, 1.0);
    p.enter_region("transpose_steps", RegionKind::User);
    // Row of blocks: block (me, j) holds values me*1000 + j initially.
    let mut blocks: Vec<Vec<i64>> = (0..sz)
        .map(|j| vec![me * 1000 + j as i64; config.block_elems])
        .collect();
    for step in 0..config.steps {
        // Row-phase compute (the imbalance knob).
        p.do_work(cost);
        for b in &mut blocks {
            for v in b.iter_mut() {
                *v = v.wrapping_add(step as i64);
            }
        }
        // Block transpose via alltoall: send block j to rank j.
        let send: Vec<u8> = blocks
            .iter()
            .flat_map(|b| b.iter().flat_map(|v| v.to_le_bytes()))
            .collect();
        let recv = p.alltoall(&send, &world);
        let block_bytes = config.block_elems * 8;
        blocks = (0..sz)
            .map(|j| {
                recv[j * block_bytes..(j + 1) * block_bytes]
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("8 bytes")))
                    .collect()
            })
            .collect();
        // Column-phase compute: fixed small cost.
        p.do_work(VDur::from_millis(2));
    }
    p.exit_region("transpose_steps");
    let checksum = blocks
        .iter()
        .flat_map(|b| b.iter())
        .fold(0i64, |a, v| a.wrapping_add(*v));
    TransposeOutput { checksum }
}

/// Sequential reference: simulate the block dance without MPI.
pub fn expected_checksums(config: &TransposeConfig) -> Vec<i64> {
    let sz = config.nprocs;
    // matrix[owner][j] = the block value (all elements are equal).
    let mut value: Vec<Vec<i64>> = (0..sz)
        .map(|r| (0..sz).map(|j| r as i64 * 1000 + j as i64).collect())
        .collect();
    for step in 0..config.steps {
        for row in &mut value {
            for v in row.iter_mut() {
                *v = v.wrapping_add(step as i64);
            }
        }
        // Transpose: new[r][j] = old[j][r].
        let old = value.clone();
        for (r, row) in value.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = old[j][r];
            }
        }
    }
    value
        .iter()
        .map(|row| {
            row.iter()
                .fold(0i64, |a, v| a.wrapping_add(v * config.block_elems as i64))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn transpose_matches_the_sequential_reference() {
        for nprocs in [2, 3, 4] {
            let config = TransposeConfig::balanced(nprocs);
            let (trace, out) = run(&config);
            assert!(check_wellformed(&trace).is_empty());
            let expect = expected_checksums(&config);
            for (rank, o) in out.iter().enumerate() {
                assert_eq!(o.checksum, expect[rank], "rank {rank} of {nprocs}");
            }
        }
    }

    #[test]
    fn balanced_rows_keep_the_alltoall_clean() {
        let (trace, _) = run(&TransposeConfig::balanced(4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "balanced transpose produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn skewed_rows_stall_the_alltoall() {
        let config = TransposeConfig::skewed(4);
        let (trace, out) = run(&config);
        // Numerics unchanged.
        assert_eq!(
            out.iter().map(|o| o.checksum).collect::<Vec<_>>(),
            expected_checksums(&config)
        );
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(report.severity_of("WaitAtNxN") > 0.05);
        assert!(report
            .findings_for("WaitAtNxN")
            .iter()
            .any(
                |f| f.call_path.contains("transpose_steps") && f.call_path.contains("MPI_Alltoall")
            ));
    }

    #[test]
    fn stall_severity_tracks_the_skew() {
        let mut severities = Vec::new();
        for high in [0.010, 0.020, 0.040] {
            let config = TransposeConfig {
                row_cost: Distr::linear(0.010, high),
                ..TransposeConfig::balanced(4)
            };
            let (trace, _) = run(&config);
            let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
            severities.push(report.severity_of("WaitAtNxN"));
        }
        assert!(severities[0] < severities[1] && severities[1] < severities[2]);
    }
}
