//! A staged dataflow pipeline.
//!
//! Rank `i` is pipeline stage `i`: it receives an item from stage `i−1`,
//! processes it, and forwards it to stage `i+1`. Stage costs are a
//! distribution over ranks: equal costs stream perfectly after fill;
//! one slow stage starves everything downstream (Late Sender at every
//! later stage) — the canonical pipeline-bottleneck pathology.

use crate::AppSpec;
use ats_core::Distr;
use ats_mpi::{Proc, SimConfig};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "pipeline",
    description: "rank-per-stage dataflow pipeline over a stream of items",
    structure: "stage i: recv(i-1) -> process -> send(i+1); stage 0 generates, last consumes",
    balanced_behavior: "equal stage costs: after pipeline fill, every stage is busy every beat",
    imbalanced_properties: &["LateSender"],
};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Stages (= ranks).
    pub nprocs: usize,
    /// Items streamed through.
    pub items: usize,
    /// Per-stage processing cost, as a distribution over stages.
    pub stage_cost: Distr,
}

impl PipelineConfig {
    /// The documented streaming configuration.
    pub fn balanced(nprocs: usize) -> Self {
        PipelineConfig {
            nprocs,
            items: 12,
            stage_cost: Distr::same(0.008),
        }
    }

    /// The documented bottlenecked configuration: stage 1 is 4x slower.
    pub fn bottlenecked(nprocs: usize) -> Self {
        PipelineConfig {
            stage_cost: Distr::peak(0.008, 0.032, 1),
            ..Self::balanced(nprocs)
        }
    }
}

/// Per-rank output: a running checksum of the items this stage handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineOutput {
    /// Items processed by this stage.
    pub handled: usize,
    /// Checksum of the transformed values seen at this stage.
    pub checksum: u64,
}

/// Each stage's transform: add the stage index, rotate.
fn transform(value: u64, stage: usize) -> u64 {
    value.wrapping_add(stage as u64 + 1).rotate_left(3)
}

/// The closed form for the final stage's checksum.
pub fn expected_final_checksum(config: &PipelineConfig) -> u64 {
    let mut sum = 0u64;
    for item in 0..config.items as u64 {
        let mut v = item * 17;
        for stage in 1..config.nprocs {
            v = transform(v, stage);
        }
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Run the pipeline.
pub fn run(config: &PipelineConfig) -> (Trace, Vec<PipelineOutput>) {
    assert!(config.nprocs >= 2, "a pipeline needs at least two stages");
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| stage_body(p, &config))
}

fn stage_body(p: &mut Proc, config: &PipelineConfig) -> PipelineOutput {
    let world = p.comm_world();
    let me = world.rank();
    let sz = world.size();
    let cost = config.stage_cost.work(me, sz, 1.0);
    p.enter_region("pipeline_stage", RegionKind::User);
    let mut checksum = 0u64;
    let mut handled = 0usize;
    for item in 0..config.items as u64 {
        let value = if me == 0 {
            // Source stage: generate and cost nothing extra.
            item * 17
        } else {
            let (data, _) = p.recv(me - 1, 0, &world);
            let v = u64::from_le_bytes(data.try_into().expect("one u64"));
            p.do_work(cost);
            transform(v, me)
        };
        checksum = checksum.wrapping_add(value);
        handled += 1;
        if me + 1 < sz {
            p.send(&value.to_le_bytes(), me + 1, 0, &world);
        }
    }
    p.exit_region("pipeline_stage");
    PipelineOutput { handled, checksum }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn pipeline_transforms_the_stream_correctly() {
        let config = PipelineConfig::balanced(4);
        let (trace, out) = run(&config);
        assert!(check_wellformed(&trace).is_empty());
        for o in &out {
            assert_eq!(o.handled, config.items);
        }
        assert_eq!(
            out.last().unwrap().checksum,
            expected_final_checksum(&config)
        );
    }

    #[test]
    fn bottleneck_does_not_change_the_numerics() {
        let config = PipelineConfig::bottlenecked(4);
        let (_, out) = run(&config);
        assert_eq!(
            out.last().unwrap().checksum,
            expected_final_checksum(&config)
        );
    }

    #[test]
    fn slow_stage_starves_downstream_stages() {
        let (trace, _) = run(&PipelineConfig::bottlenecked(4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        let hits = report.findings_for("LateSender");
        assert!(
            hits.iter().any(|f| f.call_path.contains("pipeline_stage")),
            "bottleneck must surface as LateSender in the stage loop: {:?}",
            report.findings
        );
        // Downstream of the slow stage (ranks 2, 3) wait; upstream rank 1
        // never waits on rank 0 (the source is instant).
        let blamed: Vec<u32> = report
            .locations_for("LateSender")
            .iter()
            .map(|l| l.rank)
            .collect();
        assert!(blamed.contains(&2) && blamed.contains(&3), "{blamed:?}");
    }

    #[test]
    fn balanced_pipeline_has_only_fill_transients() {
        let (trace, _) = run(&PipelineConfig::balanced(4));
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        // The pipeline fill makes each stage wait once for its first item
        // (stage i waits i x cost), but steady state is wait-free: total
        // late-sender time is exactly the fill triangle, small relative to
        // the run.
        let sev = report.severity_of("LateSender");
        assert!(
            sev < 0.20,
            "balanced pipeline should be mostly steady-state: {sev}"
        );
    }
}
