//! 1-D Jacobi heat diffusion with halo exchange.
//!
//! The classic SPMD stencil: the domain is block-partitioned over ranks;
//! each sweep exchanges boundary cells with both neighbours, relaxes the
//! interior, and periodically allreduces the residual. Decomposition
//! controls the performance behavior: equal blocks are clean; skewed
//! blocks make light ranks wait for heavy neighbours in the halo exchange
//! (Late Sender) and everyone wait at the residual reduction (Wait at
//! N×N).

use crate::AppSpec;
use ats_core::Distr;
use ats_mpi::datatype::{bytes_to_f64s, f64s_to_bytes};
use ats_mpi::{Proc, SimConfig};
use ats_runtime::VDur;
use ats_trace::{RegionKind, Trace};

/// Standardized description (paper ch. 4).
pub static SPEC: AppSpec = AppSpec {
    name: "jacobi",
    description: "1-D Jacobi heat diffusion with nearest-neighbour halo exchange",
    structure: "block decomposition; per sweep: isend/recv halos, relax interior, \
                every 4th sweep allreduce(residual)",
    balanced_behavior: "equal blocks: no waiting anywhere; runtime = sweeps x per-cell cost",
    imbalanced_properties: &["LateSender", "WaitAtNxN"],
};

/// Configuration of one Jacobi run.
#[derive(Debug, Clone)]
pub struct JacobiConfig {
    /// Ranks.
    pub nprocs: usize,
    /// Sweeps to run.
    pub sweeps: usize,
    /// Interior cells per rank, as a distribution over ranks (equal =
    /// balanced; skewed = the pathological configuration).
    pub cells: Distr,
    /// Virtual compute cost per cell per sweep (seconds).
    pub cost_per_cell: f64,
    /// Allreduce the residual every `k` sweeps.
    pub residual_every: usize,
}

impl JacobiConfig {
    /// The documented balanced configuration.
    pub fn balanced(nprocs: usize) -> Self {
        JacobiConfig {
            nprocs,
            sweeps: 8,
            cells: Distr::same(200.0),
            cost_per_cell: 20e-6,
            residual_every: 4,
        }
    }

    /// The documented pathological configuration: the last rank owns 4x
    /// the cells of the first.
    pub fn imbalanced(nprocs: usize) -> Self {
        JacobiConfig {
            cells: Distr::linear(100.0, 400.0),
            ..Self::balanced(nprocs)
        }
    }
}

/// Result of one rank's run: its final interior average and residual.
#[derive(Debug, Clone, PartialEq)]
pub struct JacobiOutput {
    /// Mean of the rank's interior cells after the final sweep.
    pub local_mean: f64,
    /// Global residual after the final sweep (identical on all ranks).
    pub residual: f64,
}

/// Run the app, returning the trace and per-rank outputs.
pub fn run(config: &JacobiConfig) -> (Trace, Vec<JacobiOutput>) {
    let cfg = SimConfig {
        nprocs: config.nprocs,
        model: ats_runtime::MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let config = config.clone();
    ats_mpi::run_collect(cfg, move |p| rank_body(p, &config))
}

fn rank_body(p: &mut Proc, config: &JacobiConfig) -> JacobiOutput {
    let world = p.comm_world();
    let me = world.rank();
    let sz = world.size();
    let n = config.cells.count(me, sz, 1.0).max(2);
    p.enter_region("jacobi_sweep_loop", RegionKind::User);

    // Fixed boundary conditions: 1.0 on the far left, 0.0 on the far right.
    let mut cells = vec![0.0f64; n + 2]; // with ghost cells
    if me == 0 {
        cells[0] = 1.0;
    }
    let mut residual = f64::INFINITY;
    for sweep in 0..config.sweeps {
        // Halo exchange with both neighbours (boundary ranks skip one side).
        let mut reqs = Vec::new();
        if me > 0 {
            reqs.push(p.isend(&cells[1].to_le_bytes(), me - 1, 0, &world));
        }
        if me + 1 < sz {
            reqs.push(p.isend(&cells[n].to_le_bytes(), me + 1, 1, &world));
        }
        if me + 1 < sz {
            let (data, _) = p.recv(me + 1, 0, &world);
            cells[n + 1] = f64::from_le_bytes(data.try_into().expect("one f64"));
        }
        if me > 0 {
            let (data, _) = p.recv(me - 1, 1, &world);
            cells[0] = f64::from_le_bytes(data.try_into().expect("one f64"));
        }
        for r in &mut reqs {
            p.wait(r);
        }
        // Relax the interior; the compute cost is cells x per-cell cost.
        let old = cells.clone();
        let mut local_res = 0.0f64;
        for i in 1..=n {
            cells[i] = 0.5 * (old[i - 1] + old[i + 1]);
            local_res += (cells[i] - old[i]).abs();
        }
        p.do_work(VDur::from_secs(n as f64 * config.cost_per_cell));
        // Periodic global residual.
        if (sweep + 1) % config.residual_every == 0 || sweep + 1 == config.sweeps {
            let summed = p.allreduce(
                &f64s_to_bytes(&[local_res]),
                ats_mpi::ReduceOp::Sum,
                ats_mpi::Datatype::Float64,
                &world,
            );
            residual = bytes_to_f64s(&summed)[0];
        }
    }
    p.exit_region("jacobi_sweep_loop");
    JacobiOutput {
        local_mean: cells[1..=n].iter().sum::<f64>() / n as f64,
        residual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_analyzer::{analyze, AnalyzerConfig};
    use ats_trace::check_wellformed;

    #[test]
    fn computes_a_sane_diffusion_profile() {
        let (_, out) = run(&JacobiConfig::balanced(4));
        // Heat flows from the left boundary: means must decrease with rank.
        for w in out.windows(2) {
            assert!(
                w[0].local_mean >= w[1].local_mean,
                "means not monotone: {out:?}"
            );
        }
        assert!(out[0].local_mean > 0.0);
        // Residual is global: all ranks agree.
        for o in &out {
            assert_eq!(o.residual, out[0].residual);
        }
        assert!(out[0].residual.is_finite());
    }

    #[test]
    fn balanced_configuration_is_clean() {
        let (trace, _) = run(&JacobiConfig::balanced(4));
        assert!(check_wellformed(&trace).is_empty());
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "balanced jacobi produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn imbalanced_configuration_shows_documented_properties() {
        let (trace, _) = run(&JacobiConfig::imbalanced(4));
        let report = analyze(&trace, &AnalyzerConfig::default());
        for prop in SPEC.imbalanced_properties {
            assert!(
                report.severity_of(prop) > 0.0,
                "expected {prop}, report: {:?}",
                report.findings
            );
        }
        // And the wait is located inside the sweep loop.
        assert!(report
            .findings_for("LateSender")
            .iter()
            .any(|f| f.call_path.contains("jacobi_sweep_loop")));
    }

    #[test]
    fn instrumentation_does_not_change_the_numerics() {
        let config = JacobiConfig::imbalanced(4);
        let (_, a) = run(&config);
        let sim = SimConfig {
            nprocs: config.nprocs,
            model: ats_runtime::MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
        .uninstrumented();
        let config2 = config.clone();
        let (_, b) = ats_mpi::run_collect(sim, move |p| rank_body(p, &config2));
        assert_eq!(a, b);
    }

    #[test]
    fn two_rank_minimum_works() {
        let (trace, out) = run(&JacobiConfig::balanced(2));
        assert_eq!(out.len(), 2);
        assert!(check_wellformed(&trace).is_empty());
    }
}
