//! The `ats-report/1` wire schema cannot drift silently.
//!
//! Two guards: a round-trip (export → parse → re-render is a byte-level
//! fixed point) and a golden file (the exact bytes of a fixed
//! deterministic run, checked into the tree). Any change to field names,
//! ordering, or number formatting fails the golden comparison and forces
//! a deliberate schema bump.

use ats_analyzer::{analyze, AnalyzerConfig, ReportDoc, REPORT_SCHEMA};
use ats_core::{properties::mpi_p2p, BaseComm};
use ats_mpi::SimConfig;
use ats_runtime::{MachineModel, VDur};

/// The fixed scenario the golden file was generated from. Virtual-time
/// simulation makes the trace — and therefore the report bytes —
/// deterministic on every host and at any worker count.
fn golden_report_json() -> String {
    let cfg = SimConfig {
        nprocs: 2,
        model: MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let trace = ats_mpi::run(cfg, |p| {
        let world = p.comm_world();
        mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.050, 2, &world);
    });
    analyze(&trace, &AnalyzerConfig::default()).to_json()
}

#[test]
fn report_bytes_match_golden_file() {
    let got = golden_report_json();
    let want = include_str!("golden/report_v1.json");
    assert_eq!(
        got, want,
        "ats-report/1 bytes drifted from tests/golden/report_v1.json — \
         if the change is deliberate, bump the schema tag and regenerate"
    );
}

#[test]
fn report_round_trips_byte_identically() {
    let json = golden_report_json();
    let doc = ReportDoc::parse(&json).expect("canonical bytes parse");
    assert_eq!(doc.schema, REPORT_SCHEMA);
    assert_eq!(doc.render(), json, "parse → render is a fixed point");
    assert_eq!(doc.findings[0].property, "LateSender");
    assert_eq!(doc.findings_for("LateSender").len(), doc.findings.len());
    assert!(doc.total_wait() > VDur::ZERO);
}

#[test]
fn golden_file_itself_parses_as_v1() {
    let doc = ReportDoc::parse(include_str!("golden/report_v1.json")).unwrap();
    assert_eq!(doc.schema, REPORT_SCHEMA);
    assert!(!doc.findings.is_empty());
    assert!(doc.threshold > 0.0);
}
