//! # ats-analyzer
//!
//! An EXPERT-style automatic performance analyzer.
//!
//! The ATS paper tests *tools*; without a tool in the loop, positive and
//! negative correctness cannot be measured. This crate is that tool: a
//! trace-based pattern analyzer modeled on EXPERT/KOJAK (the paper's
//! Figure 3.5 instrument, by the same research group):
//!
//! 1. [`extract()`](extract::extract) reconstructs call paths and typed
//!    operation records from the event trace;
//! 2. [`patterns`] implements the compound-event definitions of the
//!    ASL/EXPERT property catalog (Late Sender, Late Receiver, Wait at
//!    Barrier, Wait at N×N, Late Broadcast/Scatter, Early Reduce/Gather,
//!    OpenMP imbalance/barrier/critical contention, MPI setup overhead);
//! 3. the [`SeverityCube`] accumulates waiting
//!    times over property × call path × location;
//! 4. the [`AnalysisReport`] ranks findings by
//!    EXPERT's severity model (waiting time / total allocation time) and
//!    renders the tri-pane text view.
//!
//! ```
//! use ats_analyzer::{analyze, AnalyzerConfig};
//! use ats_core::{properties::mpi_p2p, BaseComm};
//! use ats_mpi::SimConfig;
//!
//! let trace = ats_mpi::run(SimConfig::with_procs(2), |p| {
//!     let world = p.comm_world();
//!     mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, 0.02, 2, &world);
//! });
//! let report = analyze(&trace, &AnalyzerConfig::default());
//! assert!(report.severity_of("LateSender") > 0.0);
//! ```

/// Version of the analysis semantics (pattern definitions, severity
/// model, report layout). Any change that can alter a report for the same
/// trace must bump this — cached analyzer outputs are keyed on it, so a
/// bump invalidates every cached report without touching the store.
/// (3: report export moved to the frozen `ats-report/1` wire layout.)
pub const ANALYSIS_VERSION: u32 = 3;

pub mod analyzer;
pub mod asl;
pub mod callpath;
pub mod extract;
pub mod ingest;
pub mod patterns;
pub mod phases;
pub mod property;
pub mod report;
pub mod severity;
pub mod wire;

pub use analyzer::{analyze, AnalyzerConfig};
pub use callpath::{PathId, PathTable};
pub use ingest::{
    analyze_path, analyze_path_streaming, analyze_reader, analyze_stream, load_trace, StreamStats,
};
pub use phases::{analyze_phases, PhaseReport, PhaseSeries};
pub use property::PropertyKind;
pub use report::{diff, AnalysisReport, DiffEntry, Finding};
pub use severity::SeverityCube;
pub use wire::{FindingDoc, ReportDoc, REPORT_SCHEMA};

// Convenience re-exports for the ASL layer.
pub use asl::{default_property_set, AslFinding, PropertySet};
