//! Analysis results: findings, ranking, and the EXPERT-style text view.

use crate::callpath::PathTable;
use crate::property::PropertyKind;
use crate::severity::SeverityCube;
use ats_runtime::VDur;
use ats_trace::{LocationId, Trace};
use serde::Serialize;
use std::fmt::Write as _;

/// One reported finding: a property at a call path, with its severity and
/// per-location breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// The diagnosed property.
    pub property: String,
    /// The call path, rendered `a/b/c`.
    pub call_path: String,
    /// Accumulated waiting time.
    pub wait: VDur,
    /// Waiting time / total allocation time.
    pub severity: f64,
    /// Per-location waiting times, sorted by location.
    pub locations: Vec<(String, VDur)>,
}

/// The complete result of analyzing one trace.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The severity cube.
    pub cube: SeverityCube,
    /// Interned call paths.
    pub paths: PathTable,
    /// Findings at or above the configured threshold, ranked by severity
    /// (most severe first).
    pub findings: Vec<Finding>,
    /// The threshold used.
    pub threshold: f64,
    pub(crate) property_order: Vec<PropertyKind>,
}

impl AnalysisReport {
    pub(crate) fn build(
        cube: SeverityCube,
        paths: PathTable,
        trace: &Trace,
        threshold: f64,
    ) -> Self {
        let mut ranked: Vec<(PropertyKind, crate::callpath::PathId, VDur)> = cube
            .by_property_path()
            .into_iter()
            .map(|((p, path), w)| (p, path, w))
            .collect();
        // Full tie-break down to the path id: the ranking source is a hash
        // map, so without it equal (wait, property) entries would surface
        // in nondeterministic order and byte-stable reports (differential
        // streaming-vs-materializing tests, the result cache) would flake.
        ranked.sort_by(|a, b| {
            b.2.cmp(&a.2)
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.cmp(&b.1))
        });
        let findings = ranked
            .into_iter()
            .filter(|(_, _, w)| cube.fraction(*w) >= threshold)
            .map(|(p, path, w)| Finding {
                property: p.name().to_owned(),
                call_path: paths.display(path, trace),
                wait: w,
                severity: cube.fraction(w),
                locations: cube
                    .locations_of(p, path)
                    .into_iter()
                    .map(|(loc, w)| (loc.to_string(), w))
                    .collect(),
            })
            .collect();
        let mut property_order: Vec<PropertyKind> = PropertyKind::leaves().to_vec();
        property_order.sort();
        AnalysisReport {
            cube,
            paths,
            findings,
            threshold,
            property_order,
        }
    }

    /// True if nothing exceeded the threshold — what a correct tool must
    /// report for every negative test case.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings diagnosing `property` (by name).
    pub fn findings_for(&self, property: &str) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.property == property)
            .collect()
    }

    /// Total severity of a property across all call paths.
    pub fn severity_of(&self, property: &str) -> f64 {
        property
            .parse::<PropertyKind>()
            .map(|p| self.cube.fraction(self.cube.by_property(p)))
            .unwrap_or(0.0)
    }

    /// The locations (as `LocationId`s) blamed for `property`, across
    /// paths, sorted and deduplicated.
    pub fn locations_for(&self, property: &str) -> Vec<LocationId> {
        let Ok(p) = property.parse::<PropertyKind>() else {
            return Vec::new();
        };
        let mut locs: Vec<LocationId> = self
            .cube
            .cells()
            .filter(|((prop, _, _), w)| *prop == p && !w.is_zero())
            .map(|((_, _, loc), _)| *loc)
            .collect();
        locs.sort();
        locs.dedup();
        locs
    }

    /// Serialize the findings (with run totals) as an `ats-report/1`
    /// document — the machine-readable form EXPERIMENTS.md scripts, the
    /// store's `report.json` and every `ats-serve` endpoint share. The
    /// bytes are the canonical rendering defined by [`crate::wire`]; they
    /// are required (and CI-gated) to be identical wherever the same
    /// report is produced.
    pub fn to_json(&self) -> String {
        crate::wire::ReportDoc::of(self).render()
    }

    /// Render the EXPERT-like tri-pane text view: property tree with
    /// severities, then per-property call paths and location breakdowns.
    pub fn render(&self, trace: &Trace) -> String {
        let mut out = String::new();
        let total = self.cube.total_alloc();
        let _ = writeln!(out, "=== ATS-RS automatic analysis ===");
        let _ = writeln!(
            out,
            "total allocation time: {total}   threshold: {:.2}%",
            self.threshold * 100.0
        );
        let _ = writeln!(out, "\n-- performance properties --");
        // Interior nodes first, in tree order.
        for node in [
            PropertyKind::Time,
            PropertyKind::MpiTime,
            PropertyKind::MpiCommunication,
            PropertyKind::OmpTime,
        ] {
            let w = self.cube.subtree_total(node);
            let _ = writeln!(
                out,
                "{:indent$}{:<24} {:>8.3}%  {}",
                "",
                node.name(),
                self.cube.fraction(w) * 100.0,
                w,
                indent = node.depth() * 2
            );
        }
        for leaf in &self.property_order {
            let w = self.cube.by_property(*leaf);
            if w.is_zero() {
                continue;
            }
            let _ = writeln!(
                out,
                "{:indent$}{:<24} {:>8.3}%  {}",
                "",
                leaf.name(),
                self.cube.fraction(w) * 100.0,
                w,
                indent = leaf.depth() * 2
            );
        }
        let _ = writeln!(out, "\n-- findings (ranked) --");
        if self.findings.is_empty() {
            let _ = writeln!(out, "(none above threshold)");
        }
        for f in &self.findings {
            let _ = writeln!(
                out,
                "{:>8.3}%  {:<22} at {}",
                f.severity * 100.0,
                f.property,
                f.call_path
            );
            for (loc, w) in &f.locations {
                let _ = writeln!(out, "            rank/thread {loc:<8} {w}");
            }
        }
        let _ = write!(out, "\n({} locations analyzed)", trace.num_locations());
        out
    }
}

/// One difference between two analysis results.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum DiffEntry {
    /// A property reported by `new` but not by `old`.
    Appeared {
        /// Property name.
        property: String,
        /// Its severity in the new report.
        severity: f64,
    },
    /// A property reported by `old` but not by `new`.
    Vanished {
        /// Property name.
        property: String,
        /// Its severity in the old report.
        severity: f64,
    },
    /// Severity moved by more than the tolerance.
    Changed {
        /// Property name.
        property: String,
        /// Old severity.
        old: f64,
        /// New severity.
        new: f64,
    },
}

/// Compare two reports property-by-property — the regression check a tool
/// team runs between tool versions over the same recorded traces.
/// `tolerance` is the allowed absolute severity drift.
pub fn diff(old: &AnalysisReport, new: &AnalysisReport, tolerance: f64) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    let names = |r: &AnalysisReport| -> Vec<String> {
        let mut v: Vec<String> = r.findings.iter().map(|f| f.property.clone()).collect();
        v.sort();
        v.dedup();
        v
    };
    let old_names = names(old);
    let new_names = names(new);
    for p in &new_names {
        if !old_names.contains(p) {
            out.push(DiffEntry::Appeared {
                property: p.clone(),
                severity: new.severity_of(p),
            });
        }
    }
    for p in &old_names {
        if !new_names.contains(p) {
            out.push(DiffEntry::Vanished {
                property: p.clone(),
                severity: old.severity_of(p),
            });
        }
    }
    for p in &old_names {
        if new_names.contains(p) {
            let (o, n) = (old.severity_of(p), new.severity_of(p));
            if (o - n).abs() > tolerance {
                out.push(DiffEntry::Changed {
                    property: p.clone(),
                    old: o,
                    new: n,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze, AnalyzerConfig};
    use ats_core::{properties::mpi_p2p, BaseComm};
    use ats_mpi::SimConfig;
    use ats_runtime::MachineModel;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn findings_are_ranked_and_rendered() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.050, 2, &c);
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(!report.is_clean());
        let top = &report.findings[0];
        assert_eq!(top.property, "LateSender");
        assert!(top.call_path.contains("late_sender"));
        assert!(top.severity > 0.0);
        let text = report.render(&trace);
        assert!(text.contains("LateSender"));
        assert!(text.contains("findings"));
    }

    #[test]
    fn json_export_carries_findings() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.040, 1, &c);
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        let json = report.to_json();
        let doc = crate::wire::ReportDoc::parse(&json).unwrap();
        assert_eq!(doc.schema, crate::wire::REPORT_SCHEMA);
        assert!(doc.total_alloc_secs > 0.0);
        assert_eq!(doc.findings[0].property, "LateSender");
        assert!(doc.findings[0].severity > 0.0);
        assert_eq!(doc.findings[0].wait_ns, report.findings[0].wait.as_nanos());
    }

    #[test]
    fn diff_flags_regressions() {
        let mk = |extra: f64| {
            let trace = ats_mpi::run(cfg(2), move |p| {
                let c = p.comm_world();
                mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, extra, 2, &c);
            });
            analyze(&trace, &AnalyzerConfig::default())
        };
        let a = mk(0.03);
        let b = mk(0.03);
        assert!(diff(&a, &b, 1e-9).is_empty(), "identical runs diff clean");
        let c = mk(0.09);
        let d = diff(&a, &c, 0.01);
        assert!(
            d.iter().any(
                |e| matches!(e, DiffEntry::Changed { property, .. } if property == "LateSender")
            ),
            "{d:?}"
        );
        // A vanished property: compare against a clean run.
        let clean_trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            ats_core::properties::negative::balanced_mpi_barrier(p, 0.01, 2, &c);
        });
        let clean = analyze(&clean_trace, &AnalyzerConfig::default());
        let d2 = diff(&a, &clean, 0.01);
        assert!(
            d2.iter().any(|e| matches!(e, DiffEntry::Vanished { .. })),
            "{d2:?}"
        );
    }

    #[test]
    fn severity_accessors() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.040, 1, &c);
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(report.severity_of("LateSender") > 0.1);
        assert_eq!(report.severity_of("LateReceiver"), 0.0);
        assert_eq!(report.severity_of("NoSuchThing"), 0.0);
        assert_eq!(
            report.locations_for("LateSender"),
            vec![LocationId::rank(1)]
        );
    }
}
