//! First analysis pass: scan every location's event stream once and
//! extract the typed operation records the pattern detectors consume.

use crate::callpath::{PathId, PathTable};
use ats_runtime::{VDur, VTime};
use ats_trace::{CollOp, EventKind, LocationId, RegionId, Trace};
use std::collections::HashMap;

/// A completed send call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendRec {
    /// Sending location.
    pub loc: LocationId,
    /// Call path of the send call.
    pub path: PathId,
    /// Entry into the send call.
    pub enter: VTime,
    /// Exit from the send call (equals `post + overhead` for eager sends,
    /// later for blocked synchronous sends).
    pub exit: VTime,
    /// When the message was posted.
    pub post: VTime,
    /// Destination (global rank).
    pub to: u32,
    /// Communicator id.
    pub comm: u32,
    /// Tag.
    pub tag: i32,
    /// Payload bytes.
    pub bytes: u64,
}

/// A completed receive (blocking recv or irecv+wait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvRec {
    /// Receiving location.
    pub loc: LocationId,
    /// Call path of the call in which delivery completed (`MPI_Recv` or
    /// `MPI_Wait`).
    pub path: PathId,
    /// Entry into that call.
    pub enter: VTime,
    /// Exit from that call.
    pub exit: VTime,
    /// When the receive was posted.
    pub posted: VTime,
    /// Delivery completion time.
    pub completion: VTime,
    /// Source (global rank).
    pub from: u32,
    /// Communicator id.
    pub comm: u32,
    /// Tag.
    pub tag: i32,
    /// Payload bytes.
    pub bytes: u64,
}

/// One member's record of a collective instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollMember {
    /// Member location.
    pub loc: LocationId,
    /// Call path of the collective call.
    pub path: PathId,
    /// Entry time.
    pub entered: VTime,
    /// Completion time.
    pub exit: VTime,
    /// Payload bytes contributed.
    pub bytes: u64,
}

/// A reassembled collective operation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CollInstance {
    /// Operation.
    pub op: CollOp,
    /// Communicator / team id.
    pub comm: u32,
    /// Root, communicator-local, for rooted operations.
    pub root: Option<u32>,
    /// Per-communicator sequence number.
    pub seq: u64,
    /// Member records, sorted by location.
    pub members: Vec<CollMember>,
}

impl CollInstance {
    /// The latest entry among members.
    pub fn last_entry(&self) -> VTime {
        self.members
            .iter()
            .map(|m| m.entered)
            .max()
            .unwrap_or(VTime::ZERO)
    }

    /// The member record belonging to the root, resolved through the
    /// trace's communicator definitions.
    pub fn root_member<'a>(&'a self, trace: &Trace) -> Option<&'a CollMember> {
        let root_local = self.root? as usize;
        let members = trace.comm_members(self.comm)?;
        let root_global = *members.get(root_local)?;
        self.members
            .iter()
            .find(|m| m.loc.rank == root_global && m.loc.thread == 0)
    }
}

/// One visit to a named critical section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalVisit {
    /// Visiting location.
    pub loc: LocationId,
    /// Call path of the critical construct.
    pub path: PathId,
    /// Arrival at the construct.
    pub arrive: VTime,
    /// Acquisition (body entry).
    pub acquired: VTime,
    /// Release.
    pub released: VTime,
}

/// Time spent in MPI_Init/MPI_Finalize at one location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupRec {
    /// Location.
    pub loc: LocationId,
    /// Path of the setup call.
    pub path: PathId,
    /// Inclusive duration.
    pub time: VDur,
}

/// Everything the detectors need, extracted in one pass.
#[derive(Debug, Default)]
pub struct Extract {
    /// All send calls.
    pub sends: Vec<SendRec>,
    /// All completed receives.
    pub recvs: Vec<RecvRec>,
    /// All collective instances (MPI and OpenMP pseudo-collectives).
    pub colls: Vec<CollInstance>,
    /// All critical-section visits.
    pub criticals: Vec<CriticalVisit>,
    /// All init/finalize occupations.
    pub setup: Vec<SetupRec>,
    /// The interned call paths.
    pub paths: PathTable,
}

/// Scan the trace and build the [`Extract`].
pub fn extract(trace: &Trace) -> Extract {
    let mut ex = Extract::default();
    // Pre-size the record vectors from a cheap tag-counting pass so the
    // hot loop below never reallocates.
    let (mut n_sends, mut n_recvs, mut n_collends) = (0usize, 0usize, 0usize);
    for lt in &trace.locations {
        for ev in &lt.events {
            match ev.kind {
                EventKind::Send { .. } => n_sends += 1,
                EventKind::Recv { .. } => n_recvs += 1,
                EventKind::CollEnd { .. } => n_collends += 1,
                _ => {}
            }
        }
    }
    ex.sends.reserve(n_sends);
    ex.recvs.reserve(n_recvs);
    let n_locs = trace.num_locations().max(1);
    let mut coll_groups: HashMap<(u32, u64, CollOp), CollInstance> =
        HashMap::with_capacity(n_collends / n_locs + 1);

    let r_init = trace.find_region("MPI_Init");
    let r_fin = trace.find_region("MPI_Finalize");
    // Critical sections and explicit locks share the visit shape; track
    // both (construct region, body region) pairs.
    let crit_pairs = [
        (
            trace.find_region("omp_critical"),
            trace.find_region("omp_critical_body"),
        ),
        (
            trace.find_region("omp_lock"),
            trace.find_region("omp_lock_body"),
        ),
    ];
    let is_crit = |r: ats_trace::RegionId| crit_pairs.iter().any(|(c, _)| *c == Some(r));
    let is_crit_body = |r: ats_trace::RegionId| crit_pairs.iter().any(|(_, b)| *b == Some(r));

    // Mirrors `stack`'s regions contiguously so call paths intern straight
    // from a slice — no per-event Vec allocation on this hot path.
    let mut path_stack: Vec<RegionId> = Vec::new();
    for lt in &trace.locations {
        let loc = lt.location;
        let mut stack: Vec<(RegionId, VTime)> = Vec::new();
        path_stack.clear();
        // Sends posted in a still-open frame, waiting for the frame's exit
        // time: (depth of owning frame, partially-filled record).
        let mut open_sends: Vec<(usize, SendRec)> = Vec::new();
        // Receives completed in a still-open frame.
        let mut open_recvs: Vec<(usize, RecvRec)> = Vec::new();
        // Critical visits awaiting body entry/exit.
        let mut open_criticals: Vec<(usize, CriticalVisit)> = Vec::new();

        for ev in &lt.events {
            match ev.kind {
                EventKind::Enter { region } => {
                    stack.push((region, ev.time));
                    path_stack.push(region);
                    if is_crit_body(region) {
                        if let Some((_, visit)) = open_criticals.last_mut() {
                            visit.acquired = ev.time;
                        }
                    }
                    if is_crit(region) {
                        let path = ex.paths.intern(&path_stack);
                        open_criticals.push((
                            stack.len(),
                            CriticalVisit {
                                loc,
                                path,
                                arrive: ev.time,
                                acquired: ev.time,
                                released: ev.time,
                            },
                        ));
                    }
                }
                EventKind::Exit { region } => {
                    let depth = stack.len();
                    // Intern before popping: the current path (ending at
                    // `region`) is exactly the setup-record path below.
                    let exit_path = (r_init == Some(region) || r_fin == Some(region))
                        .then(|| ex.paths.intern(&path_stack));
                    let (top, entered) = stack.pop().expect("wellformed trace");
                    path_stack.pop();
                    debug_assert_eq!(top, region);
                    // Flush operations owned by this frame.
                    while open_sends.last().is_some_and(|(d, _)| *d == depth) {
                        let (_, mut s) = open_sends.pop().expect("just checked");
                        s.enter = entered;
                        s.exit = ev.time;
                        ex.sends.push(s);
                    }
                    while open_recvs.last().is_some_and(|(d, _)| *d == depth) {
                        let (_, mut r) = open_recvs.pop().expect("just checked");
                        r.enter = entered;
                        r.exit = ev.time;
                        ex.recvs.push(r);
                    }
                    if is_crit(region) {
                        if let Some((d, mut visit)) = open_criticals.pop() {
                            debug_assert_eq!(d, depth);
                            visit.released = ev.time;
                            ex.criticals.push(visit);
                        }
                    }
                    if let Some(path) = exit_path {
                        ex.setup.push(SetupRec {
                            loc,
                            path,
                            time: ev.time - entered,
                        });
                    }
                }
                EventKind::Send {
                    to,
                    comm,
                    tag,
                    bytes,
                } => {
                    let path = ex.paths.intern(&path_stack);
                    open_sends.push((
                        stack.len(),
                        SendRec {
                            loc,
                            path,
                            enter: ev.time,
                            exit: ev.time,
                            post: ev.time,
                            to,
                            comm,
                            tag,
                            bytes,
                        },
                    ));
                }
                EventKind::Recv {
                    from,
                    comm,
                    tag,
                    bytes,
                    posted,
                } => {
                    let path = ex.paths.intern(&path_stack);
                    open_recvs.push((
                        stack.len(),
                        RecvRec {
                            loc,
                            path,
                            enter: ev.time,
                            exit: ev.time,
                            posted,
                            completion: ev.time,
                            from,
                            comm,
                            tag,
                            bytes,
                        },
                    ));
                }
                EventKind::CollEnd {
                    op,
                    comm,
                    root,
                    seq,
                    bytes,
                    entered,
                } => {
                    let path = ex.paths.intern(&path_stack);
                    let inst = coll_groups
                        .entry((comm, seq, op))
                        .or_insert_with(|| CollInstance {
                            op,
                            comm,
                            root,
                            seq,
                            members: Vec::with_capacity(n_locs),
                        });
                    inst.members.push(CollMember {
                        loc,
                        path,
                        entered,
                        exit: ev.time,
                        bytes,
                    });
                }
            }
        }
    }

    // Unstable sorts: cheaper than the stable ones (no temp allocation),
    // and safe because every key is a total order — (comm, seq) and
    // member locations are unique by construction, and the p2p keys
    // carry enough trailing fields that ties only occur between fully
    // identical records.
    let mut colls: Vec<CollInstance> = coll_groups.into_values().collect();
    for c in &mut colls {
        c.members.sort_unstable_by_key(|m| m.loc);
    }
    colls.sort_unstable_by_key(|c| (c.comm, c.seq));
    ex.colls = colls;
    ex.sends
        .sort_unstable_by_key(|s| (s.comm, s.loc, s.to, s.tag, s.post, s.exit, s.bytes, s.path));
    ex.recvs.sort_unstable_by_key(|r| {
        (
            r.comm,
            r.from,
            r.loc,
            r.tag,
            r.posted,
            r.completion,
            r.bytes,
            r.path,
        )
    });
    ex
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, properties::mpi_p2p, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    fn cfg_with_setup(n: usize) -> SimConfig {
        SimConfig {
            init_time: VDur::from_millis(2),
            finalize_time: VDur::from_millis(1),
            ..cfg(n)
        }
    }

    #[test]
    fn extracts_sends_and_recvs_with_frames() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.0, 0.030, 1, &c);
        });
        let ex = extract(&trace);
        assert_eq!(ex.sends.len(), 1);
        assert_eq!(ex.recvs.len(), 1);
        let s = &ex.sends[0];
        let r = &ex.recvs[0];
        assert_eq!(s.loc.rank, 0);
        assert_eq!(r.loc.rank, 1);
        assert_eq!(s.to, 1);
        assert_eq!(r.from, 0);
        // The recv blocked from 0 to 30ms.
        assert_eq!(r.posted, VTime::ZERO);
        assert_eq!(r.completion, VTime::from_secs(0.030));
        // Paths end at the MPI call inside the property frame.
        assert_eq!(ex.paths.leaf_name(s.path, &trace), "MPI_Send");
        assert!(ex.paths.contains_region(r.path, &trace, "late_sender"));
    }

    #[test]
    fn extracts_collective_instances_grouped() {
        let df = Distr::linear(0.001, 0.004);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 3, &c);
        });
        let ex = extract(&trace);
        let barriers: Vec<_> = ex
            .colls
            .iter()
            .filter(|c| c.op == ats_trace::CollOp::Barrier)
            .collect();
        assert_eq!(barriers.len(), 3, "3 repetitions = 3 instances");
        for b in barriers {
            assert_eq!(b.members.len(), 4);
        }
    }

    #[test]
    fn root_member_resolution_uses_comm_defs() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_coll::late_broadcast(p, &BaseComm::default(), 0.001, 0.010, 2, 1, &c);
        });
        let ex = extract(&trace);
        let bcast = ex
            .colls
            .iter()
            .find(|c| c.op == ats_trace::CollOp::Bcast)
            .unwrap();
        let root = bcast.root_member(&trace).expect("root resolvable");
        assert_eq!(root.loc.rank, 2);
    }

    #[test]
    fn setup_times_extracted_per_location() {
        let trace = ats_mpi::run(cfg_with_setup(2), |p| {
            p.do_work(VDur::from_millis(1));
        });
        let ex = extract(&trace);
        // 2 ranks x (init + finalize).
        assert_eq!(ex.setup.len(), 4);
        let total: VDur = ex.setup.iter().map(|s| s.time).sum();
        assert_eq!(total, VDur::from_millis(2 * (2 + 1)));
    }

    #[test]
    fn critical_visits_extracted() {
        use ats_omp::{parallel, run_omp, OmpConfig};
        let trace = run_omp(
            OmpConfig {
                model: MachineModel::zero(),
                ..Default::default()
            },
            |m| {
                parallel(m, 3, |th| {
                    th.critical("c", |th| th.do_work(VDur::from_millis(5)));
                });
            },
        );
        let ex = extract(&trace);
        assert_eq!(ex.criticals.len(), 3);
        let total_wait: VDur = ex.criticals.iter().map(|v| v.acquired - v.arrive).sum();
        // Waits 0 + 5 + 10 = 15ms.
        assert_eq!(total_wait, VDur::from_millis(15));
        for v in &ex.criticals {
            assert!(v.released >= v.acquired);
        }
    }
}
