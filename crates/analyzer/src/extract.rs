//! First analysis pass: scan every location's event stream once and
//! extract the typed operation records the pattern detectors consume.

use crate::callpath::{PathId, PathTable};
use ats_runtime::{VDur, VTime};
use ats_trace::{CollOp, Event, EventKind, LocationId, RegionId, RegionMeta, Trace};
use std::collections::HashMap;

/// A completed send call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendRec {
    /// Sending location.
    pub loc: LocationId,
    /// Call path of the send call.
    pub path: PathId,
    /// Entry into the send call.
    pub enter: VTime,
    /// Exit from the send call (equals `post + overhead` for eager sends,
    /// later for blocked synchronous sends).
    pub exit: VTime,
    /// When the message was posted.
    pub post: VTime,
    /// Destination (global rank).
    pub to: u32,
    /// Communicator id.
    pub comm: u32,
    /// Tag.
    pub tag: i32,
    /// Payload bytes.
    pub bytes: u64,
}

/// A completed receive (blocking recv or irecv+wait).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvRec {
    /// Receiving location.
    pub loc: LocationId,
    /// Call path of the call in which delivery completed (`MPI_Recv` or
    /// `MPI_Wait`).
    pub path: PathId,
    /// Entry into that call.
    pub enter: VTime,
    /// Exit from that call.
    pub exit: VTime,
    /// When the receive was posted.
    pub posted: VTime,
    /// Delivery completion time.
    pub completion: VTime,
    /// Source (global rank).
    pub from: u32,
    /// Communicator id.
    pub comm: u32,
    /// Tag.
    pub tag: i32,
    /// Payload bytes.
    pub bytes: u64,
}

/// One member's record of a collective instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollMember {
    /// Member location.
    pub loc: LocationId,
    /// Call path of the collective call.
    pub path: PathId,
    /// Entry time.
    pub entered: VTime,
    /// Completion time.
    pub exit: VTime,
    /// Payload bytes contributed.
    pub bytes: u64,
}

/// A reassembled collective operation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct CollInstance {
    /// Operation.
    pub op: CollOp,
    /// Communicator / team id.
    pub comm: u32,
    /// Root, communicator-local, for rooted operations.
    pub root: Option<u32>,
    /// Per-communicator sequence number.
    pub seq: u64,
    /// Member records, sorted by location.
    pub members: Vec<CollMember>,
}

impl CollInstance {
    /// The latest entry among members.
    pub fn last_entry(&self) -> VTime {
        self.members
            .iter()
            .map(|m| m.entered)
            .max()
            .unwrap_or(VTime::ZERO)
    }

    /// The member record belonging to the root, resolved through the
    /// trace's communicator definitions.
    pub fn root_member<'a>(&'a self, trace: &Trace) -> Option<&'a CollMember> {
        let root_local = self.root? as usize;
        let members = trace.comm_members(self.comm)?;
        let root_global = *members.get(root_local)?;
        self.members
            .iter()
            .find(|m| m.loc.rank == root_global && m.loc.thread == 0)
    }
}

/// One visit to a named critical section.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalVisit {
    /// Visiting location.
    pub loc: LocationId,
    /// Call path of the critical construct.
    pub path: PathId,
    /// Arrival at the construct.
    pub arrive: VTime,
    /// Acquisition (body entry).
    pub acquired: VTime,
    /// Release.
    pub released: VTime,
}

/// Time spent in MPI_Init/MPI_Finalize at one location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetupRec {
    /// Location.
    pub loc: LocationId,
    /// Path of the setup call.
    pub path: PathId,
    /// Inclusive duration.
    pub time: VDur,
}

/// Everything the detectors need, extracted in one pass.
#[derive(Debug, Default)]
pub struct Extract {
    /// All send calls.
    pub sends: Vec<SendRec>,
    /// All completed receives.
    pub recvs: Vec<RecvRec>,
    /// All collective instances (MPI and OpenMP pseudo-collectives).
    pub colls: Vec<CollInstance>,
    /// All critical-section visits.
    pub criticals: Vec<CriticalVisit>,
    /// All init/finalize occupations.
    pub setup: Vec<SetupRec>,
    /// The interned call paths.
    pub paths: PathTable,
}

/// Incremental extraction: feed one location's event stream at a time and
/// collect the [`Extract`] at the end. Both analysis paths are built on
/// this — [`extract`] drives it from a materialized [`Trace`], the
/// streaming ingest drives it straight from decoded column blocks — so
/// the two produce identical records (and, because locations arrive in
/// the same sorted order, identical [`PathId`] interning).
pub struct StreamExtractor {
    ex: Extract,
    coll_groups: HashMap<(u32, u64, CollOp), CollInstance>,
    r_init: Option<RegionId>,
    r_fin: Option<RegionId>,
    /// (construct region, body region) pairs sharing the visit shape:
    /// critical sections and explicit locks.
    crit_pairs: [(Option<RegionId>, Option<RegionId>); 2],
    /// Capacity hint for collective member vectors (= location count).
    n_locs: usize,
    // Per-location scratch, reused across `scan_events` calls.
    stack: Vec<(RegionId, VTime)>,
    // Mirrors `stack`'s regions contiguously so call paths intern straight
    // from a slice — no per-event Vec allocation on this hot path.
    path_stack: Vec<RegionId>,
    // Sends posted in a still-open frame, waiting for the frame's exit
    // time: (depth of owning frame, partially-filled record).
    open_sends: Vec<(usize, SendRec)>,
    // Receives completed in a still-open frame.
    open_recvs: Vec<(usize, RecvRec)>,
    // Critical visits awaiting body entry/exit.
    open_criticals: Vec<(usize, CriticalVisit)>,
}

impl StreamExtractor {
    /// Start an extraction over a trace whose region table is `regions`
    /// and which holds (about) `n_locations` locations.
    pub fn new(regions: &[RegionMeta], n_locations: usize) -> Self {
        let find = |name: &str| {
            regions
                .iter()
                .position(|m| m.name == name)
                .map(|i| RegionId(i as u32))
        };
        StreamExtractor {
            ex: Extract::default(),
            coll_groups: HashMap::new(),
            r_init: find("MPI_Init"),
            r_fin: find("MPI_Finalize"),
            crit_pairs: [
                (find("omp_critical"), find("omp_critical_body")),
                (find("omp_lock"), find("omp_lock_body")),
            ],
            n_locs: n_locations.max(1),
            stack: Vec::new(),
            path_stack: Vec::new(),
            open_sends: Vec::new(),
            open_recvs: Vec::new(),
            open_criticals: Vec::new(),
        }
    }

    /// Pre-size the record containers from known event-kind counts, so the
    /// hot scan never reallocates.
    pub fn reserve(&mut self, n_sends: usize, n_recvs: usize, n_collends: usize) {
        self.ex.sends.reserve(n_sends);
        self.ex.recvs.reserve(n_recvs);
        self.coll_groups.reserve(n_collends / self.n_locs + 1);
    }

    /// Scan one location's events (in stream order). Locations must be fed
    /// in ascending `LocationId` order for record and path-interning order
    /// to match [`extract`] over the equivalent materialized trace.
    pub fn scan_events(&mut self, loc: LocationId, events: impl IntoIterator<Item = Event>) {
        let is_crit = |pairs: &[(Option<RegionId>, Option<RegionId>); 2], r: RegionId| {
            pairs.iter().any(|(c, _)| *c == Some(r))
        };
        let is_crit_body = |pairs: &[(Option<RegionId>, Option<RegionId>); 2], r: RegionId| {
            pairs.iter().any(|(_, b)| *b == Some(r))
        };
        self.stack.clear();
        self.path_stack.clear();
        self.open_sends.clear();
        self.open_recvs.clear();
        self.open_criticals.clear();

        for ev in events {
            match ev.kind {
                EventKind::Enter { region } => {
                    self.stack.push((region, ev.time));
                    self.path_stack.push(region);
                    if is_crit_body(&self.crit_pairs, region) {
                        if let Some((_, visit)) = self.open_criticals.last_mut() {
                            visit.acquired = ev.time;
                        }
                    }
                    if is_crit(&self.crit_pairs, region) {
                        let path = self.ex.paths.intern(&self.path_stack);
                        self.open_criticals.push((
                            self.stack.len(),
                            CriticalVisit {
                                loc,
                                path,
                                arrive: ev.time,
                                acquired: ev.time,
                                released: ev.time,
                            },
                        ));
                    }
                }
                EventKind::Exit { region } => {
                    let depth = self.stack.len();
                    // Intern before popping: the current path (ending at
                    // `region`) is exactly the setup-record path below.
                    let exit_path = (self.r_init == Some(region) || self.r_fin == Some(region))
                        .then(|| self.ex.paths.intern(&self.path_stack));
                    let (top, entered) = self.stack.pop().expect("wellformed trace");
                    self.path_stack.pop();
                    debug_assert_eq!(top, region);
                    // Flush operations owned by this frame.
                    while self.open_sends.last().is_some_and(|(d, _)| *d == depth) {
                        let (_, mut s) = self.open_sends.pop().expect("just checked");
                        s.enter = entered;
                        s.exit = ev.time;
                        self.ex.sends.push(s);
                    }
                    while self.open_recvs.last().is_some_and(|(d, _)| *d == depth) {
                        let (_, mut r) = self.open_recvs.pop().expect("just checked");
                        r.enter = entered;
                        r.exit = ev.time;
                        self.ex.recvs.push(r);
                    }
                    if is_crit(&self.crit_pairs, region) {
                        if let Some((d, mut visit)) = self.open_criticals.pop() {
                            debug_assert_eq!(d, depth);
                            visit.released = ev.time;
                            self.ex.criticals.push(visit);
                        }
                    }
                    if let Some(path) = exit_path {
                        self.ex.setup.push(SetupRec {
                            loc,
                            path,
                            time: ev.time - entered,
                        });
                    }
                }
                EventKind::Send {
                    to,
                    comm,
                    tag,
                    bytes,
                } => {
                    let path = self.ex.paths.intern(&self.path_stack);
                    self.open_sends.push((
                        self.stack.len(),
                        SendRec {
                            loc,
                            path,
                            enter: ev.time,
                            exit: ev.time,
                            post: ev.time,
                            to,
                            comm,
                            tag,
                            bytes,
                        },
                    ));
                }
                EventKind::Recv {
                    from,
                    comm,
                    tag,
                    bytes,
                    posted,
                } => {
                    let path = self.ex.paths.intern(&self.path_stack);
                    self.open_recvs.push((
                        self.stack.len(),
                        RecvRec {
                            loc,
                            path,
                            enter: ev.time,
                            exit: ev.time,
                            posted,
                            completion: ev.time,
                            from,
                            comm,
                            tag,
                            bytes,
                        },
                    ));
                }
                EventKind::CollEnd {
                    op,
                    comm,
                    root,
                    seq,
                    bytes,
                    entered,
                } => {
                    let path = self.ex.paths.intern(&self.path_stack);
                    let n_locs = self.n_locs;
                    let inst = self
                        .coll_groups
                        .entry((comm, seq, op))
                        .or_insert_with(|| CollInstance {
                            op,
                            comm,
                            root,
                            seq,
                            members: Vec::with_capacity(n_locs),
                        });
                    inst.members.push(CollMember {
                        loc,
                        path,
                        entered,
                        exit: ev.time,
                        bytes,
                    });
                }
            }
        }
    }

    /// Finalize: canonically sort the records and hand over the
    /// [`Extract`]. Sort keys are independent of the per-location feed
    /// order, so equal record sets yield equal extracts.
    pub fn finish(self) -> Extract {
        let mut ex = self.ex;
        // Unstable sorts: cheaper than the stable ones (no temp
        // allocation), and safe because every key is a total order —
        // (comm, seq) and member locations are unique by construction, and
        // the p2p keys carry enough trailing fields that ties only occur
        // between fully identical records.
        let mut colls: Vec<CollInstance> = self.coll_groups.into_values().collect();
        for c in &mut colls {
            c.members.sort_unstable_by_key(|m| m.loc);
        }
        colls.sort_unstable_by_key(|c| (c.comm, c.seq));
        ex.colls = colls;
        ex.sends
            .sort_unstable_by_key(|s| (s.comm, s.loc, s.to, s.tag, s.post, s.exit, s.bytes, s.path));
        ex.recvs.sort_unstable_by_key(|r| {
            (
                r.comm,
                r.from,
                r.loc,
                r.tag,
                r.posted,
                r.completion,
                r.bytes,
                r.path,
            )
        });
        ex
    }
}

/// Scan the trace and build the [`Extract`].
pub fn extract(trace: &Trace) -> Extract {
    let mut sx = StreamExtractor::new(&trace.regions, trace.num_locations());
    // Pre-size the record vectors from a cheap tag-counting pass so the
    // hot loop never reallocates.
    let (mut n_sends, mut n_recvs, mut n_collends) = (0usize, 0usize, 0usize);
    for lt in &trace.locations {
        for ev in &lt.events {
            match ev.kind {
                EventKind::Send { .. } => n_sends += 1,
                EventKind::Recv { .. } => n_recvs += 1,
                EventKind::CollEnd { .. } => n_collends += 1,
                _ => {}
            }
        }
    }
    sx.reserve(n_sends, n_recvs, n_collends);
    for lt in &trace.locations {
        sx.scan_events(lt.location, lt.events.iter().copied());
    }
    sx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, properties::mpi_p2p, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    fn cfg_with_setup(n: usize) -> SimConfig {
        SimConfig {
            init_time: VDur::from_millis(2),
            finalize_time: VDur::from_millis(1),
            ..cfg(n)
        }
    }

    #[test]
    fn extracts_sends_and_recvs_with_frames() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.0, 0.030, 1, &c);
        });
        let ex = extract(&trace);
        assert_eq!(ex.sends.len(), 1);
        assert_eq!(ex.recvs.len(), 1);
        let s = &ex.sends[0];
        let r = &ex.recvs[0];
        assert_eq!(s.loc.rank, 0);
        assert_eq!(r.loc.rank, 1);
        assert_eq!(s.to, 1);
        assert_eq!(r.from, 0);
        // The recv blocked from 0 to 30ms.
        assert_eq!(r.posted, VTime::ZERO);
        assert_eq!(r.completion, VTime::from_secs(0.030));
        // Paths end at the MPI call inside the property frame.
        assert_eq!(ex.paths.leaf_name(s.path, &trace), "MPI_Send");
        assert!(ex.paths.contains_region(r.path, &trace, "late_sender"));
    }

    #[test]
    fn extracts_collective_instances_grouped() {
        let df = Distr::linear(0.001, 0.004);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 3, &c);
        });
        let ex = extract(&trace);
        let barriers: Vec<_> = ex
            .colls
            .iter()
            .filter(|c| c.op == ats_trace::CollOp::Barrier)
            .collect();
        assert_eq!(barriers.len(), 3, "3 repetitions = 3 instances");
        for b in barriers {
            assert_eq!(b.members.len(), 4);
        }
    }

    #[test]
    fn root_member_resolution_uses_comm_defs() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_coll::late_broadcast(p, &BaseComm::default(), 0.001, 0.010, 2, 1, &c);
        });
        let ex = extract(&trace);
        let bcast = ex
            .colls
            .iter()
            .find(|c| c.op == ats_trace::CollOp::Bcast)
            .unwrap();
        let root = bcast.root_member(&trace).expect("root resolvable");
        assert_eq!(root.loc.rank, 2);
    }

    #[test]
    fn setup_times_extracted_per_location() {
        let trace = ats_mpi::run(cfg_with_setup(2), |p| {
            p.do_work(VDur::from_millis(1));
        });
        let ex = extract(&trace);
        // 2 ranks x (init + finalize).
        assert_eq!(ex.setup.len(), 4);
        let total: VDur = ex.setup.iter().map(|s| s.time).sum();
        assert_eq!(total, VDur::from_millis(2 * (2 + 1)));
    }

    #[test]
    fn critical_visits_extracted() {
        use ats_omp::{parallel, run_omp, OmpConfig};
        let trace = run_omp(
            OmpConfig {
                model: MachineModel::zero(),
                ..Default::default()
            },
            |m| {
                parallel(m, 3, |th| {
                    th.critical("c", |th| th.do_work(VDur::from_millis(5)));
                });
            },
        );
        let ex = extract(&trace);
        assert_eq!(ex.criticals.len(), 3);
        let total_wait: VDur = ex.criticals.iter().map(|v| v.acquired - v.arrive).sum();
        // Waits 0 + 5 + 10 = 15ms.
        assert_eq!(total_wait, VDur::from_millis(15));
        for v in &ex.criticals {
            assert!(v.released >= v.acquired);
        }
    }
}
