//! ASL abstract syntax.

use ats_trace::CollOp;
use std::fmt;

/// The record type a property ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Context {
    /// One matched send/receive pair.
    P2pPair,
    /// One member record of a collective instance; optionally restricted
    /// to a set of operations (empty = all).
    Collective(Vec<CollOp>),
    /// One critical-section visit.
    Critical,
    /// One init/finalize occupation.
    Setup,
}

/// Where a triggered property is located.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locate {
    /// The sender side of a pair.
    Sender,
    /// The receiver side of a pair.
    Receiver,
    /// The member record itself (collectives).
    Member,
    /// The record's own location (critical/setup).
    SelfLoc,
}

/// An ASL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Numeric literal (seconds).
    Num(f64),
    /// Context variable or LET binding.
    Var(String),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// `max(a, b)`.
    Max(Box<Expr>, Box<Expr>),
    /// `min(a, b)`.
    Min(Box<Expr>, Box<Expr>),
    /// `clamp(x, lo, hi)`.
    Clamp(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction (saturating at 0 is NOT implied; ASL works in f64).
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Greater-than (1.0 / 0.0).
    Gt,
    /// Less-than.
    Lt,
    /// Greater-or-equal.
    Ge,
    /// Less-or-equal.
    Le,
    /// Equality.
    Eq,
}

/// One property declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Property name (reported on findings).
    pub name: String,
    /// Record type it ranges over.
    pub context: Context,
    /// `LET` bindings, in order.
    pub lets: Vec<(String, Expr)>,
    /// The waiting-time expression.
    pub wait: Expr,
    /// All `CONDITION`s must hold (evaluate nonzero). The special variable
    /// `wait` is bound to the evaluated WAIT value.
    pub conditions: Vec<Expr>,
    /// Localization.
    pub locate: Locate,
}

/// A parsed set of property declarations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PropertySet {
    /// The declarations, in source order.
    pub properties: Vec<Property>,
}

impl PropertySet {
    /// Find a property by name.
    pub fn find(&self, name: &str) -> Option<&Property> {
        self.properties.iter().find(|p| p.name == name)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Max(a, b) => write!(f, "max({a}, {b})"),
            Expr::Min(a, b) => write!(f, "min({a}, {b})"),
            Expr::Clamp(x, lo, hi) => write!(f, "clamp({x}, {lo}, {hi})"),
            Expr::Bin(a, op, b) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Gt => ">",
                    BinOp::Lt => "<",
                    BinOp::Ge => ">=",
                    BinOp::Le => "<=",
                    BinOp::Eq => "==",
                };
                write!(f, "({a} {sym} {b})")
            }
        }
    }
}

impl fmt::Display for Property {
    /// Pretty-print back to parseable ASL source.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ctx = match &self.context {
            Context::P2pPair => "p2p_pair".to_owned(),
            Context::Critical => "critical".to_owned(),
            Context::Setup => "setup".to_owned(),
            Context::Collective(ops) if ops.is_empty() => "collective".to_owned(),
            Context::Collective(ops) => {
                // The parser's op keywords are the enum variant names.
                let mapped: Vec<String> = ops.iter().map(|o| format!("{o:?}")).collect();
                format!("collective({})", mapped.join(", "))
            }
        };
        writeln!(f, "PROPERTY {} OVER {ctx} {{", self.name)?;
        for (name, e) in &self.lets {
            writeln!(f, "    LET {name} = {e};")?;
        }
        writeln!(f, "    WAIT {};", self.wait)?;
        for c in &self.conditions {
            writeln!(f, "    CONDITION {c};")?;
        }
        let loc = match self.locate {
            Locate::Sender => "sender",
            Locate::Receiver => "receiver",
            Locate::Member => "member",
            Locate::SelfLoc => "self",
        };
        writeln!(f, "    LOCATE {loc};")?;
        write!(f, "}}")
    }
}

impl fmt::Display for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.properties {
            writeln!(f, "{p}\n")?;
        }
        Ok(())
    }
}

/// Parse or evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AslError {
    /// Human-readable message with position information.
    pub message: String,
}

impl fmt::Display for AslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ASL error: {}", self.message)
    }
}

impl std::error::Error for AslError {}

impl AslError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        AslError {
            message: message.into(),
        }
    }
}
