//! ASL evaluation over the analyzer's extracted records.

use super::ast::{AslError, BinOp, Context, Expr, Locate, Property, PropertySet};
use crate::callpath::PathId;
use crate::extract::Extract;
use crate::patterns::{match_messages, MatchedPair};
use ats_runtime::VDur;
use ats_runtime::VTime;
use ats_trace::{LocationId, Trace};
use std::collections::HashMap;

/// One ASL-produced finding.
#[derive(Debug, Clone, PartialEq)]
pub struct AslFinding {
    /// Name of the triggered property declaration.
    pub property: String,
    /// Call path of the located side.
    pub path: PathId,
    /// Blamed location.
    pub loc: LocationId,
    /// The evaluated waiting time (clamped at zero).
    pub wait: VDur,
}

/// Evaluate a property set over a trace's extracted records.
pub fn evaluate(
    set: &PropertySet,
    ex: &Extract,
    trace: &Trace,
) -> Result<Vec<AslFinding>, AslError> {
    let pairs = match_messages(ex);
    let mut out = Vec::new();
    for prop in &set.properties {
        match &prop.context {
            Context::P2pPair => {
                for pair in &pairs {
                    let env = pair_env(pair);
                    if let Some(f) = trigger(prop, &env, locate_pair(prop.locate, pair))? {
                        out.push(f);
                    }
                }
            }
            Context::Collective(ops) => {
                for inst in &ex.colls {
                    if !ops.is_empty() && !ops.contains(&inst.op) {
                        continue;
                    }
                    let max_entry = inst.last_entry();
                    let root = inst.root_member(trace).map(|m| (m.loc, m.entered));
                    let max_nonroot = inst
                        .members
                        .iter()
                        .filter(|m| root.map(|(l, _)| l != m.loc).unwrap_or(true))
                        .map(|m| m.entered)
                        .max();
                    for m in &inst.members {
                        let mut env = HashMap::new();
                        env.insert("entered", secs(m.entered));
                        env.insert("exit", secs(m.exit));
                        env.insert("max_entry", secs(max_entry));
                        env.insert("bytes", m.bytes as f64);
                        if let Some((root_loc, root_entry)) = root {
                            env.insert("root_entry", secs(root_entry));
                            env.insert("is_root", if m.loc == root_loc { 1.0 } else { 0.0 });
                        }
                        if let Some(mn) = max_nonroot {
                            env.insert("max_nonroot_entry", secs(mn));
                        }
                        if let Some(f) = trigger(prop, &env, (m.path, m.loc))? {
                            out.push(f);
                        }
                    }
                }
            }
            Context::Critical => {
                for v in &ex.criticals {
                    let mut env = HashMap::new();
                    env.insert("arrive", secs(v.arrive));
                    env.insert("acquired", secs(v.acquired));
                    env.insert("released", secs(v.released));
                    if let Some(f) = trigger(prop, &env, (v.path, v.loc))? {
                        out.push(f);
                    }
                }
            }
            Context::Setup => {
                for s in &ex.setup {
                    let mut env = HashMap::new();
                    env.insert("time", s.time.as_secs());
                    if let Some(f) = trigger(prop, &env, (s.path, s.loc))? {
                        out.push(f);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Total ASL waiting time per property name — the aggregate compared
/// against the built-in detectors in the equivalence tests.
pub fn totals(findings: &[AslFinding]) -> HashMap<String, VDur> {
    let mut out: HashMap<String, VDur> = HashMap::new();
    for f in findings {
        *out.entry(f.property.clone()).or_default() += f.wait;
    }
    out
}

fn secs(t: VTime) -> f64 {
    t.as_secs()
}

fn pair_env(pair: &MatchedPair) -> HashMap<&'static str, f64> {
    let mut env = HashMap::new();
    env.insert("send_post", secs(pair.send.post));
    env.insert("send_enter", secs(pair.send.enter));
    env.insert("send_exit", secs(pair.send.exit));
    env.insert("recv_posted", secs(pair.recv.posted));
    env.insert("recv_enter", secs(pair.recv.enter));
    env.insert("recv_exit", secs(pair.recv.exit));
    env.insert("recv_completion", secs(pair.recv.completion));
    env.insert("bytes", pair.send.bytes as f64);
    env
}

fn locate_pair(locate: Locate, pair: &MatchedPair) -> (PathId, LocationId) {
    match locate {
        Locate::Sender => (pair.send.path, pair.send.loc),
        _ => (pair.recv.path, pair.recv.loc),
    }
}

fn trigger(
    prop: &Property,
    env: &HashMap<&'static str, f64>,
    (path, loc): (PathId, LocationId),
) -> Result<Option<AslFinding>, AslError> {
    let mut scope: HashMap<String, f64> = env.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
    for (name, e) in &prop.lets {
        let v = eval_expr(e, &scope, &prop.name)?;
        scope.insert(name.clone(), v);
    }
    let wait = eval_expr(&prop.wait, &scope, &prop.name)?;
    scope.insert("wait".to_owned(), wait);
    for cond in &prop.conditions {
        let v = eval_expr(cond, &scope, &prop.name)?;
        if v == 0.0 {
            return Ok(None);
        }
    }
    if wait <= 0.0 {
        return Ok(None);
    }
    Ok(Some(AslFinding {
        property: prop.name.clone(),
        path,
        loc,
        wait: VDur::from_secs(wait),
    }))
}

fn eval_expr(e: &Expr, scope: &HashMap<String, f64>, prop: &str) -> Result<f64, AslError> {
    Ok(match e {
        Expr::Num(n) => *n,
        Expr::Var(name) => *scope.get(name).ok_or_else(|| {
            AslError::new(format!("{prop}: unknown variable `{name}` in this context"))
        })?,
        Expr::Neg(inner) => -eval_expr(inner, scope, prop)?,
        Expr::Max(a, b) => eval_expr(a, scope, prop)?.max(eval_expr(b, scope, prop)?),
        Expr::Min(a, b) => eval_expr(a, scope, prop)?.min(eval_expr(b, scope, prop)?),
        Expr::Clamp(x, lo, hi) => {
            let x = eval_expr(x, scope, prop)?;
            let lo = eval_expr(lo, scope, prop)?;
            let hi = eval_expr(hi, scope, prop)?;
            x.max(lo).min(hi)
        }
        Expr::Bin(a, op, b) => {
            let a = eval_expr(a, scope, prop)?;
            let b = eval_expr(b, scope, prop)?;
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Gt => f64::from(a > b),
                BinOp::Lt => f64::from(a < b),
                BinOp::Ge => f64::from(a >= b),
                BinOp::Le => f64::from(a <= b),
                BinOp::Eq => f64::from(a == b),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::super::default_property_set;
    use super::*;
    use crate::analyzer::{analyze, AnalyzerConfig};
    use crate::extract::extract;
    use ats_core::composite::{two_communicator_composite, CompositeParams};
    use ats_core::{properties::mpi_coll, properties::mpi_p2p, with_omp, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::MachineModel;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    /// The headline equivalence: for a program exhibiting many properties,
    /// the declarative ASL set reproduces the built-in detectors' totals
    /// exactly (same waits, per property).
    #[test]
    fn asl_default_set_matches_builtin_detectors() {
        let params = CompositeParams {
            basework: 0.002,
            extrawork: 0.01,
            reps: 2,
            ..Default::default()
        };
        let trace = ats_mpi::run(cfg(8), move |p| {
            let c = p.comm_world();
            two_communicator_composite(p, &params, &c);
        });
        let ex = extract(&trace);
        let findings = evaluate(&default_property_set(), &ex, &trace).unwrap();
        let asl_totals = totals(&findings);
        let builtin = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        for prop in [
            "LateSender",
            "LateReceiver",
            "WaitAtBarrier",
            "LateBroadcast",
            "EarlyReduce",
        ] {
            let built: f64 = builtin.cube.by_property(prop.parse().unwrap()).as_secs();
            let asl = asl_totals
                .get(prop)
                .copied()
                .unwrap_or(VDur::ZERO)
                .as_secs();
            assert!(
                (built - asl).abs() < 1e-9,
                "{prop}: builtin {built} vs ASL {asl}"
            );
        }
    }

    #[test]
    fn asl_omp_properties_match_builtins() {
        let df = Distr::linear(0.002, 0.02);
        let trace = ats_mpi::run(cfg(2), move |p| {
            with_omp(p, |m| {
                ats_core::properties::omp::imbalance_at_omp_barrier(m, 4, &df, 2);
                ats_core::properties::omp::omp_critical_contention(m, 4, 0.01, 0.0, 1);
            });
        });
        let ex = extract(&trace);
        let findings = evaluate(&default_property_set(), &ex, &trace).unwrap();
        let asl_totals = totals(&findings);
        let builtin = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        for prop in [
            "OmpWaitAtBarrier",
            "OmpImbalanceInRegion",
            "OmpCriticalContention",
        ] {
            let built = builtin.cube.by_property(prop.parse().unwrap()).as_secs();
            let asl = asl_totals
                .get(prop)
                .copied()
                .unwrap_or(VDur::ZERO)
                .as_secs();
            assert!(
                (built - asl).abs() < 1e-9,
                "{prop}: builtin {built} vs ASL {asl}"
            );
        }
    }

    #[test]
    fn custom_property_definitions_work() {
        // A user-defined property: "slow transfer" — any pair whose
        // delivery takes longer than 1ms after both sides are ready.
        let set = super::super::parse(
            r"PROPERTY SlowTransfer OVER p2p_pair {
                LET ready = max(send_post, recv_posted);
                WAIT recv_completion - ready;
                CONDITION wait > 0.001;
                LOCATE receiver;
            }",
        )
        .unwrap();
        // With a 10ms latency model, every transfer is 'slow'.
        let mut config = cfg(2);
        config.model = MachineModel {
            latency: ats_runtime::VDur::from_millis(2),
            ..MachineModel::zero()
        };
        let trace = ats_mpi::run(config, |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.004, 3, &c);
        });
        let ex = extract(&trace);
        let findings = evaluate(&set, &ex, &trace).unwrap();
        assert_eq!(findings.len(), 3, "one per repetition");
        for f in &findings {
            assert_eq!(f.property, "SlowTransfer");
            assert!(f.wait >= VDur::from_millis(2));
        }
    }

    #[test]
    fn unknown_variable_is_reported_with_property_name() {
        let set = super::super::parse("PROPERTY Broken OVER setup { WAIT nonsense; LOCATE self; }")
            .unwrap();
        let trace = ats_mpi::run(
            SimConfig {
                nprocs: 2,
                model: MachineModel::zero(),
                ..Default::default()
            },
            |p| p.do_work(VDur::from_millis(1)),
        );
        let ex = extract(&trace);
        let err = evaluate(&set, &ex, &trace).unwrap_err();
        assert!(err.message.contains("Broken"));
        assert!(err.message.contains("nonsense"));
    }

    #[test]
    fn negative_programs_trigger_nothing() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            ats_core::properties::negative::balanced_mpi_barrier(p, 0.01, 2, &c);
            mpi_coll::imbalance_at_mpi_barrier(p, &Distr::same(0.005), 1, &c);
        });
        let ex = extract(&trace);
        let findings = evaluate(&default_property_set(), &ex, &trace).unwrap();
        assert!(findings.is_empty(), "{findings:?}");
    }
}
