//! ASL — a compact APART Specification Language for performance
//! properties.
//!
//! The ATS paper builds on APART's first-phase result: "ASL, a
//! specification language for describing performance properties was
//! developed \[7\] ... The ASL report also includes a catalog of typical
//! performance properties for MPI, OpenMP and HPF programs. These typical
//! properties can form the basis for the ATS framework."
//!
//! This module implements an executable subset of that idea: performance
//! properties are *declared* as small programs over the analyzer's
//! compound-event records, instead of being hard-coded detectors. A
//! property names a context (a matched message pair, a collective
//! instance, a critical-section visit, an init/finalize occupation),
//! computes a waiting time, guards it with a condition, and says where to
//! locate the finding:
//!
//! ```text
//! PROPERTY LateSender OVER p2p_pair {
//!     LET blocked = clamp(send_post, recv_posted, recv_completion);
//!     WAIT blocked - recv_posted;
//!     CONDITION wait > 0;
//!     LOCATE receiver;
//! }
//! ```
//!
//! [`default_property_set`] ships declarations equivalent to the built-in
//! detectors in [`crate::patterns`]; the test suite proves the equivalence.
//! Tool developers can load their own sets with [`parse`] and evaluate
//! them with [`evaluate`], giving the suite a second, *configurable*
//! reference tool.

mod ast;
mod eval;
mod parse;

pub use ast::{AslError, Context, Expr, Locate, Property, PropertySet};
pub use eval::{evaluate, totals, AslFinding};
pub use parse::parse;

/// The default ASL property set: the ASL-catalog core, equivalent to the
/// built-in pattern detectors.
pub const DEFAULT_PROPERTY_SET: &str = r#"
// MPI point-to-point ---------------------------------------------------

PROPERTY LateSender OVER p2p_pair {
    LET blocked = clamp(send_post, recv_posted, recv_completion);
    WAIT blocked - recv_posted;
    CONDITION wait > 0;
    LOCATE receiver;
}

PROPERTY LateReceiver OVER p2p_pair {
    LET blocked = clamp(recv_posted, send_post, send_exit);
    WAIT blocked - send_post;
    CONDITION wait > 0;
    LOCATE sender;
}

// MPI collectives ------------------------------------------------------

PROPERTY WaitAtBarrier OVER collective(Barrier) {
    WAIT max_entry - entered;
    CONDITION wait > 0;
    LOCATE member;
}

PROPERTY WaitAtNxN OVER collective(Alltoall, Alltoallv, Allreduce, Allgather) {
    WAIT max_entry - entered;
    CONDITION wait > 0;
    LOCATE member;
}

PROPERTY LateBroadcast OVER collective(Bcast) {
    WAIT root_entry - entered;
    CONDITION wait > 0;
    CONDITION is_root == 0;
    LOCATE member;
}

PROPERTY LateScatter OVER collective(Scatter, Scatterv) {
    WAIT root_entry - entered;
    CONDITION wait > 0;
    CONDITION is_root == 0;
    LOCATE member;
}

PROPERTY EarlyReduce OVER collective(Reduce) {
    WAIT max_nonroot_entry - entered;
    CONDITION is_root == 1;
    CONDITION wait > 0;
    LOCATE member;
}

PROPERTY EarlyGather OVER collective(Gather, Gatherv) {
    WAIT max_nonroot_entry - entered;
    CONDITION is_root == 1;
    CONDITION wait > 0;
    LOCATE member;
}

// OpenMP ----------------------------------------------------------------

PROPERTY OmpWaitAtBarrier OVER collective(OmpBarrier) {
    WAIT max_entry - entered;
    CONDITION wait > 0;
    LOCATE member;
}

PROPERTY OmpImbalanceInRegion OVER collective(OmpJoin) {
    WAIT exit - entered;
    CONDITION wait > 0;
    LOCATE member;
}

PROPERTY OmpCriticalContention OVER critical {
    WAIT acquired - arrive;
    CONDITION wait > 0;
    LOCATE self;
}

// Environment -----------------------------------------------------------

PROPERTY MpiSetupOverhead OVER setup {
    WAIT time;
    CONDITION wait > 0;
    LOCATE self;
}
"#;

/// Parse the bundled default property set (panics only if the embedded
/// text is broken, which the tests rule out).
pub fn default_property_set() -> PropertySet {
    parse(DEFAULT_PROPERTY_SET).expect("bundled ASL set parses")
}
