//! A hand-rolled recursive-descent parser for the ASL subset.

use super::ast::{AslError, BinOp, Context, Expr, Locate, Property, PropertySet};
use ats_trace::CollOp;

/// Parse a property-set source text.
pub fn parse(src: &str) -> Result<PropertySet, AslError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut properties = Vec::new();
    while !p.at_end() {
        properties.push(p.property()?);
    }
    let set = PropertySet { properties };
    // Reject duplicate names early.
    for (i, a) in set.properties.iter().enumerate() {
        if set.properties[..i].iter().any(|b| b.name == a.name) {
            return Err(AslError::new(format!("duplicate property `{}`", a.name)));
        }
    }
    Ok(set)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Sym(char),
    // two-char comparison operators
    Ge,
    Le,
    EqEq,
}

fn lex(src: &str) -> Result<Vec<Tok>, AslError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Tok::Ident(bytes[start..i].iter().collect()));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| AslError::new(format!("bad number `{text}`")))?;
                out.push(Tok::Num(n));
            }
            '>' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ge);
                i += 2;
            }
            '<' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Le);
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::EqEq);
                i += 2;
            }
            '{' | '}' | '(' | ')' | ';' | ',' | '=' | '+' | '-' | '*' | '/' | '>' | '<' => {
                out.push(Tok::Sym(c));
                i += 1;
            }
            other => return Err(AslError::new(format!("unexpected character `{other}`"))),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Result<Tok, AslError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| AslError::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_sym(&mut self, c: char) -> Result<(), AslError> {
        match self.next()? {
            Tok::Sym(s) if s == c => Ok(()),
            other => Err(AslError::new(format!("expected `{c}`, found {other:?}"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), AslError> {
        match self.next()? {
            Tok::Ident(w) if w == kw => Ok(()),
            other => Err(AslError::new(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn ident(&mut self) -> Result<String, AslError> {
        match self.next()? {
            Tok::Ident(w) => Ok(w),
            other => Err(AslError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn property(&mut self) -> Result<Property, AslError> {
        self.expect_kw("PROPERTY")?;
        let name = self.ident()?;
        self.expect_kw("OVER")?;
        let context = self.context()?;
        self.expect_sym('{')?;
        let mut lets = Vec::new();
        let mut wait = None;
        let mut conditions = Vec::new();
        let mut locate = None;
        loop {
            match self.peek() {
                Some(Tok::Sym('}')) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    "LET" => {
                        self.pos += 1;
                        let name = self.ident()?;
                        self.expect_sym('=')?;
                        let e = self.expr()?;
                        self.expect_sym(';')?;
                        lets.push((name, e));
                    }
                    "WAIT" => {
                        self.pos += 1;
                        let e = self.expr()?;
                        self.expect_sym(';')?;
                        if wait.replace(e).is_some() {
                            return Err(AslError::new(format!("{name}: duplicate WAIT")));
                        }
                    }
                    "CONDITION" => {
                        self.pos += 1;
                        let e = self.expr()?;
                        self.expect_sym(';')?;
                        conditions.push(e);
                    }
                    "LOCATE" => {
                        self.pos += 1;
                        let target = self.ident()?;
                        self.expect_sym(';')?;
                        let l = match target.as_str() {
                            "sender" => Locate::Sender,
                            "receiver" => Locate::Receiver,
                            "member" => Locate::Member,
                            "root" => Locate::Member,
                            "self" => Locate::SelfLoc,
                            other => {
                                return Err(AslError::new(format!(
                                    "{name}: unknown LOCATE target `{other}`"
                                )))
                            }
                        };
                        if locate.replace(l).is_some() {
                            return Err(AslError::new(format!("{name}: duplicate LOCATE")));
                        }
                    }
                    other => {
                        return Err(AslError::new(format!(
                            "{name}: unknown statement `{other}`"
                        )))
                    }
                },
                other => return Err(AslError::new(format!("{name}: unexpected {other:?}"))),
            }
        }
        let wait = wait.ok_or_else(|| AslError::new(format!("{name}: missing WAIT")))?;
        let locate = locate.ok_or_else(|| AslError::new(format!("{name}: missing LOCATE")))?;
        // Locate must fit the context.
        let ok = matches!(
            (&context, locate),
            (Context::P2pPair, Locate::Sender | Locate::Receiver)
                | (Context::Collective(_), Locate::Member)
                | (Context::Critical, Locate::SelfLoc)
                | (Context::Setup, Locate::SelfLoc)
        );
        if !ok {
            return Err(AslError::new(format!(
                "{name}: LOCATE target does not fit context {context:?}"
            )));
        }
        Ok(Property {
            name,
            context,
            lets,
            wait,
            conditions,
            locate,
        })
    }

    fn context(&mut self) -> Result<Context, AslError> {
        let name = self.ident()?;
        match name.as_str() {
            "p2p_pair" => Ok(Context::P2pPair),
            "critical" => Ok(Context::Critical),
            "setup" => Ok(Context::Setup),
            "collective" => {
                let mut ops = Vec::new();
                if self.peek() == Some(&Tok::Sym('(')) {
                    self.pos += 1;
                    loop {
                        let op = self.ident()?;
                        ops.push(coll_op(&op)?);
                        match self.next()? {
                            Tok::Sym(',') => continue,
                            Tok::Sym(')') => break,
                            other => {
                                return Err(AslError::new(format!(
                                    "expected `,` or `)`, found {other:?}"
                                )))
                            }
                        }
                    }
                }
                Ok(Context::Collective(ops))
            }
            other => Err(AslError::new(format!("unknown context `{other}`"))),
        }
    }

    // expr := cmp ; cmp := sum ((>|<|>=|<=|==) sum)? ; sum := term ((+|-) term)* ;
    // term := factor ((*|/) factor)* ; factor := NUM | IDENT | call | (expr) | -factor
    fn expr(&mut self) -> Result<Expr, AslError> {
        let lhs = self.sum()?;
        let op = match self.peek() {
            Some(Tok::Sym('>')) => Some(BinOp::Gt),
            Some(Tok::Sym('<')) => Some(BinOp::Lt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::EqEq) => Some(BinOp::Eq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.sum()?;
            Ok(Expr::Bin(Box::new(lhs), op, Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn sum(&mut self) -> Result<Expr, AslError> {
        let mut e = self.term()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym('+')) => BinOp::Add,
                Some(Tok::Sym('-')) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.term()?;
            e = Expr::Bin(Box::new(e), op, Box::new(rhs));
        }
        Ok(e)
    }

    fn term(&mut self) -> Result<Expr, AslError> {
        let mut e = self.factor()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Sym('*')) => BinOp::Mul,
                Some(Tok::Sym('/')) => BinOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.factor()?;
            e = Expr::Bin(Box::new(e), op, Box::new(rhs));
        }
        Ok(e)
    }

    fn factor(&mut self) -> Result<Expr, AslError> {
        match self.next()? {
            Tok::Num(n) => Ok(Expr::Num(n)),
            Tok::Sym('-') => Ok(Expr::Neg(Box::new(self.factor()?))),
            Tok::Sym('(') => {
                let e = self.expr()?;
                self.expect_sym(')')?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.peek() == Some(&Tok::Sym('(')) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    loop {
                        args.push(self.expr()?);
                        match self.next()? {
                            Tok::Sym(',') => continue,
                            Tok::Sym(')') => break,
                            other => {
                                return Err(AslError::new(format!(
                                    "expected `,` or `)`, found {other:?}"
                                )))
                            }
                        }
                    }
                    match (name.as_str(), args.len()) {
                        ("max", 2) => {
                            let mut it = args.into_iter();
                            Ok(Expr::Max(
                                Box::new(it.next().expect("len 2")),
                                Box::new(it.next().expect("len 2")),
                            ))
                        }
                        ("min", 2) => {
                            let mut it = args.into_iter();
                            Ok(Expr::Min(
                                Box::new(it.next().expect("len 2")),
                                Box::new(it.next().expect("len 2")),
                            ))
                        }
                        ("clamp", 3) => {
                            let mut it = args.into_iter();
                            Ok(Expr::Clamp(
                                Box::new(it.next().expect("len 3")),
                                Box::new(it.next().expect("len 3")),
                                Box::new(it.next().expect("len 3")),
                            ))
                        }
                        (other, n) => Err(AslError::new(format!(
                            "unknown function `{other}` with {n} arguments"
                        ))),
                    }
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(AslError::new(format!("unexpected token {other:?}"))),
        }
    }
}

fn coll_op(name: &str) -> Result<CollOp, AslError> {
    Ok(match name {
        "Barrier" => CollOp::Barrier,
        "Bcast" => CollOp::Bcast,
        "Scatter" => CollOp::Scatter,
        "Scatterv" => CollOp::Scatterv,
        "Gather" => CollOp::Gather,
        "Gatherv" => CollOp::Gatherv,
        "Reduce" => CollOp::Reduce,
        "Allreduce" => CollOp::Allreduce,
        "Allgather" => CollOp::Allgather,
        "Alltoall" => CollOp::Alltoall,
        "Alltoallv" => CollOp::Alltoallv,
        "Scan" => CollOp::Scan,
        "OmpBarrier" => CollOp::OmpBarrier,
        "OmpFork" => CollOp::OmpFork,
        "OmpJoin" => CollOp::OmpJoin,
        other => return Err(AslError::new(format!("unknown collective op `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_default_set() {
        let set = parse(super::super::DEFAULT_PROPERTY_SET).unwrap();
        assert!(set.properties.len() >= 12);
        let ls = set.find("LateSender").unwrap();
        assert_eq!(ls.context, Context::P2pPair);
        assert_eq!(ls.locate, Locate::Receiver);
        assert_eq!(ls.lets.len(), 1);
        assert_eq!(ls.conditions.len(), 1);
    }

    #[test]
    fn collective_op_filters_parse() {
        let set = parse(
            "PROPERTY X OVER collective(Barrier, OmpBarrier) { WAIT max_entry - entered; LOCATE member; }",
        )
        .unwrap();
        match &set.properties[0].context {
            Context::Collective(ops) => {
                assert_eq!(ops, &vec![CollOp::Barrier, CollOp::OmpBarrier])
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let set = parse("PROPERTY X OVER setup { WAIT 1 + 2 * 3; LOCATE self; }").unwrap();
        // 1 + (2*3), not (1+2)*3.
        match &set.properties[0].wait {
            Expr::Bin(_, BinOp::Add, rhs) => {
                assert!(matches!(**rhs, Expr::Bin(_, BinOp::Mul, _)))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_missing_wait() {
        let err = parse("PROPERTY X OVER setup { LOCATE self; }").unwrap_err();
        assert!(err.message.contains("missing WAIT"));
    }

    #[test]
    fn rejects_bad_locate_for_context() {
        let err = parse("PROPERTY X OVER setup { WAIT time; LOCATE sender; }").unwrap_err();
        assert!(err.message.contains("does not fit"));
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(parse("PROPERTY X OVER bogus { WAIT 1; LOCATE self; }").is_err());
        assert!(parse(
            "PROPERTY X OVER setup { WAIT 1; LOCATE self; } PROPERTY X OVER setup { WAIT 1; LOCATE self; }"
        )
        .is_err());
        assert!(parse("PROPERTY X OVER collective(Bogus) { WAIT 1; LOCATE member; }").is_err());
    }

    #[test]
    fn default_set_roundtrips_through_display() {
        let set = parse(super::super::DEFAULT_PROPERTY_SET).unwrap();
        let printed = set.to_string();
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n---\n{printed}"));
        assert_eq!(set, reparsed);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let set =
            parse("// a comment\nPROPERTY X OVER setup { // inner\n WAIT time; LOCATE self; }\n")
                .unwrap();
        assert_eq!(set.properties.len(), 1);
    }
}
