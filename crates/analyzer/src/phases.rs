//! Windowed (phase) analysis: severity as a function of *time*.
//!
//! The paper sketches property functions "where the severity of the
//! pattern is a function of the iteration number". A tool that only
//! reports whole-run aggregates cannot distinguish a constant 10%
//! imbalance from one that grows from 0% to 20% — yet the second is the
//! one that kills scalability. This module splits the run into equal time
//! windows, attributes every located wait to the window containing its
//! *end* (when the waiting became observable), and reports per-window
//! severities plus a rank-correlation trend — the instrument that makes
//! the progressive property functions testable.

use crate::extract::extract;
use crate::patterns;
use crate::property::PropertyKind;
use ats_runtime::{VDur, VTime};
use ats_trace::Trace;
use serde::Serialize;
use std::collections::HashMap;

/// Per-window severities for one property.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSeries {
    /// The property.
    pub property: String,
    /// Waiting time per window (seconds).
    pub waits: Vec<f64>,
    /// Waiting time / window allocation time, per window.
    pub severities: Vec<f64>,
    /// Kendall rank correlation of severity against window index:
    /// +1 = strictly growing, −1 = strictly shrinking, ~0 = flat/noisy.
    pub trend: f64,
}

/// The result of a windowed analysis.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseReport {
    /// Number of windows.
    pub windows: usize,
    /// Window length.
    pub window_len: VDur,
    /// One series per property with any nonzero wait.
    pub series: Vec<PhaseSeries>,
}

impl PhaseReport {
    /// The series for `property`, if it produced any waiting.
    pub fn series_for(&self, property: &str) -> Option<&PhaseSeries> {
        self.series.iter().find(|s| s.property == property)
    }
}

/// Kendall tau between a sequence and its index order.
fn trend_of(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let d = values[j] - values[i];
            if d > 0.0 {
                concordant += 1;
            } else if d < 0.0 {
                discordant += 1;
            }
        }
    }
    (concordant - discordant) as f64 / (n * (n - 1) / 2) as f64
}

/// Run the pattern detectors and bin every located wait into `windows`
/// equal time windows. Each wait *interval* is spread proportionally over
/// the windows it overlaps (so densities are alias-free); the window's
/// allocation denominator is `locations × window length`.
pub fn analyze_phases(trace: &Trace, windows: usize) -> PhaseReport {
    assert!(windows > 0, "need at least one window");
    let ex = extract(trace);
    let t0 = trace.start_time();
    let t1 = trace.end_time();
    let span = (t1 - t0).as_nanos().max(1);
    let window_len = VDur::from_nanos(span / windows as u64 + 1);

    // Collect located waits with an attribution instant. The built-in
    // detectors don't expose completion instants directly, so re-derive
    // them: for pairs/collectives/criticals the record's end time is the
    // natural attribution point. We re-run the detectors and pair each
    // Located with its source record end.
    let mut buckets: HashMap<PropertyKind, Vec<VDur>> = HashMap::new();
    let wl = window_len.as_nanos().max(1);
    let add = |prop: PropertyKind,
               start: VTime,
               end: VTime,
               buckets: &mut HashMap<PropertyKind, Vec<VDur>>| {
        if end <= start {
            return;
        }
        let b = buckets
            .entry(prop)
            .or_insert_with(|| vec![VDur::ZERO; windows]);
        let s = (start - t0).as_nanos();
        let e = (end - t0).as_nanos();
        let first = (s / wl) as usize;
        let last = ((e.saturating_sub(1)) / wl) as usize;
        let last = last.min(windows - 1);
        for (w, bucket) in b.iter_mut().enumerate().take(last + 1).skip(first) {
            let w_start = w as u64 * wl;
            let w_end = w_start + wl;
            let overlap = e.min(w_end).saturating_sub(s.max(w_start));
            *bucket += VDur::from_nanos(overlap);
        }
    };

    // Work from the records directly (mirrors patterns.rs but keeps the
    // attribution instants).
    let pairs = patterns::match_messages(&ex);
    for p in &pairs {
        // Late sender: the receiver blocks over [posted, blocked_until].
        let blocked_until = p.send.post.max(p.recv.posted).min(p.recv.completion);
        add(
            PropertyKind::LateSender,
            p.recv.posted,
            blocked_until,
            &mut buckets,
        );
        // Late receiver: the sender blocks over [post, lr_until].
        let lr_until = p.recv.posted.max(p.send.post).min(p.send.exit);
        add(
            PropertyKind::LateReceiver,
            p.send.post,
            lr_until,
            &mut buckets,
        );
    }
    for inst in &ex.colls {
        for l in patterns::collective_waits(inst, trace) {
            // The member waits from its entry for `wait`.
            let entered = inst
                .members
                .iter()
                .find(|m| m.loc == l.loc)
                .map(|m| m.entered)
                .unwrap_or(t1);
            add(l.property, entered, entered + l.wait, &mut buckets);
        }
    }
    for v in &ex.criticals {
        add(
            PropertyKind::OmpCriticalContention,
            v.arrive,
            v.acquired,
            &mut buckets,
        );
    }

    let window_alloc = window_len.as_secs() * trace.num_locations() as f64;
    let mut series: Vec<PhaseSeries> = buckets
        .into_iter()
        .map(|(prop, waits)| {
            let waits_s: Vec<f64> = waits.iter().map(|w| w.as_secs()).collect();
            let severities: Vec<f64> = waits_s
                .iter()
                .map(|w| {
                    if window_alloc > 0.0 {
                        w / window_alloc
                    } else {
                        0.0
                    }
                })
                .collect();
            PhaseSeries {
                property: prop.name().to_owned(),
                trend: trend_of(&severities),
                waits: waits_s,
                severities,
            }
        })
        .collect();
    series.sort_by(|a, b| a.property.cmp(&b.property));
    PhaseReport {
        windows,
        window_len,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::MachineModel;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn growing_imbalance_has_a_positive_trend() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_coll::growing_imbalance_at_mpi_barrier(p, 0.004, 0.004, 8, &c);
        });
        let report = analyze_phases(&trace, 6);
        let s = report.series_for("WaitAtBarrier").expect("waits exist");
        assert!(
            s.trend > 0.5,
            "growth must be visible: trend {} series {:?}",
            s.trend,
            s.severities
        );
        let half = s.waits.len() / 2;
        let first: f64 = s.waits[..half].iter().sum();
        let second: f64 = s.waits[half..].iter().sum();
        assert!(
            second > first * 1.2,
            "second half must carry more waiting: {first} vs {second}"
        );
    }

    #[test]
    fn multiplicative_progressive_keeps_the_fraction_flat() {
        // The paper's scale-factor variant scales work and wait together:
        // the per-window *fraction* is constant — exactly the contrast the
        // additive `growing_` variant exists to provide.
        let df = Distr::block2(0.002, 0.010);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::progressive_imbalance_at_mpi_barrier(p, &df, 1.0, 6, &c);
        });
        let report = analyze_phases(&trace, 4);
        let s = report.series_for("WaitAtBarrier").expect("waits exist");
        let max = s.severities.iter().cloned().fold(0.0, f64::max);
        let min = s.severities.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max - min < 0.25,
            "fraction roughly flat: {:?}",
            s.severities
        );
    }

    #[test]
    fn constant_imbalance_is_flat() {
        let df = Distr::block2(0.002, 0.010);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 6, &c);
        });
        let report = analyze_phases(&trace, 6);
        let s = report.series_for("WaitAtBarrier").expect("waits exist");
        assert!(
            s.trend.abs() < 0.5,
            "constant imbalance should not trend: {} {:?}",
            s.trend,
            s.severities
        );
        // Roughly equal waits in every window.
        let max = s.waits.iter().cloned().fold(0.0, f64::max);
        let min = s.waits.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < max * 0.6, "windows {:?}", s.waits);
    }

    #[test]
    fn total_windowed_wait_equals_aggregate() {
        let df = Distr::linear(0.001, 0.013);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 3, &c);
        });
        let phases = analyze_phases(&trace, 5);
        let windowed: f64 = phases
            .series_for("WaitAtBarrier")
            .unwrap()
            .waits
            .iter()
            .sum();
        let report = crate::analyze(&trace, &crate::AnalyzerConfig::default().threshold(0.0));
        let aggregate = report
            .cube
            .by_property(PropertyKind::WaitAtBarrier)
            .as_secs();
        assert!((windowed - aggregate).abs() < 1e-9);
    }

    #[test]
    fn single_window_degenerates_to_aggregate() {
        let df = Distr::block2(0.001, 0.005);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 2, &c);
        });
        let phases = analyze_phases(&trace, 1);
        let s = phases.series_for("WaitAtBarrier").unwrap();
        assert_eq!(s.waits.len(), 1);
        assert_eq!(s.trend, 0.0);
    }
}
