//! The severity cube: property × call path × location → waiting time.
//!
//! EXPERT's result representation (paper Fig. 3.5): every cell holds the
//! accumulated waiting time for one (property, call path, location) triple;
//! the *severity* of anything is its share of the machine's total
//! allocation time. The three panes of the EXPERT GUI are the three
//! marginalizations of this cube.

use crate::callpath::PathId;
use crate::patterns::Located;
use crate::property::PropertyKind;
use ats_runtime::VDur;
use ats_trace::LocationId;
use std::collections::HashMap;

/// The cube.
#[derive(Debug, Default, Clone)]
pub struct SeverityCube {
    cells: HashMap<(PropertyKind, PathId, LocationId), VDur>,
    /// Total allocation time (the severity denominator).
    total: VDur,
}

impl SeverityCube {
    /// Create an empty cube with the run's total allocation time.
    pub fn new(total_alloc: VDur) -> Self {
        SeverityCube {
            cells: HashMap::new(),
            total: total_alloc,
        }
    }

    /// Accumulate one located waiting time.
    pub fn add(&mut self, l: Located) {
        *self.cells.entry((l.property, l.path, l.loc)).or_default() += l.wait;
    }

    /// Accumulate many.
    pub fn extend(&mut self, ls: impl IntoIterator<Item = Located>) {
        for l in ls {
            self.add(l);
        }
    }

    /// The severity denominator.
    pub fn total_alloc(&self) -> VDur {
        self.total
    }

    /// Convert a waiting time into a severity fraction of total time.
    pub fn fraction(&self, wait: VDur) -> f64 {
        if self.total.is_zero() {
            0.0
        } else {
            wait.as_secs() / self.total.as_secs()
        }
    }

    /// Number of nonzero cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterate raw cells.
    pub fn cells(&self) -> impl Iterator<Item = (&(PropertyKind, PathId, LocationId), &VDur)> {
        self.cells.iter()
    }

    /// Total waiting time for a property (across paths and locations).
    pub fn by_property(&self, p: PropertyKind) -> VDur {
        self.cells
            .iter()
            .filter(|((prop, _, _), _)| *prop == p)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Waiting time aggregated over locations: `(property, path) -> wait`.
    pub fn by_property_path(&self) -> HashMap<(PropertyKind, PathId), VDur> {
        let mut out: HashMap<(PropertyKind, PathId), VDur> = HashMap::new();
        for ((p, path, _), w) in &self.cells {
            *out.entry((*p, *path)).or_default() += *w;
        }
        out
    }

    /// Per-location breakdown for one (property, path).
    pub fn locations_of(&self, p: PropertyKind, path: PathId) -> Vec<(LocationId, VDur)> {
        let mut v: Vec<(LocationId, VDur)> = self
            .cells
            .iter()
            .filter(|((prop, pa, _), _)| *prop == p && *pa == path)
            .map(|((_, _, loc), w)| (*loc, *w))
            .collect();
        v.sort_by_key(|(loc, _)| *loc);
        v
    }

    /// Interior-node totals: the waiting time of a property subtree
    /// (leaf times roll up to ancestors).
    pub fn subtree_total(&self, node: PropertyKind) -> VDur {
        PropertyKind::leaves()
            .iter()
            .filter(|leaf| {
                let mut cur = Some(**leaf);
                while let Some(c) = cur {
                    if c == node {
                        return true;
                    }
                    cur = c.parent();
                }
                false
            })
            .map(|leaf| self.by_property(*leaf))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(p: PropertyKind, path: u32, rank: u32, ms: u64) -> Located {
        Located {
            property: p,
            path: PathId(path),
            loc: LocationId::rank(rank),
            wait: VDur::from_millis(ms),
        }
    }

    #[test]
    fn accumulates_cells() {
        let mut cube = SeverityCube::new(VDur::from_millis(1000));
        cube.add(l(PropertyKind::LateSender, 0, 1, 10));
        cube.add(l(PropertyKind::LateSender, 0, 1, 5));
        cube.add(l(PropertyKind::LateSender, 0, 2, 7));
        assert_eq!(cube.len(), 2);
        assert_eq!(
            cube.by_property(PropertyKind::LateSender),
            VDur::from_millis(22)
        );
    }

    #[test]
    fn fraction_uses_total() {
        let cube = SeverityCube::new(VDur::from_millis(200));
        assert!((cube.fraction(VDur::from_millis(50)) - 0.25).abs() < 1e-12);
        let empty = SeverityCube::new(VDur::ZERO);
        assert_eq!(empty.fraction(VDur::from_millis(50)), 0.0);
    }

    #[test]
    fn property_path_aggregation() {
        let mut cube = SeverityCube::new(VDur::from_millis(1000));
        cube.extend([
            l(PropertyKind::WaitAtBarrier, 3, 0, 4),
            l(PropertyKind::WaitAtBarrier, 3, 1, 6),
            l(PropertyKind::WaitAtBarrier, 4, 0, 1),
        ]);
        let agg = cube.by_property_path();
        assert_eq!(
            agg[&(PropertyKind::WaitAtBarrier, PathId(3))],
            VDur::from_millis(10)
        );
        assert_eq!(
            agg[&(PropertyKind::WaitAtBarrier, PathId(4))],
            VDur::from_millis(1)
        );
        let locs = cube.locations_of(PropertyKind::WaitAtBarrier, PathId(3));
        assert_eq!(locs.len(), 2);
        assert_eq!(locs[0], (LocationId::rank(0), VDur::from_millis(4)));
    }

    #[test]
    fn subtree_rollup() {
        let mut cube = SeverityCube::new(VDur::from_millis(1000));
        cube.extend([
            l(PropertyKind::LateSender, 0, 0, 10),
            l(PropertyKind::LateBroadcast, 1, 1, 20),
            l(PropertyKind::OmpWaitAtBarrier, 2, 0, 5),
        ]);
        assert_eq!(
            cube.subtree_total(PropertyKind::MpiCommunication),
            VDur::from_millis(30)
        );
        assert_eq!(
            cube.subtree_total(PropertyKind::MpiTime),
            VDur::from_millis(30)
        );
        assert_eq!(
            cube.subtree_total(PropertyKind::OmpTime),
            VDur::from_millis(5)
        );
        assert_eq!(
            cube.subtree_total(PropertyKind::Time),
            VDur::from_millis(35)
        );
    }
}
