//! The frozen `ats-report/1` wire schema.
//!
//! One report layout is consumed in three places: [`AnalysisReport::to_json`]
//! (the offline export EXPERIMENTS.md scripts read), the store's
//! `report.json` artifact, and every `ats-serve` response body. This module
//! is the single definition all three share, so the schema cannot drift
//! between producers.
//!
//! The contract:
//!
//! * every document carries `"schema": "ats-report/1"` ([`REPORT_SCHEMA`]);
//! * field names are frozen — additions are allowed under a new schema
//!   tag, renames and removals never;
//! * the **normative bytes** are the canonical [`Json`] rendering
//!   ([`ReportDoc::render`]): sorted object keys, exact integers,
//!   shortest-round-trip floats, two-space pretty indentation with a
//!   trailing newline. Producing the document through any other
//!   serializer is a bug — byte identity between the offline export, the
//!   cached artifact and the service body is a CI gate.
//!
//! Waiting times cross the wire as integer nanoseconds (`wait_ns`), never
//! floats, so documents hash and compare exactly.

use crate::report::{AnalysisReport, Finding};
use ats_core::json::Json;
use ats_core::{Error, ErrorKind};
use ats_runtime::VDur;
use serde::{Deserialize, Serialize};

/// The schema tag every `ats-report/1` document carries.
pub const REPORT_SCHEMA: &str = "ats-report/1";

/// One finding on the wire: a property at a call path with its severity
/// and per-location waiting times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindingDoc {
    /// The diagnosed property (catalog name, e.g. `LateSender`).
    pub property: String,
    /// The call path, rendered `a/b/c`.
    pub call_path: String,
    /// Accumulated waiting time in integer nanoseconds.
    pub wait_ns: u64,
    /// Waiting time / total allocation time.
    pub severity: f64,
    /// Per-location `(location, wait_ns)` pairs, sorted by location.
    pub locations: Vec<(String, u64)>,
}

/// The complete report on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDoc {
    /// Always [`REPORT_SCHEMA`].
    pub schema: String,
    /// Total allocation time of the run, in seconds.
    pub total_alloc_secs: f64,
    /// The severity threshold the findings were filtered at.
    pub threshold: f64,
    /// Findings at or above the threshold, most severe first.
    pub findings: Vec<FindingDoc>,
}

impl FindingDoc {
    fn of(f: &Finding) -> FindingDoc {
        FindingDoc {
            property: f.property.clone(),
            call_path: f.call_path.clone(),
            wait_ns: f.wait.as_nanos(),
            severity: f.severity,
            locations: f
                .locations
                .iter()
                .map(|(loc, w)| (loc.clone(), w.as_nanos()))
                .collect(),
        }
    }

    fn to_value(&self) -> Json {
        let mut locs = Json::arr();
        for (loc, ns) in &self.locations {
            locs.push(Json::from(vec![Json::from(loc.clone()), Json::from(*ns)]));
        }
        Json::obj()
            .with("call_path", self.call_path.clone())
            .with("locations", locs)
            .with("property", self.property.clone())
            .with("severity", self.severity)
            .with("wait_ns", self.wait_ns)
    }

    fn from_value(v: &Json) -> Result<FindingDoc, Error> {
        Ok(FindingDoc {
            property: str_field(v, "property")?,
            call_path: str_field(v, "call_path")?,
            wait_ns: u64_field(v, "wait_ns")?,
            severity: f64_field(v, "severity")?,
            locations: v
                .get("locations")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("locations"))?
                .iter()
                .map(|pair| {
                    let items = pair.as_arr().filter(|a| a.len() == 2);
                    let loc = items.and_then(|a| a[0].as_str());
                    let ns = items.and_then(|a| a[1].as_u64());
                    match (loc, ns) {
                        (Some(l), Some(n)) => Ok((l.to_owned(), n)),
                        _ => Err(Error::report("malformed `locations` pair")),
                    }
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ReportDoc {
    /// The wire form of an in-memory [`AnalysisReport`].
    pub fn of(report: &AnalysisReport) -> ReportDoc {
        ReportDoc {
            schema: REPORT_SCHEMA.to_owned(),
            total_alloc_secs: report.cube.total_alloc().as_secs(),
            threshold: report.threshold,
            findings: report.findings.iter().map(FindingDoc::of).collect(),
        }
    }

    /// The canonical JSON value of this document (schema tag included).
    pub fn to_value(&self) -> Json {
        let mut findings = Json::arr();
        for f in &self.findings {
            findings.push(f.to_value());
        }
        Json::obj()
            .with("findings", findings)
            .with("schema", self.schema.clone())
            .with("threshold", self.threshold)
            .with("total_alloc_secs", self.total_alloc_secs)
    }

    /// The normative bytes: canonical pretty rendering, trailing newline.
    pub fn render(&self) -> String {
        self.to_value().render_pretty()
    }

    /// Parse a canonical value back, verifying the schema tag.
    pub fn from_value(v: &Json) -> Result<ReportDoc, Error> {
        let schema = str_field(v, "schema")?;
        if schema != REPORT_SCHEMA {
            return Err(Error::report(format!(
                "unsupported report schema `{schema}` (expected `{REPORT_SCHEMA}`)"
            )));
        }
        Ok(ReportDoc {
            schema,
            total_alloc_secs: f64_field(v, "total_alloc_secs")?,
            threshold: f64_field(v, "threshold")?,
            findings: v
                .get("findings")
                .and_then(Json::as_arr)
                .ok_or_else(|| missing("findings"))?
                .iter()
                .map(FindingDoc::from_value)
                .collect::<Result<_, _>>()?,
        })
    }

    /// Parse report bytes (e.g. a stored `report.json` or a serve body).
    pub fn parse(text: &str) -> Result<ReportDoc, Error> {
        let v = Json::parse(text)
            .map_err(|e| Error::new(ErrorKind::Report, format!("invalid report JSON: {e}")))?;
        ReportDoc::from_value(&v)
    }

    /// The findings diagnosing `property` (by name).
    pub fn findings_for(&self, property: &str) -> Vec<&FindingDoc> {
        self.findings
            .iter()
            .filter(|f| f.property == property)
            .collect()
    }

    /// Total waiting time across findings, as a [`VDur`].
    pub fn total_wait(&self) -> VDur {
        VDur::from_nanos(self.findings.iter().map(|f| f.wait_ns).sum())
    }
}

fn missing(field: &str) -> Error {
    Error::report(format!("report document missing field `{field}`"))
}

fn str_field(v: &Json, field: &str) -> Result<String, Error> {
    v.get(field)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| missing(field))
}

fn u64_field(v: &Json, field: &str) -> Result<u64, Error> {
    v.get(field).and_then(Json::as_u64).ok_or_else(|| missing(field))
}

fn f64_field(v: &Json, field: &str) -> Result<f64, Error> {
    v.get(field).and_then(Json::as_f64).ok_or_else(|| missing(field))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReportDoc {
        ReportDoc {
            schema: REPORT_SCHEMA.to_owned(),
            total_alloc_secs: 0.25,
            threshold: 0.05,
            findings: vec![FindingDoc {
                property: "LateSender".to_owned(),
                call_path: "main/late_sender".to_owned(),
                wait_ns: 40_000_000,
                severity: 0.16,
                locations: vec![("1".to_owned(), 40_000_000)],
            }],
        }
    }

    #[test]
    fn round_trips_through_canonical_bytes() {
        let doc = sample();
        let bytes = doc.render();
        let back = ReportDoc::parse(&bytes).unwrap();
        assert_eq!(back, doc);
        // Rendering is a fixed point: parse → render reproduces the bytes.
        assert_eq!(back.render(), bytes);
    }

    #[test]
    fn schema_tag_is_enforced() {
        let mut v = sample().to_value();
        v.set("schema", "ats-report/2");
        let err = ReportDoc::from_value(&v).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Report);
        assert!(err.to_string().contains("ats-report/2"), "{err}");

        let err = ReportDoc::parse("{}").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Report);
    }

    #[test]
    fn missing_fields_are_named() {
        let mut v = sample().to_value();
        v.as_obj_mut().unwrap().get_mut("findings").unwrap().as_arr_mut().unwrap()[0]
            .as_obj_mut()
            .unwrap()
            .remove("wait_ns");
        let err = ReportDoc::from_value(&v).unwrap_err();
        assert!(err.to_string().contains("wait_ns"), "{err}");
    }
}
