//! Pattern detectors: from operation records to located waiting times.
//!
//! Each detector reproduces a compound-event pattern from the EXPERT /
//! ASL catalog. The output unit is a [`Located`] waiting time: property ×
//! call path × location × duration, which the severity cube aggregates.

use crate::callpath::PathId;
use crate::extract::{CollInstance, Extract, RecvRec, SendRec};
use crate::property::PropertyKind;
use ats_runtime::{VDur, VTime};
use ats_trace::{CollOp, LocationId, Trace};
use std::collections::HashMap;

/// One located waiting-time contribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Located {
    /// The diagnosed property.
    pub property: PropertyKind,
    /// Where in the call tree.
    pub path: PathId,
    /// Where in the machine.
    pub loc: LocationId,
    /// How much time was lost.
    pub wait: VDur,
}

/// A matched point-to-point message pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchedPair {
    /// Sender-side record.
    pub send: SendRec,
    /// Receiver-side record.
    pub recv: RecvRec,
}

/// Match sends to receives with MPI semantics: FIFO per
/// `(communicator, source, destination, tag)`. Unmatched operations (none
/// arise from the substrate, but a tool must tolerate truncated traces)
/// are dropped.
pub fn match_messages(ex: &Extract) -> Vec<MatchedPair> {
    // Each queue carries its own consumption cursor, so pairing costs one
    // hash lookup per receive instead of two.
    let mut send_q: HashMap<(u32, u32, u32, i32), (Vec<&SendRec>, usize)> =
        HashMap::with_capacity(ex.sends.len().min(64));
    for s in &ex.sends {
        send_q
            .entry((s.comm, s.loc.rank, s.to, s.tag))
            .or_default()
            .0
            .push(s);
    }
    // `ex.sends` is sorted by post time within each key, so each queue is
    // FIFO already; pair receives in posted order.
    let mut pairs = Vec::with_capacity(ex.recvs.len());
    for r in &ex.recvs {
        let key = (r.comm, r.from, r.loc.rank, r.tag);
        if let Some((q, taken)) = send_q.get_mut(&key) {
            if let Some(s) = q.get(*taken) {
                pairs.push(MatchedPair {
                    send: **s,
                    recv: *r,
                });
                *taken += 1;
            }
        }
    }
    pairs
}

/// *Late Sender*: the receiver blocks from its receive post until the
/// matching send starts.
///
/// EXPERT definition: the part of the receive occupancy that elapses
/// before the send is even posted — `wait = clamp(send_post, recv_posted,
/// recv_completion) − recv_posted`. Located at the receive call on the
/// receiver. (Transport time after the send starts is communication, not
/// waiting.)
pub fn late_sender(pairs: &[MatchedPair]) -> Vec<Located> {
    pairs
        .iter()
        .filter_map(|p| {
            let blocked_until = p.send.post.max(p.recv.posted).min(p.recv.completion);
            let wait = blocked_until - p.recv.posted;
            (!wait.is_zero()).then_some(Located {
                property: PropertyKind::LateSender,
                path: p.recv.path,
                loc: p.recv.loc,
                wait,
            })
        })
        .collect()
}

/// *Late Receiver*: a (synchronous/rendezvous) sender blocks from its send
/// post until the matching receive is posted — `wait = clamp(recv_posted,
/// send_post, send_exit) − send_post`. Eager sends return immediately
/// (`exit ≈ post`), so they naturally contribute nothing. Located at the
/// send call on the sender.
pub fn late_receiver(pairs: &[MatchedPair]) -> Vec<Located> {
    pairs
        .iter()
        .filter_map(|p| {
            let blocked_until = p.recv.posted.max(p.send.post).min(p.send.exit);
            let wait = blocked_until - p.send.post;
            (!wait.is_zero()).then_some(Located {
                property: PropertyKind::LateReceiver,
                path: p.send.path,
                loc: p.send.loc,
                wait,
            })
        })
        .collect()
}

/// *Messages in Wrong Order*: for a blocked receive `P`, the portion of
/// its wait during which another message — one this receiver matches only
/// *later* — was already available. Computed as the overlap of `P`'s
/// blocked interval `[P.posted, P.completion]` with any other pair `Q`'s
/// "available but unread" interval `[Q.send.post, Q.recv.posted]`, for `Q`
/// on the same receiver with `Q.recv.posted > P.recv.posted`.
pub fn wrong_order(pairs: &[MatchedPair]) -> Vec<Located> {
    // Only pairs on the same receiver can interact, so group pair indices
    // per receiver up front: the scan is then quadratic in the per-receiver
    // pair count instead of the global one. The outer loop stays in
    // original pair order, so the output is unchanged.
    let mut by_receiver: HashMap<LocationId, Vec<usize>> =
        HashMap::with_capacity(pairs.len().min(64));
    for (i, p) in pairs.iter().enumerate() {
        by_receiver.entry(p.recv.loc).or_default().push(i);
    }
    let mut out = Vec::new();
    for p in pairs {
        if p.recv.completion <= p.recv.posted {
            continue; // no blocking at all
        }
        let mut overlap = VDur::ZERO;
        for q in by_receiver[&p.recv.loc].iter().map(|&i| &pairs[i]) {
            if (q.recv.posted, q.recv.from, q.recv.tag)
                == (p.recv.posted, p.recv.from, p.recv.tag)
                || q.recv.posted <= p.recv.posted
            {
                continue;
            }
            let start = q.send.post.max(p.recv.posted);
            let end = q.recv.posted.min(p.recv.completion);
            overlap += end - start; // saturating: zero if end <= start
        }
        if !overlap.is_zero() {
            out.push(Located {
                property: PropertyKind::MessagesWrongOrder,
                path: p.recv.path,
                loc: p.recv.loc,
                wait: overlap.min(p.recv.completion - p.recv.posted),
            });
        }
    }
    out
}

/// Dispatch one collective instance to its wait-state pattern.
pub fn collective_waits(inst: &CollInstance, trace: &Trace) -> Vec<Located> {
    match inst.op {
        CollOp::Barrier => last_arriver_waits(inst, PropertyKind::WaitAtBarrier),
        CollOp::OmpBarrier => last_arriver_waits(inst, PropertyKind::OmpWaitAtBarrier),
        CollOp::Alltoall | CollOp::Alltoallv | CollOp::Allreduce | CollOp::Allgather => {
            last_arriver_waits(inst, PropertyKind::WaitAtNxN)
        }
        CollOp::Scan => prefix_waits(inst, PropertyKind::WaitAtNxN),
        CollOp::Bcast => root_gated_waits(inst, trace, PropertyKind::LateBroadcast),
        CollOp::Scatter | CollOp::Scatterv => {
            root_gated_waits(inst, trace, PropertyKind::LateScatter)
        }
        CollOp::Reduce => early_root_waits(inst, trace, PropertyKind::EarlyReduce),
        CollOp::Gather | CollOp::Gatherv => {
            early_root_waits(inst, trace, PropertyKind::EarlyGather)
        }
        CollOp::OmpJoin => join_waits(inst),
        CollOp::OmpFork => Vec::new(),
    }
}

/// Everyone waits for the last arriver: `wait_i = max_j(entry_j) − entry_i`.
fn last_arriver_waits(inst: &CollInstance, property: PropertyKind) -> Vec<Located> {
    let latest = inst.last_entry();
    inst.members
        .iter()
        .filter_map(|m| {
            let wait = latest - m.entered;
            (!wait.is_zero()).then_some(Located {
                property,
                path: m.path,
                loc: m.loc,
                wait,
            })
        })
        .collect()
}

/// Prefix synchronization (scan): member `i` waits for the latest entry
/// among communicator ranks `0..=i`.
fn prefix_waits(inst: &CollInstance, property: PropertyKind) -> Vec<Located> {
    // Members are sorted by location; communicator order for our traces is
    // ascending global rank, which matches.
    let mut latest = VTime::ZERO;
    let mut out = Vec::new();
    for m in &inst.members {
        latest = latest.max(m.entered);
        let wait = latest - m.entered;
        if !wait.is_zero() {
            out.push(Located {
                property,
                path: m.path,
                loc: m.loc,
                wait,
            });
        }
    }
    out
}

/// Root-to-members data flow (bcast/scatter): a non-root member waits if
/// the root entered later: `wait_i = max(0, entry_root − entry_i)`.
fn root_gated_waits(inst: &CollInstance, trace: &Trace, property: PropertyKind) -> Vec<Located> {
    let Some(root) = inst.root_member(trace) else {
        return Vec::new();
    };
    let root_entry = root.entered;
    let root_loc = root.loc;
    inst.members
        .iter()
        .filter_map(|m| {
            if m.loc == root_loc {
                return None;
            }
            let wait = root_entry - m.entered;
            (!wait.is_zero()).then_some(Located {
                property,
                path: m.path,
                loc: m.loc,
                wait,
            })
        })
        .collect()
}

/// Members-to-root data flow (reduce/gather): the root waits if any member
/// entered later: `wait_root = max(0, max_{i≠root}(entry_i) − entry_root)`.
fn early_root_waits(inst: &CollInstance, trace: &Trace, property: PropertyKind) -> Vec<Located> {
    let Some(root) = inst.root_member(trace) else {
        return Vec::new();
    };
    let root_loc = root.loc;
    let latest_member = inst
        .members
        .iter()
        .filter(|m| m.loc != root_loc)
        .map(|m| m.entered)
        .max()
        .unwrap_or(root.entered);
    let wait = latest_member - root.entered;
    if wait.is_zero() {
        return Vec::new();
    }
    vec![Located {
        property,
        path: root.path,
        loc: root_loc,
        wait,
    }]
}

/// Parallel-region join: each member's wait is the gap between its own end
/// of work and the team-wide join.
fn join_waits(inst: &CollInstance) -> Vec<Located> {
    inst.members
        .iter()
        .filter_map(|m| {
            let wait = m.exit - m.entered;
            (!wait.is_zero()).then_some(Located {
                property: PropertyKind::OmpImbalanceInRegion,
                path: m.path,
                loc: m.loc,
                wait,
            })
        })
        .collect()
}

/// Critical-section contention: arrival-to-acquisition gaps.
pub fn critical_waits(ex: &Extract) -> Vec<Located> {
    ex.criticals
        .iter()
        .filter_map(|v| {
            let wait = v.acquired - v.arrive;
            (!wait.is_zero()).then_some(Located {
                property: PropertyKind::OmpCriticalContention,
                path: v.path,
                loc: v.loc,
                wait,
            })
        })
        .collect()
}

/// MPI setup overhead: all time in init/finalize.
pub fn setup_overheads(ex: &Extract) -> Vec<Located> {
    ex.setup
        .iter()
        .filter_map(|s| {
            (!s.time.is_zero()).then_some(Located {
                property: PropertyKind::MpiSetupOverhead,
                path: s.path,
                loc: s.loc,
                wait: s.time,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract;
    use ats_core::{properties::mpi_coll, properties::mpi_p2p, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::MachineModel;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    #[test]
    fn matching_pairs_every_message() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.001, 0.005, 3, &c);
        });
        let ex = extract(&trace);
        let pairs = match_messages(&ex);
        assert_eq!(pairs.len(), ex.recvs.len());
        assert_eq!(pairs.len(), 6, "2 pairs x 3 reps");
        for p in &pairs {
            assert_eq!(p.send.comm, p.recv.comm);
            assert_eq!(p.send.to, p.recv.loc.rank);
            assert_eq!(p.send.loc.rank, p.recv.from);
            assert_eq!(p.send.bytes, p.recv.bytes);
        }
    }

    #[test]
    fn late_sender_waits_equal_programmed_imbalance() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, 0.030, 2, &c);
        });
        let ex = extract(&trace);
        let pairs = match_messages(&ex);
        let waits = late_sender(&pairs);
        let total: VDur = waits.iter().map(|w| w.wait).sum();
        assert_eq!(total, VDur::from_millis(60), "2 reps x 30ms");
        for w in &waits {
            assert_eq!(w.loc.rank, 1, "wait sits on the receiver");
        }
        // No late receiver in this program.
        assert!(late_receiver(&pairs).is_empty());
    }

    #[test]
    fn late_receiver_waits_on_the_sender() {
        let trace = ats_mpi::run(cfg(2), |p| {
            let c = p.comm_world();
            mpi_p2p::late_receiver(p, &BaseComm::default(), 0.002, 0.025, 2, &c);
        });
        let ex = extract(&trace);
        let pairs = match_messages(&ex);
        let waits = late_receiver(&pairs);
        let total: VDur = waits.iter().map(|w| w.wait).sum();
        assert_eq!(total, VDur::from_millis(50));
        for w in &waits {
            assert_eq!(w.loc.rank, 0, "wait sits on the sender");
        }
        assert!(late_sender(&pairs).is_empty());
    }

    #[test]
    fn barrier_waits_follow_the_distribution() {
        let df = Distr::linear(0.0, 0.030);
        let trace = ats_mpi::run(cfg(4), move |p| {
            let c = p.comm_world();
            mpi_coll::imbalance_at_mpi_barrier(p, &df, 1, &c);
        });
        let ex = extract(&trace);
        let mut total = VDur::ZERO;
        for inst in ex.colls.iter().filter(|c| c.op == CollOp::Barrier) {
            for w in collective_waits(inst, &trace) {
                assert_eq!(w.property, PropertyKind::WaitAtBarrier);
                total += w.wait;
            }
        }
        // Waits: 30 + 20 + 10 + 0 = 60ms.
        assert_eq!(total, VDur::from_millis(60));
    }

    #[test]
    fn late_broadcast_waits_on_non_roots_only() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_coll::late_broadcast(p, &BaseComm::default(), 0.001, 0.020, 1, 1, &c);
        });
        let ex = extract(&trace);
        let bcast = ex.colls.iter().find(|c| c.op == CollOp::Bcast).unwrap();
        let waits = collective_waits(bcast, &trace);
        assert_eq!(waits.len(), 3);
        for w in &waits {
            assert_eq!(w.property, PropertyKind::LateBroadcast);
            assert_ne!(w.loc.rank, 1, "root never waits for itself");
            assert_eq!(w.wait, VDur::from_millis(20));
        }
    }

    #[test]
    fn early_reduce_wait_on_root_only() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_coll::early_reduce(p, &BaseComm::default(), 0.001, 0.015, 2, 1, &c);
        });
        let ex = extract(&trace);
        let red = ex.colls.iter().find(|c| c.op == CollOp::Reduce).unwrap();
        let waits = collective_waits(red, &trace);
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].loc.rank, 2);
        assert_eq!(waits[0].property, PropertyKind::EarlyReduce);
        assert_eq!(waits[0].wait, VDur::from_millis(15));
    }

    #[test]
    fn balanced_program_yields_no_waits() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            ats_core::properties::negative::balanced_mpi_barrier(p, 0.010, 3, &c);
            ats_core::properties::negative::balanced_mpi_p2p(p, &BaseComm::default(), 0.005, 2, &c);
        });
        let ex = extract(&trace);
        let pairs = match_messages(&ex);
        assert!(late_sender(&pairs).is_empty());
        assert!(late_receiver(&pairs).is_empty());
        for inst in &ex.colls {
            assert!(collective_waits(inst, &trace).is_empty());
        }
    }
}
