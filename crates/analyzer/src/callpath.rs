//! Call-path reconstruction and interning.
//!
//! A call path is the stack of open regions at the moment of an event.
//! The analyzer locates every finding at a call path — the middle pane of
//! the paper's Figure 3.5 ("the call graph pane shows that it located it
//! correctly at the MPI_Bcast() function call inside the performance
//! property function late_broadcast()").

use ats_trace::{RegionId, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of an interned call path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PathId(pub u32);

/// Interning table for call paths.
#[derive(Debug, Default, Clone)]
pub struct PathTable {
    paths: Vec<Vec<RegionId>>,
    index: HashMap<Vec<RegionId>, PathId>,
}

impl PathTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a path (a region stack, outermost first).
    pub fn intern(&mut self, path: &[RegionId]) -> PathId {
        if let Some(&id) = self.index.get(path) {
            return id;
        }
        let id = PathId(self.paths.len() as u32);
        self.paths.push(path.to_vec());
        self.index.insert(path.to_vec(), id);
        id
    }

    /// The region stack of a path.
    pub fn regions(&self, id: PathId) -> &[RegionId] {
        &self.paths[id.0 as usize]
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no paths are interned.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Render a path as `a/b/c` using the trace's region names. The empty
    /// path renders as `<program>`.
    pub fn display(&self, id: PathId, trace: &Trace) -> String {
        let regions = self.regions(id);
        if regions.is_empty() {
            return "<program>".to_owned();
        }
        regions
            .iter()
            .map(|r| trace.region_name(*r))
            .collect::<Vec<_>>()
            .join("/")
    }

    /// True if the path contains a region with the given name.
    pub fn contains_region(&self, id: PathId, trace: &Trace, name: &str) -> bool {
        self.regions(id)
            .iter()
            .any(|r| trace.region_name(*r) == name)
    }

    /// The innermost region name of a path (`<program>` if empty).
    pub fn leaf_name<'t>(&self, id: PathId, trace: &'t Trace) -> &'t str {
        self.regions(id)
            .last()
            .map(|r| trace.region_name(*r))
            .unwrap_or("<program>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_trace::{RegionKind, RegionMeta};

    fn trace_with_regions(names: &[&str]) -> Trace {
        Trace::new(
            names
                .iter()
                .map(|n| RegionMeta {
                    name: (*n).to_owned(),
                    kind: RegionKind::User,
                })
                .collect(),
            vec![],
        )
    }

    #[test]
    fn intern_dedupes() {
        let mut t = PathTable::new();
        let a = t.intern(&[RegionId(0), RegionId(1)]);
        let b = t.intern(&[RegionId(0), RegionId(1)]);
        let c = t.intern(&[RegionId(0)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn display_joins_names() {
        let trace = trace_with_regions(&["main", "late_broadcast", "MPI_Bcast"]);
        let mut t = PathTable::new();
        let p = t.intern(&[RegionId(1), RegionId(2)]);
        assert_eq!(t.display(p, &trace), "late_broadcast/MPI_Bcast");
        let root = t.intern(&[]);
        assert_eq!(t.display(root, &trace), "<program>");
    }

    #[test]
    fn contains_and_leaf() {
        let trace = trace_with_regions(&["a", "b", "c"]);
        let mut t = PathTable::new();
        let p = t.intern(&[RegionId(0), RegionId(2)]);
        assert!(t.contains_region(p, &trace, "a"));
        assert!(t.contains_region(p, &trace, "c"));
        assert!(!t.contains_region(p, &trace, "b"));
        assert_eq!(t.leaf_name(p, &trace), "c");
        let root = t.intern(&[]);
        assert_eq!(t.leaf_name(root, &trace), "<program>");
    }
}
