//! Trace ingestion: on-disk trace → [`Trace`] → [`AnalysisReport`].
//!
//! The analyzer consumes traces straight through the typed readers in
//! `ats-trace` — [`read_auto`] deserializes JSONL lines directly into
//! `Trace` structures and the ATSB binary codec decodes columns into event
//! vectors, so no intermediate `serde_json::Value` tree (or any other
//! dynamic representation) is ever built. On artifact-sized binary traces
//! that makes ingestion allocation-bound on the event vectors alone.

use crate::{analyze, AnalysisReport, AnalyzerConfig};
use ats_trace::io::{read_auto, read_path, TraceIoError};
use ats_trace::Trace;
use std::io::BufRead;
use std::path::Path;

/// Load a trace from `path`, sniffing the format (ATSB binary or JSONL).
pub fn load_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    read_path(path)
}

/// Read a trace from `r` (either format) and analyze it, returning both
/// the trace and the report (rendering a report needs the trace).
pub fn analyze_reader<R: BufRead>(
    r: R,
    config: &AnalyzerConfig,
) -> Result<(Trace, AnalysisReport), TraceIoError> {
    let trace = read_auto(r)?;
    let report = analyze(&trace, config);
    Ok((trace, report))
}

/// [`analyze_reader`] for a file path.
pub fn analyze_path(
    path: impl AsRef<Path>,
    config: &AnalyzerConfig,
) -> Result<(Trace, AnalysisReport), TraceIoError> {
    let path = path.as_ref();
    if let Some(obs) = &config.obs {
        if let Ok(meta) = std::fs::metadata(path) {
            obs.analyzer.bytes_ingested.add(meta.len());
        }
    }
    let trace = load_trace(path)?;
    let report = analyze(&trace, config);
    Ok((trace, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_p2p, BaseComm};
    use ats_mpi::SimConfig;
    use ats_trace::io::TraceFormat;

    fn late_sender_trace() -> Trace {
        ats_mpi::run(SimConfig::with_procs(2), |p| {
            let world = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, 0.02, 2, &world);
        })
    }

    fn temp_file(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("ats-ingest-{}-{name}", std::process::id()))
    }

    #[test]
    fn analyze_path_matches_in_memory_analysis_for_both_formats() {
        let trace = late_sender_trace();
        let direct = analyze(&trace, &AnalyzerConfig::default());
        for (format, name) in [
            (TraceFormat::Binary, "bin.atsb"),
            (TraceFormat::Jsonl, "text.jsonl"),
        ] {
            let path = temp_file(name);
            let file = std::fs::File::create(&path).unwrap();
            format.write(&trace, file).unwrap();
            let (loaded, report) = analyze_path(&path, &AnalyzerConfig::default()).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded.locations, trace.locations, "{format}");
            assert_eq!(
                serde_json::to_string(&report.findings).unwrap(),
                serde_json::to_string(&direct.findings).unwrap(),
                "{format}: findings diverge from in-memory analysis"
            );
        }
    }

    #[test]
    fn analyze_reader_round_trips_binary_in_memory() {
        let trace = late_sender_trace();
        let mut buf = Vec::new();
        ats_trace::binfmt::write_binary(&trace, &mut buf).unwrap();
        let (loaded, report) = analyze_reader(buf.as_slice(), &AnalyzerConfig::default()).unwrap();
        assert_eq!(loaded.locations, trace.locations);
        assert!(report.severity_of("LateSender") > 0.0);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_trace("/nonexistent/ats-trace.atsb").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
