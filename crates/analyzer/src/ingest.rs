//! Trace ingestion: on-disk trace → [`AnalysisReport`].
//!
//! Two paths lead from bytes to a report:
//!
//! * **Materializing** ([`analyze_path`] / [`analyze_reader`]): decode the
//!   whole trace into a [`Trace`] first, then [`analyze`] it. Peak memory
//!   is the full event-vector set — fine for experiment-sized traces, and
//!   the caller keeps the `Trace` for rendering.
//! * **Streaming** ([`analyze_path_streaming`] / [`analyze_stream`]): feed
//!   per-location column blocks (ATSB) or location lines (JSONL) straight
//!   into the extractor as they decode, so peak memory is one location's
//!   events plus the extracted operation records. Given the same trace
//!   bytes, the two paths produce byte-identical reports — the
//!   materializing path doubles as the streaming path's differential
//!   oracle.
//!
//! Neither path ever builds an intermediate `serde_json::Value` tree (or
//! any other dynamic representation).

use crate::analyzer::detect_and_report;
use crate::extract::StreamExtractor;
use crate::{analyze, AnalysisReport, AnalyzerConfig};
use ats_runtime::VDur;
use ats_trace::binfmt::BlockReader;
use ats_trace::io::{read_auto, read_path, JsonlStream, TraceIoError};
use ats_trace::{LocationId, Trace};
use std::io::{BufRead, Read};
use std::path::Path;

/// Load a trace from `path`, sniffing the format (ATSB binary or JSONL).
pub fn load_trace(path: impl AsRef<Path>) -> Result<Trace, TraceIoError> {
    read_path(path)
}

/// Read a trace from `r` (either format) and analyze it, returning both
/// the trace and the report (rendering a report needs the trace).
pub fn analyze_reader<R: BufRead>(
    r: R,
    config: &AnalyzerConfig,
) -> Result<(Trace, AnalysisReport), TraceIoError> {
    let trace = read_auto(r)?;
    let report = analyze(&trace, config);
    Ok((trace, report))
}

/// Pass-through reader counting the bytes actually consumed, so ingestion
/// metrics reflect what was read — not what a pre-read `stat` promised.
struct CountRead<R> {
    inner: R,
    read: u64,
}

impl<R: Read> Read for CountRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.read += n as u64;
        Ok(n)
    }
}

/// [`analyze_reader`] for a file path.
pub fn analyze_path(
    path: impl AsRef<Path>,
    config: &AnalyzerConfig,
) -> Result<(Trace, AnalysisReport), TraceIoError> {
    let file = std::fs::File::open(path.as_ref())?;
    let mut counted = CountRead {
        inner: file,
        read: 0,
    };
    let trace = read_auto(std::io::BufReader::new(&mut counted))?;
    if let Some(obs) = &config.obs {
        obs.analyzer.bytes_ingested.add(counted.read);
    }
    let report = analyze(&trace, config);
    Ok((trace, report))
}

/// Counters from one streaming analysis pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Events scanned.
    pub events: u64,
    /// Location streams scanned.
    pub locations: u64,
    /// Bytes consumed from the source.
    pub bytes: u64,
}

/// Analyze a trace from `r` (either format) without materializing it:
/// location streams decode one at a time into reused buffers and feed the
/// extractor directly. The report is byte-identical to
/// `analyze(&read_auto(r)?, config)` over the same bytes.
///
/// Requires location streams sorted by `(rank, thread)` with no
/// duplicates — the invariant every writer in this workspace maintains —
/// and fails with [`TraceIoError::Format`] otherwise (an unsorted file
/// would silently change call-path interning order).
pub fn analyze_stream<R: BufRead>(
    mut r: R,
    config: &AnalyzerConfig,
) -> Result<(AnalysisReport, StreamStats), TraceIoError> {
    let peek = r.fill_buf()?;
    let magic = &ats_trace::binfmt::MAGIC;
    let is_binary = if peek.len() >= magic.len() {
        peek.starts_with(magic)
    } else {
        !peek.is_empty() && magic.starts_with(peek)
    };
    if is_binary {
        analyze_stream_binary(r, config)
    } else {
        analyze_stream_jsonl(r, config)
    }
}

/// Reject out-of-order or duplicate location streams.
fn check_sorted(last: &mut Option<LocationId>, loc: LocationId) -> Result<(), TraceIoError> {
    if let Some(prev) = *last {
        if loc <= prev {
            return Err(TraceIoError::Format(format!(
                "streaming analysis requires location streams sorted by (rank, thread) \
                 with no duplicates; location {loc} follows {prev}"
            )));
        }
    }
    *last = Some(loc);
    Ok(())
}

fn analyze_stream_binary<R: BufRead>(
    r: R,
    config: &AnalyzerConfig,
) -> Result<(AnalysisReport, StreamStats), TraceIoError> {
    let m = config.obs.as_ref().map(|o| &o.analyzer);
    if let Some(m) = m {
        m.analyses.inc();
    }
    let mut br = BlockReader::new(r)?;
    // The location count is an untrusted hint here — it only sizes
    // collective member vectors, so clamp it.
    let hint = br.n_locations().min(1 << 16) as usize;
    let mut sx = StreamExtractor::new(br.regions(), hint);
    let mut stats = StreamStats::default();
    let mut total_alloc = VDur::ZERO;
    let mut last: Option<LocationId> = None;
    let scan: Result<(), TraceIoError> = {
        let timer = m.map(|m| m.extract_time.timer());
        let r = (|| {
            while let Some(block) = br.next_block()? {
                let loc = block.location();
                check_sorted(&mut last, loc)?;
                stats.events += block.len() as u64;
                stats.locations += 1;
                if let (Some(s), Some(e)) = (block.start_time(), block.end_time()) {
                    total_alloc += e - s;
                }
                sx.scan_events(loc, block.events());
            }
            Ok(())
        })();
        drop(timer);
        r
    };
    scan?;
    let (regions, comms) = br.take_tables();
    stats.bytes = br.finish()?;
    if let Some(m) = m {
        m.events_ingested.add(stats.events);
    }
    // A locationless shell trace supplies the tables detection needs
    // (call-path names, communicator membership) — `total_alloc` was
    // accumulated per block above, exactly as `Trace::total_alloc_time`
    // would have summed it.
    let shell = Trace::with_comms(regions, comms, vec![]);
    let report = detect_and_report(sx.finish(), &shell, total_alloc, config);
    Ok((report, stats))
}

fn analyze_stream_jsonl<R: BufRead>(
    r: R,
    config: &AnalyzerConfig,
) -> Result<(AnalysisReport, StreamStats), TraceIoError> {
    let m = config.obs.as_ref().map(|o| &o.analyzer);
    if let Some(m) = m {
        m.analyses.inc();
    }
    let mut stream = JsonlStream::new(r)?;
    let mut sx = StreamExtractor::new(stream.regions(), 0);
    let mut stats = StreamStats::default();
    let mut total_alloc = VDur::ZERO;
    let mut last: Option<LocationId> = None;
    let scan: Result<(), TraceIoError> = {
        let timer = m.map(|m| m.extract_time.timer());
        let r = (|| {
            while let Some(lt) = stream.next_location()? {
                check_sorted(&mut last, lt.location)?;
                stats.events += lt.events.len() as u64;
                stats.locations += 1;
                total_alloc += lt.end_time() - lt.start_time();
                sx.scan_events(lt.location, lt.events);
            }
            Ok(())
        })();
        drop(timer);
        r
    };
    scan?;
    stats.bytes = stream.bytes_read();
    if let Some(m) = m {
        m.events_ingested.add(stats.events);
    }
    let (regions, comms) = stream.take_tables();
    let shell = Trace::with_comms(regions, comms, vec![]);
    let report = detect_and_report(sx.finish(), &shell, total_alloc, config);
    Ok((report, stats))
}

/// [`analyze_stream`] for a file path.
pub fn analyze_path_streaming(
    path: impl AsRef<Path>,
    config: &AnalyzerConfig,
) -> Result<(AnalysisReport, StreamStats), TraceIoError> {
    let file = std::fs::File::open(path.as_ref())?;
    let (report, stats) = analyze_stream(std::io::BufReader::new(file), config)?;
    if let Some(obs) = &config.obs {
        obs.analyzer.bytes_ingested.add(stats.bytes);
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::{properties::mpi_coll, properties::mpi_p2p, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_trace::io::TraceFormat;

    fn late_sender_trace() -> Trace {
        ats_mpi::run(SimConfig::with_procs(2), |p| {
            let world = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, 0.02, 2, &world);
        })
    }

    fn composite_trace() -> Trace {
        ats_mpi::run(SimConfig::with_procs(4), |p| {
            let world = p.comm_world();
            mpi_p2p::late_sender(p, &BaseComm::default(), 0.002, 0.02, 2, &world);
            mpi_coll::imbalance_at_mpi_barrier(p, &Distr::linear(0.001, 0.01), 2, &world);
            mpi_coll::late_broadcast(p, &BaseComm::default(), 0.002, 0.02, 1, 2, &world);
        })
    }

    /// Field-by-field findings equality (the `Finding` type carries no
    /// `PartialEq`, and the serde stub can't JSON-compare offline).
    fn assert_same_findings(a: &AnalysisReport, b: &AnalysisReport) {
        assert_eq!(a.findings.len(), b.findings.len(), "finding count");
        for (x, y) in a.findings.iter().zip(&b.findings) {
            assert_eq!(x.property, y.property);
            assert_eq!(x.call_path, y.call_path);
            assert_eq!(x.wait, y.wait);
            assert_eq!(x.severity.to_bits(), y.severity.to_bits());
            assert_eq!(x.locations, y.locations);
        }
    }

    #[test]
    fn analyze_path_matches_in_memory_analysis_for_both_formats() {
        let trace = late_sender_trace();
        let direct = analyze(&trace, &AnalyzerConfig::default());
        let dir = ats_testutil::TempDir::new("ats-ingest-formats");
        for (format, name) in [
            (TraceFormat::Binary, "bin.atsb"),
            (TraceFormat::Jsonl, "text.jsonl"),
        ] {
            let path = dir.path().join(name);
            let file = std::fs::File::create(&path).unwrap();
            format.write(&trace, file).unwrap();
            let (loaded, report) = analyze_path(&path, &AnalyzerConfig::default()).unwrap();
            assert_eq!(loaded.locations, trace.locations, "{format}");
            assert_eq!(
                serde_json::to_string(&report.findings).unwrap(),
                serde_json::to_string(&direct.findings).unwrap(),
                "{format}: findings diverge from in-memory analysis"
            );
        }
    }

    #[test]
    fn analyze_reader_round_trips_binary_in_memory() {
        let trace = late_sender_trace();
        let mut buf = Vec::new();
        ats_trace::binfmt::write_binary(&trace, &mut buf).unwrap();
        let (loaded, report) = analyze_reader(buf.as_slice(), &AnalyzerConfig::default()).unwrap();
        assert_eq!(loaded.locations, trace.locations);
        assert!(report.severity_of("LateSender") > 0.0);
    }

    #[test]
    fn streaming_report_matches_materializing_for_both_formats() {
        let trace = composite_trace();
        let direct = analyze(&trace, &AnalyzerConfig::default());
        for format in [TraceFormat::Binary, TraceFormat::Jsonl] {
            let mut buf = Vec::new();
            format.write(&trace, &mut buf).unwrap();
            if read_auto(buf.as_slice()).is_err() {
                // Offline stub serde_json can't round-trip JSONL; the
                // materializing oracle itself is unavailable, so there is
                // nothing to compare against. Exercised fully in CI.
                eprintln!("skipping {format}: format does not round-trip in this environment");
                continue;
            }
            let (streamed, stats) =
                analyze_stream(buf.as_slice(), &AnalyzerConfig::default()).unwrap();
            assert_same_findings(&direct, &streamed);
            assert_eq!(
                streamed.cube.total_alloc(),
                trace.total_alloc_time(),
                "{format}: total allocation time diverges"
            );
            assert_eq!(stats.events, trace.num_events() as u64, "{format}");
            assert_eq!(stats.locations, trace.num_locations() as u64, "{format}");
            assert!(stats.bytes > 0, "{format}");
        }
    }

    #[test]
    fn streaming_path_analysis_from_disk() {
        let trace = composite_trace();
        let direct = analyze(&trace, &AnalyzerConfig::default());
        let dir = ats_testutil::TempDir::new("ats-ingest-stream");
        let path = dir.path().join("composite.atsb");
        let file = std::fs::File::create(&path).unwrap();
        TraceFormat::Binary.write(&trace, file).unwrap();
        let (report, stats) =
            analyze_path_streaming(&path, &AnalyzerConfig::default()).unwrap();
        assert_same_findings(&direct, &report);
        assert_eq!(
            stats.bytes,
            std::fs::metadata(&path).unwrap().len(),
            "streaming consumed the whole file"
        );
    }

    #[test]
    fn streaming_rejects_unsorted_locations() {
        // Hand-build a binary trace with location blocks out of order;
        // the streaming path must refuse rather than silently intern
        // call paths in a different order.
        let trace = late_sender_trace();
        assert!(trace.locations.len() >= 2);
        let mut buf = Vec::new();
        let mut w = ats_trace::binfmt::BlockWriter::new(
            &mut buf,
            &trace.regions,
            &trace.comms,
            trace.locations.len() as u64,
        )
        .unwrap();
        for lt in trace.locations.iter().rev() {
            w.write_location(lt).unwrap();
        }
        w.finish().unwrap();
        let err = analyze_stream(buf.as_slice(), &AnalyzerConfig::default()).unwrap_err();
        assert!(
            err.to_string().contains("sorted"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_trace("/nonexistent/ats-trace.atsb").unwrap_err();
        assert!(matches!(err, TraceIoError::Io(_)));
    }
}
