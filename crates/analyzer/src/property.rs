//! The performance-property hierarchy.
//!
//! Mirrors the EXPERT/ASL property tree the paper's Figure 3.5 shows in its
//! left pane: generic time properties at the top, refining into paradigm-
//! specific wait states at the leaves. Every leaf computes a *waiting time*
//! from trace evidence; severities are waiting time divided by total
//! allocation time, exactly EXPERT's model.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A detectable performance property.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PropertyKind {
    // -- interior nodes (aggregate time categories) ----------------------
    /// Root: total allocated time.
    Time,
    /// Time spent in MPI operations.
    MpiTime,
    /// Time spent in MPI communication (P2P + collective).
    MpiCommunication,
    /// Time spent in OpenMP constructs.
    OmpTime,
    // -- MPI point-to-point leaves ----------------------------------------
    /// Receiver blocked by a late send.
    LateSender,
    /// (Synchronous) sender blocked by a late receive.
    LateReceiver,
    /// Receiver blocked while a message it receives later already waits in
    /// its queue (EXPERT: "Messages in Wrong Order").
    MessagesWrongOrder,
    // -- MPI collective leaves ---------------------------------------------
    /// Waiting in front of a barrier for the last arriver.
    WaitAtBarrier,
    /// Waiting in an all-to-all style operation (alltoall, allreduce,
    /// allgather, scan) for the last arriver.
    WaitAtNxN,
    /// Non-root members waiting in a bcast for a late root.
    LateBroadcast,
    /// Non-root members waiting in a scatter\[v\] for a late root.
    LateScatter,
    /// Root waiting in a reduce for late members.
    EarlyReduce,
    /// Root waiting in a gather\[v\] for late members.
    EarlyGather,
    /// Time in MPI_Init/MPI_Finalize — the paper's "High MPI
    /// Initialization/Finalization Overhead" (visible in its Fig. 3.2).
    MpiSetupOverhead,
    // -- OpenMP leaves -------------------------------------------------------
    /// Threads idle at the parallel-region join (load imbalance).
    OmpImbalanceInRegion,
    /// Threads waiting at an explicit or worksharing barrier.
    OmpWaitAtBarrier,
    /// Threads waiting to enter a contended critical section.
    OmpCriticalContention,
}

impl PropertyKind {
    /// The parent in the property tree (`None` for the root).
    pub fn parent(self) -> Option<PropertyKind> {
        use PropertyKind::*;
        Some(match self {
            Time => return None,
            MpiTime | OmpTime => Time,
            MpiCommunication | MpiSetupOverhead => MpiTime,
            LateSender | LateReceiver | MessagesWrongOrder | WaitAtBarrier | WaitAtNxN
            | LateBroadcast | LateScatter | EarlyReduce | EarlyGather => MpiCommunication,
            OmpImbalanceInRegion | OmpWaitAtBarrier | OmpCriticalContention => OmpTime,
        })
    }

    /// Stable name (matches `ats-core`'s catalog `expected_property`).
    pub fn name(self) -> &'static str {
        use PropertyKind::*;
        match self {
            Time => "Time",
            MpiTime => "MPI",
            MpiCommunication => "Communication",
            OmpTime => "OpenMP",
            LateSender => "LateSender",
            LateReceiver => "LateReceiver",
            MessagesWrongOrder => "MessagesWrongOrder",
            WaitAtBarrier => "WaitAtBarrier",
            WaitAtNxN => "WaitAtNxN",
            LateBroadcast => "LateBroadcast",
            LateScatter => "LateScatter",
            EarlyReduce => "EarlyReduce",
            EarlyGather => "EarlyGather",
            MpiSetupOverhead => "MpiSetupOverhead",
            OmpImbalanceInRegion => "OmpImbalanceInRegion",
            OmpWaitAtBarrier => "OmpWaitAtBarrier",
            OmpCriticalContention => "OmpCriticalContention",
        }
    }

    /// Human-readable description.
    pub fn describe(self) -> &'static str {
        use PropertyKind::*;
        match self {
            Time => "total allocated time",
            MpiTime => "time in MPI operations",
            MpiCommunication => "time in MPI communication",
            OmpTime => "time in OpenMP constructs",
            LateSender => "receiver blocked by a late sender",
            LateReceiver => "sender blocked by a late receiver",
            MessagesWrongOrder => "receiver blocked while a later message already waits",
            WaitAtBarrier => "waiting for the last arriver at a barrier",
            WaitAtNxN => "waiting for the last arriver at an N-to-N collective",
            LateBroadcast => "waiting for a late root in a broadcast",
            LateScatter => "waiting for a late root in a scatter",
            EarlyReduce => "root waiting for late members in a reduction",
            EarlyGather => "root waiting for late members in a gather",
            MpiSetupOverhead => "MPI initialization/finalization overhead",
            OmpImbalanceInRegion => "idle threads at the parallel-region join",
            OmpWaitAtBarrier => "waiting at an OpenMP barrier",
            OmpCriticalContention => "waiting to enter a contended critical section",
        }
    }

    /// All leaf properties (the detectable wait states).
    pub fn leaves() -> &'static [PropertyKind] {
        use PropertyKind::*;
        &[
            LateSender,
            LateReceiver,
            MessagesWrongOrder,
            WaitAtBarrier,
            WaitAtNxN,
            LateBroadcast,
            LateScatter,
            EarlyReduce,
            EarlyGather,
            MpiSetupOverhead,
            OmpImbalanceInRegion,
            OmpWaitAtBarrier,
            OmpCriticalContention,
        ]
    }

    /// Depth in the tree (root = 0).
    pub fn depth(self) -> usize {
        let mut d = 0;
        let mut cur = self;
        while let Some(p) = cur.parent() {
            d += 1;
            cur = p;
        }
        d
    }
}

impl fmt::Display for PropertyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a property name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePropertyError(pub String);

impl fmt::Display for ParsePropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown property `{}`", self.0)
    }
}

impl std::error::Error for ParsePropertyError {}

impl FromStr for PropertyKind {
    type Err = ParsePropertyError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        use PropertyKind::*;
        let all = [
            Time,
            MpiTime,
            MpiCommunication,
            OmpTime,
            LateSender,
            LateReceiver,
            MessagesWrongOrder,
            WaitAtBarrier,
            WaitAtNxN,
            LateBroadcast,
            LateScatter,
            EarlyReduce,
            EarlyGather,
            MpiSetupOverhead,
            OmpImbalanceInRegion,
            OmpWaitAtBarrier,
            OmpCriticalContention,
        ];
        all.iter()
            .find(|p| p.name() == s)
            .copied()
            .ok_or_else(|| ParsePropertyError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_leaf_reaches_the_root() {
        for leaf in PropertyKind::leaves() {
            let mut cur = *leaf;
            let mut hops = 0;
            while let Some(p) = cur.parent() {
                cur = p;
                hops += 1;
                assert!(hops < 10, "cycle under {leaf}");
            }
            assert_eq!(cur, PropertyKind::Time);
        }
    }

    #[test]
    fn depths_are_consistent() {
        assert_eq!(PropertyKind::Time.depth(), 0);
        assert_eq!(PropertyKind::MpiTime.depth(), 1);
        assert_eq!(PropertyKind::LateSender.depth(), 3);
        assert_eq!(PropertyKind::OmpWaitAtBarrier.depth(), 2);
    }

    #[test]
    fn names_roundtrip() {
        for leaf in PropertyKind::leaves() {
            let parsed: PropertyKind = leaf.name().parse().unwrap();
            assert_eq!(parsed, *leaf);
        }
        assert!("Bogus".parse::<PropertyKind>().is_err());
    }

    #[test]
    fn catalog_expected_names_parse() {
        // Keep the analyzer's vocabulary in sync with ats-core's catalog.
        for spec in ats_core::CATALOG {
            if let Some(name) = spec.expected_property {
                assert!(
                    name.parse::<PropertyKind>().is_ok(),
                    "catalog expects unknown property {name}"
                );
            }
        }
    }
}
