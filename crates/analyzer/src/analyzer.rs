//! The analysis driver.

use crate::extract::extract;
use crate::patterns;
use crate::report::AnalysisReport;
use crate::severity::SeverityCube;
use ats_trace::Trace;

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzerConfig {
    /// Observability registry analyses record into (`None` = no
    /// recording): per-pass span timings, ingest counters, finding
    /// counts. Recording never changes the report.
    pub obs: Option<ats_obs::Handle>,
    /// Minimum severity fraction (waiting time / total allocation time)
    /// for a (property, call path) to be reported. The paper notes that
    /// "automatic performance tools have different thresholds /
    /// sensitivities", which is exactly why ATS severities must be
    /// parameterizable — and why the threshold is a config knob here.
    pub threshold: f64,
    /// Report MPI_Init/MPI_Finalize overhead as a property (the paper's
    /// Fig. 3.2 remark). Off by default: for tiny synthetic programs it
    /// dominates everything else, as the paper itself observed.
    pub report_setup_overhead: bool,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            obs: None,
            threshold: 0.005,
            report_setup_overhead: false,
        }
    }
}

impl AnalyzerConfig {
    /// Builder: set the reporting threshold.
    pub fn threshold(mut self, t: f64) -> Self {
        self.threshold = t;
        self
    }

    /// Builder: include setup overhead in the report.
    pub fn with_setup_overhead(mut self) -> Self {
        self.report_setup_overhead = true;
        self
    }

    /// Builder: record metrics into `obs` for every analysis.
    pub fn obs(mut self, obs: ats_obs::Handle) -> Self {
        self.obs = Some(obs);
        self
    }
}

/// Run `f`, observing its duration into `h` when observability is on.
fn timed<T>(h: Option<&ats_obs::Histogram>, f: impl FnOnce() -> T) -> T {
    match h {
        Some(h) => {
            let _t = h.timer();
            f()
        }
        None => f(),
    }
}

/// Run the automatic analysis over a trace.
pub fn analyze(trace: &Trace, config: &AnalyzerConfig) -> AnalysisReport {
    let m = config.obs.as_ref().map(|o| &o.analyzer);
    if let Some(m) = m {
        m.analyses.inc();
        m.events_ingested.add(trace.num_events() as u64);
    }
    let ex = timed(m.map(|m| &m.extract_time), || extract(trace));
    detect_and_report(ex, trace, trace.total_alloc_time(), config)
}

/// Run the pattern detectors over an [`Extract`] and build the ranked
/// report. Shared by [`analyze`] and the streaming ingest path
/// ([`crate::ingest::analyze_stream`]): given equal extracts and equal
/// `total_alloc`, both produce byte-identical reports. `trace` only
/// supplies the region and communicator tables (for call-path rendering
/// and collective-root resolution), so a locationless shell trace works.
pub(crate) fn detect_and_report(
    ex: crate::extract::Extract,
    trace: &Trace,
    total_alloc: ats_runtime::VDur,
    config: &AnalyzerConfig,
) -> AnalysisReport {
    let m = config.obs.as_ref().map(|o| &o.analyzer);
    let mut cube = SeverityCube::new(total_alloc);

    let pairs = patterns::match_messages(&ex);
    cube.extend(timed(m.map(|m| &m.late_sender_time), || {
        patterns::late_sender(&pairs)
    }));
    cube.extend(timed(m.map(|m| &m.late_receiver_time), || {
        patterns::late_receiver(&pairs)
    }));
    cube.extend(timed(m.map(|m| &m.wrong_order_time), || {
        patterns::wrong_order(&pairs)
    }));
    timed(m.map(|m| &m.collective_time), || {
        for inst in &ex.colls {
            cube.extend(patterns::collective_waits(inst, trace));
        }
    });
    cube.extend(timed(m.map(|m| &m.critical_time), || {
        patterns::critical_waits(&ex)
    }));
    if config.report_setup_overhead {
        cube.extend(patterns::setup_overheads(&ex));
    }

    let report = timed(m.map(|m| &m.severity_time), || {
        AnalysisReport::build(cube, ex.paths, trace, config.threshold)
    });
    if let Some(m) = m {
        m.findings.add(report.findings.len() as u64);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ats_core::composite::{two_communicator_composite, CompositeParams};
    use ats_core::properties::{mpi_coll, mpi_p2p, negative, omp};
    use ats_core::{with_omp, BaseComm, Distr};
    use ats_mpi::SimConfig;
    use ats_runtime::{MachineModel, VDur};
    use ats_trace::LocationId;

    fn cfg(n: usize) -> SimConfig {
        SimConfig {
            nprocs: n,
            model: MachineModel::zero(),
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        }
    }

    fn base() -> BaseComm {
        BaseComm::default()
    }

    #[test]
    fn detects_every_paper_prototype_property() {
        // One program per property; the analyzer must find the expected
        // property name from ats-core's catalog.
        type Body = Box<dyn Fn(&mut ats_mpi::Proc) + Sync>;
        let runs: Vec<(&str, Body)> = vec![
            (
                "late_sender",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_p2p::late_sender(p, &base(), 0.002, 0.02, 2, &c)
                }),
            ),
            (
                "late_receiver",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_p2p::late_receiver(p, &base(), 0.002, 0.02, 2, &c)
                }),
            ),
            (
                "imbalance_at_mpi_barrier",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::imbalance_at_mpi_barrier(p, &Distr::block2(0.002, 0.02), 2, &c)
                }),
            ),
            (
                "imbalance_at_mpi_alltoall",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::imbalance_at_mpi_alltoall(
                        p,
                        &base(),
                        &Distr::linear(0.002, 0.02),
                        2,
                        &c,
                    )
                }),
            ),
            (
                "late_broadcast",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::late_broadcast(p, &base(), 0.002, 0.02, 1, 2, &c)
                }),
            ),
            (
                "late_scatter",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::late_scatter(p, &base(), 0.002, 0.02, 0, 2, &c)
                }),
            ),
            (
                "late_scatterv",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::late_scatterv(p, &base(), 0.002, 0.02, 0, 2, &c)
                }),
            ),
            (
                "early_reduce",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::early_reduce(p, &base(), 0.002, 0.02, 0, 2, &c)
                }),
            ),
            (
                "early_gather",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::early_gather(p, &base(), 0.002, 0.02, 0, 2, &c)
                }),
            ),
            (
                "early_gatherv",
                Box::new(|p| {
                    let c = p.comm_world();
                    mpi_coll::early_gatherv(p, &base(), 0.002, 0.02, 0, 2, &c)
                }),
            ),
        ];
        for (name, body) in runs {
            let spec = ats_core::catalog::find(name).unwrap();
            let expected = spec.expected_property.unwrap();
            let trace = ats_mpi::run(cfg(4), |p| body(p));
            let report = analyze(&trace, &AnalyzerConfig::default());
            let sev = report.severity_of(expected);
            assert!(
                sev > 0.01,
                "{name}: expected {expected} with severity > 1%, got {sev}"
            );
            // Localization: some finding for the property sits at a call
            // path containing both the property frame and the MPI call.
            let hits = report.findings_for(expected);
            assert!(
                hits.iter()
                    .any(|f| f.call_path.contains(name) && f.call_path.contains(spec.localized_at)),
                "{name}: no finding localized at {}/{}; findings: {:?}",
                name,
                spec.localized_at,
                report.findings
            );
        }
    }

    #[test]
    fn omp_properties_detected() {
        let df = Distr::linear(0.002, 0.020);
        let trace = ats_mpi::run(cfg(2), move |p| {
            with_omp(p, |m| {
                omp::imbalance_at_omp_barrier(m, 4, &df, 2);
                omp::imbalance_in_omp_pregion(m, 4, &df, 2);
                omp::omp_critical_contention(m, 4, 0.01, 0.0, 1);
            });
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(report.severity_of("OmpWaitAtBarrier") > 0.01);
        assert!(report.severity_of("OmpImbalanceInRegion") > 0.01);
        assert!(report.severity_of("OmpCriticalContention") > 0.01);
    }

    #[test]
    fn negative_suite_is_clean() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            negative::balanced_mpi_barrier(p, 0.01, 3, &c);
            negative::balanced_mpi_p2p(p, &base(), 0.005, 2, &c);
            negative::balanced_ring(p, &base(), 0.005, 2, &c);
            negative::balanced_mpi_collectives(p, &base(), 0.005, 0, 2, &c);
            with_omp(p, |m| {
                negative::balanced_omp_region(m, 4, 0.005, 2);
                negative::balanced_omp_loop(m, 4, 0.001, 4, 2);
            });
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        assert!(
            report.is_clean(),
            "negative suite produced findings: {:?}",
            report.findings
        );
    }

    #[test]
    fn severity_is_monotone_in_programmed_extrawork() {
        let mut severities = Vec::new();
        for extra in [0.005, 0.010, 0.020, 0.040] {
            let trace = ats_mpi::run(cfg(4), move |p| {
                let c = p.comm_world();
                mpi_p2p::late_sender(p, &base(), 0.005, extra, 3, &c);
            });
            let report = analyze(&trace, &AnalyzerConfig::default());
            severities.push(report.severity_of("LateSender"));
        }
        for w in severities.windows(2) {
            assert!(w[0] < w[1], "severity not monotone: {severities:?}");
        }
    }

    #[test]
    fn figure35_late_broadcast_localization() {
        // The paper's EXPERT experiment, scaled to 16 ranks: the upper
        // communicator (global ranks 8..16) runs late_broadcast with
        // communicator-local root 1 (= global rank 9). EXPERT found the
        // property at MPI_Bcast inside late_broadcast(), located at ranks
        // 8 and 10..15 (everyone in the upper half except the root).
        let params = CompositeParams {
            basework: 0.002,
            extrawork: 0.02,
            reps: 2,
            ..Default::default()
        };
        let trace = ats_mpi::run(cfg(16), move |p| {
            let c = p.comm_world();
            two_communicator_composite(p, &params, &c);
        });
        let report = analyze(&trace, &AnalyzerConfig::default());
        let hits = report.findings_for("LateBroadcast");
        assert!(!hits.is_empty(), "LateBroadcast not detected");
        assert!(
            hits.iter().any(
                |f| f.call_path.contains("late_broadcast") && f.call_path.contains("MPI_Bcast")
            ),
            "not localized in the call tree: {hits:?}"
        );
        let locs = report.locations_for("LateBroadcast");
        let expect: Vec<LocationId> = (8..16).filter(|&r| r != 9).map(LocationId::rank).collect();
        assert_eq!(locs, expect, "wrong machine localization");
        // And the lower half's properties were found too, in parallel.
        assert!(report.severity_of("LateSender") > 0.0);
        assert!(report.severity_of("LateReceiver") > 0.0);
    }

    #[test]
    fn setup_overhead_reported_when_enabled() {
        let mut config = cfg(2);
        config.init_time = VDur::from_millis(50);
        config.finalize_time = VDur::from_millis(30);
        let trace = ats_mpi::run(config, |p| {
            p.do_work(VDur::from_millis(5));
        });
        let off = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(off.severity_of("MpiSetupOverhead"), 0.0);
        let on = analyze(&trace, &AnalyzerConfig::default().with_setup_overhead());
        assert!(
            on.severity_of("MpiSetupOverhead") > 0.5,
            "init/finalize dominate this tiny program"
        );
    }

    #[test]
    fn threshold_filters_findings() {
        let trace = ats_mpi::run(cfg(4), |p| {
            let c = p.comm_world();
            mpi_p2p::late_sender(p, &base(), 0.01, 0.001, 1, &c); // tiny wait
        });
        let loose = analyze(&trace, &AnalyzerConfig::default().threshold(0.0001));
        let strict = analyze(&trace, &AnalyzerConfig::default().threshold(0.5));
        assert!(!loose.is_clean());
        assert!(strict.is_clean());
    }
}
