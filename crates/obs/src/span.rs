//! RAII span timers with a thread-local name stack.
//!
//! A span is a named, timed scope: entering pushes the name onto the
//! current thread's stack, dropping records the elapsed time into the
//! span's histogram and pops the stack. The stack exists so the sampling
//! profiler ([`crate::profiler`]) can attribute a sample to the full
//! nesting path (`analyzer.extract` inside `pool.task`, say) rather than
//! just the innermost name. Stack maintenance is a thread-local
//! `Vec<&'static str>` push/pop — no allocation after the first few spans
//! of a thread's life, and no synchronization at all unless the profiler
//! is armed.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Snapshot the current thread's span path, innermost last.
pub fn current_path() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// RAII guard created by [`Histogram::span`]: times the scope, keeps the
/// thread-local span stack honest, and feeds the sampling profiler.
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(hist: &'a Histogram, name: &'static str) -> Self {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        crate::profiler::on_span_enter();
        SpanGuard {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed());
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        let outer = Histogram::new();
        let inner = Histogram::new();
        assert!(current_path().is_empty());
        {
            let _o = outer.span("outer");
            assert_eq!(current_path(), vec!["outer"]);
            {
                let _i = inner.span("inner");
                assert_eq!(current_path(), vec!["outer", "inner"]);
            }
            assert_eq!(current_path(), vec!["outer"]);
            assert_eq!(inner.count(), 1);
        }
        assert!(current_path().is_empty());
        assert_eq!(outer.count(), 1);
    }
}
