//! Prometheus text exposition of a [`Registry`].
//!
//! Renders *every* metric family, including zero-valued ones, so a scrape
//! (or a human) always sees the full schema of what ATS-RS instruments —
//! a run that never touched the fuzzer still advertises
//! `ats_fuzz_scenarios_total 0`. Histogram `_sum` is converted from the
//! internal nanoseconds to seconds per Prometheus convention.

use crate::metrics::BUCKET_BOUNDS_NS;
use crate::registry::Registry;
use std::fmt::Write;

/// Render the registry in Prometheus text exposition format (v0.0.4).
pub fn prometheus(reg: &Registry) -> String {
    let mut out = String::with_capacity(8 * 1024);
    for c in reg.counters() {
        let _ = writeln!(out, "# HELP {} {}", c.name, c.help);
        let _ = writeln!(out, "# TYPE {} counter", c.name);
        let _ = writeln!(out, "{} {}", c.name, c.value);
    }
    for g in reg.gauges() {
        let _ = writeln!(out, "# HELP {} {}", g.name, g.help);
        let _ = writeln!(out, "# TYPE {} gauge", g.name);
        let _ = writeln!(out, "{} {}", g.name, g.value);
    }
    for h in reg.histograms() {
        let _ = writeln!(out, "# HELP {} {}", h.name, h.help);
        let _ = writeln!(out, "# TYPE {} histogram", h.name);
        let cum = h.hist.cumulative_buckets();
        for (bound_ns, count) in BUCKET_BOUNDS_NS.iter().zip(&cum) {
            let _ = writeln!(
                out,
                "{}_bucket{{le=\"{}\"}} {}",
                h.name,
                *bound_ns as f64 / 1e9,
                count
            );
        }
        let _ = writeln!(
            out,
            "{}_bucket{{le=\"+Inf\"}} {}",
            h.name,
            cum.last().copied().unwrap_or(0)
        );
        let _ = writeln!(out, "{}_sum {}", h.name, h.hist.sum_secs());
        let _ = writeln!(out, "{}_count {}", h.name, h.hist.count());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_families_even_when_zero() {
        let reg = Registry::default();
        let text = prometheus(&reg);
        for needle in [
            "ats_mpisim_events_total 0",
            "ats_trace_binary_bytes_encoded_total 0",
            "ats_pool_tasks_total 0",
            "ats_analyzer_analyses_total 0",
            "ats_fuzz_scenarios_total 0",
            "# TYPE ats_pool_queue_wait_seconds histogram",
            "ats_pool_queue_wait_seconds_bucket{le=\"+Inf\"} 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn histogram_values_flow_through() {
        let reg = Registry::default();
        reg.fuzz.oracle_time.observe_ns(2_000_000); // 2ms
        let text = prometheus(&reg);
        assert!(text.contains("ats_fuzz_oracle_seconds_count 1"), "{text}");
        assert!(text.contains("ats_fuzz_oracle_seconds_sum 0.002"), "{text}");
    }
}
