//! Structured JSON run manifests.
//!
//! A manifest is the durable record written next to every trace or
//! experiment artifact: what ran (label + config + git describe), what it
//! did (the *deterministic* per-subsystem counters — reproducible bit for
//! bit for a fixed seed at any `jobs` value), and how it went (the
//! *runtime* section: wall/CPU time, scheduling-dependent counters,
//! gauges, latency histograms, profiler samples). The two sections are
//! split precisely so tests and CI can diff [`RunManifest::deterministic_json`]
//! across runs while the runtime half stays free to vary.

use crate::registry::Handle;
use serde::Serialize;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Schema identifier stamped into every manifest.
pub const MANIFEST_SCHEMA: &str = "ats-run-manifest/1";

/// Snapshot of one histogram for the manifest's runtime section.
#[derive(Debug, Clone, Serialize)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum_seconds: f64,
}

/// Scheduling- and timing-dependent observations.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeSection {
    /// Wall-clock seconds for the run the manifest describes.
    pub wall_seconds: f64,
    /// Process CPU seconds (user+system) at snapshot time, if readable.
    pub cpu_seconds: Option<f64>,
    /// Non-deterministic counters (pool reuse, busy/wall time).
    pub counters: BTreeMap<&'static str, u64>,
    /// All gauges.
    pub gauges: BTreeMap<&'static str, u64>,
    /// All histograms.
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
    /// Sampling-profiler hits per span path (empty when disarmed).
    pub profile: Vec<(String, u64)>,
}

/// The manifest itself. Serialize with [`RunManifest::to_json_pretty`].
#[derive(Debug, Clone, Serialize)]
pub struct RunManifest {
    /// Schema identifier ([`MANIFEST_SCHEMA`]).
    pub schema: &'static str,
    /// What ran — a bin name, an experiment label.
    pub label: String,
    /// `git describe --always --dirty` of the working tree, or "unknown".
    pub git_describe: String,
    /// The run's configuration (seed, procs, thresholds — *not* `jobs`,
    /// which is an execution detail that must not affect results).
    pub config: serde_json::Value,
    /// Deterministic per-subsystem counters: identical for identical
    /// (config, seed) at any `jobs` value.
    pub metrics: BTreeMap<&'static str, u64>,
    /// Everything timing-dependent.
    pub runtime: RuntimeSection,
}

impl RunManifest {
    /// Pretty-printed JSON of the full manifest.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }

    /// JSON of only the reproducible fields (schema, label, config,
    /// deterministic metrics) — the thing tests diff across runs.
    pub fn deterministic_json(&self) -> String {
        #[derive(Serialize)]
        struct Det<'a> {
            schema: &'static str,
            label: &'a str,
            config: &'a serde_json::Value,
            metrics: &'a BTreeMap<&'static str, u64>,
        }
        serde_json::to_string_pretty(&Det {
            schema: self.schema,
            label: &self.label,
            config: &self.config,
            metrics: &self.metrics,
        })
        .expect("manifest serializes")
    }

    /// Write the manifest beside an artifact: `foo.atsb` →
    /// `foo.atsb.manifest.json`. Returns the manifest path.
    pub fn write_beside(&self, artifact: &Path) -> io::Result<PathBuf> {
        let mut name = artifact.file_name().unwrap_or_default().to_os_string();
        name.push(".manifest.json");
        let path = artifact.with_file_name(name);
        std::fs::write(&path, self.to_json_pretty())?;
        Ok(path)
    }
}

/// Build a manifest from a registry snapshot.
///
/// `config` should describe the workload (seed, procs, parameters,
/// thresholds) and deliberately exclude execution details like `jobs` or
/// thread budgets — those belong to the runtime section's gauges.
pub fn build_manifest(
    label: &str,
    config: serde_json::Value,
    handle: &Handle,
    wall_seconds: f64,
) -> RunManifest {
    let mut metrics = BTreeMap::new();
    let mut runtime_counters = BTreeMap::new();
    for c in handle.counters() {
        if c.deterministic {
            metrics.insert(c.name, c.value);
        } else {
            runtime_counters.insert(c.name, c.value);
        }
    }
    let gauges = handle
        .gauges()
        .into_iter()
        .map(|g| (g.name, g.value))
        .collect();
    let histograms = handle
        .histograms()
        .into_iter()
        .map(|h| {
            (
                h.name,
                HistSnapshot {
                    count: h.hist.count(),
                    sum_seconds: h.hist.sum_secs(),
                },
            )
        })
        .collect();
    RunManifest {
        schema: MANIFEST_SCHEMA,
        label: label.to_owned(),
        git_describe: git_describe(),
        config,
        metrics,
        runtime: RuntimeSection {
            wall_seconds,
            cpu_seconds: process_cpu_seconds(),
            counters: runtime_counters,
            gauges,
            histograms,
            profile: crate::profiler::samples(),
        },
    }
}

/// `git describe --always --dirty`, or "unknown" outside a work tree.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// User+system CPU seconds of this process, from `/proc/self/stat`
/// (Linux only; `None` elsewhere or on parse failure).
pub fn process_cpu_seconds() -> Option<f64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Fields 14/15 (utime/stime) counted after the parenthesized comm,
        // which may itself contain spaces.
        let rest = &stat[stat.rfind(')')? + 1..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        // USER_HZ is 100 on every Linux configuration we target.
        Some((utime + stime) as f64 / 100.0)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Handle;

    fn sample_handle() -> Handle {
        let h = Handle::new();
        h.mpi.events.add(123);
        h.trace.pool_hits.add(7); // runtime-classified
        h.analyzer.findings.add(4);
        h
    }

    #[test]
    fn deterministic_section_excludes_runtime_counters() {
        let h = sample_handle();
        let m = build_manifest("unit", serde_json::json!({"seed": 1}), &h, 0.5);
        assert_eq!(m.metrics["ats_mpisim_events_total"], 123);
        assert_eq!(m.metrics["ats_analyzer_findings_total"], 4);
        assert!(!m.metrics.contains_key("ats_trace_pool_hits_total"));
        assert_eq!(m.runtime.counters["ats_trace_pool_hits_total"], 7);
        let det = m.deterministic_json();
        assert!(det.contains("ats_mpisim_events_total"));
        assert!(!det.contains("pool_hits"));
        assert!(!det.contains("wall_seconds"));
    }

    #[test]
    fn deterministic_json_is_stable_across_identical_registries() {
        let a = build_manifest(
            "unit",
            serde_json::json!({"seed": 1}),
            &sample_handle(),
            0.1,
        );
        let b = build_manifest(
            "unit",
            serde_json::json!({"seed": 1}),
            &sample_handle(),
            9.9,
        );
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn write_beside_names_the_manifest_after_the_artifact() {
        let dir = std::env::temp_dir().join("ats_obs_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        let artifact = dir.join("trace.atsb");
        std::fs::write(&artifact, b"x").unwrap();
        let m = build_manifest("unit", serde_json::json!({}), &Handle::new(), 0.0);
        let path = m.write_beside(&artifact).unwrap();
        assert!(path.ends_with("trace.atsb.manifest.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["schema"], MANIFEST_SCHEMA);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cpu_seconds_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(process_cpu_seconds().is_some());
        }
    }
}
