//! The statically-shaped metric registry.
//!
//! Rather than a string-keyed map (which would put a hash + allocation on
//! every hot-path update), the registry is a plain struct of per-subsystem
//! metric groups: every instrumentation site touches a field directly, so
//! recording is exactly one relaxed atomic op. Names, help strings and the
//! deterministic/runtime classification live in the enumeration methods
//! ([`Registry::counters`] etc.), which only run at export time.
//!
//! A *deterministic* counter is one whose value is a pure function of the
//! workload (seed, parameters): simulated events, messages, findings,
//! encoded bytes. Everything timing- or scheduling-dependent (pool reuse,
//! mailbox depth, latencies) is *runtime*: real under the same roof, but
//! excluded from the manifest's reproducibility-checked section because
//! two byte-identical runs legitimately differ there.

use crate::metrics::{Counter, Gauge, Histogram};
use std::fmt;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// `mpisim`: the virtual-time MPI substrate.
#[derive(Debug, Default)]
pub struct MpiMetrics {
    /// Simulations executed (`ats_mpi::run` entries).
    pub runs: Counter,
    /// Rank threads spawned across all runs.
    pub ranks: Counter,
    /// Events recorded into rank-local traces.
    pub events: Counter,
    /// Point-to-point envelopes pushed through mailboxes.
    pub messages: Counter,
    /// Collective operations completed (one per op, not per rank).
    pub collectives: Counter,
    /// Simulated tree/butterfly stages across all collectives.
    pub collective_rounds: Counter,
    /// Deepest any mailbox queue ever got.
    pub mailbox_depth_max: Gauge,
    /// Scheduler events executed by the discrete-event backend (task
    /// resumptions popped off the virtual-clock queue).
    pub sched_events: Counter,
    /// Deepest the discrete-event ready queue ever got.
    pub sched_ready_depth_max: Gauge,
}

/// `trace`: codecs and the event-buffer pool.
#[derive(Debug, Default)]
pub struct TraceMetrics {
    /// Bytes produced by the ATSB binary encoder.
    pub binary_bytes_encoded: Counter,
    /// Bytes consumed by the ATSB binary decoder.
    pub binary_bytes_decoded: Counter,
    /// Bytes written as JSONL.
    pub jsonl_bytes_encoded: Counter,
    /// Bytes read as JSONL.
    pub jsonl_bytes_decoded: Counter,
    /// Event-buffer pool takes satisfied from the pool.
    pub pool_hits: Counter,
    /// Event-buffer pool takes that allocated fresh.
    pub pool_misses: Counter,
    /// Buffers recycled back into the pool.
    pub pool_recycled: Counter,
}

/// `harness::pool`: the bounded sweep worker pool.
#[derive(Debug, Default)]
pub struct PoolMetrics {
    /// Tasks executed through the pool.
    pub tasks: Counter,
    /// Nanoseconds workers spent executing tasks (busy time).
    pub busy_ns: Counter,
    /// Nanoseconds of pool wall time (per `run_indexed` call, summed).
    pub wall_ns: Counter,
    /// Worker count of the most recent pool launch.
    pub jobs_occupancy: Gauge,
    /// Delay between pool launch and each task being claimed.
    pub queue_wait: Histogram,
    /// Per-task execution time.
    pub task_time: Histogram,
}

/// `analyzer`: EXPERT-style pattern search.
#[derive(Debug, Default)]
pub struct AnalyzerMetrics {
    /// Analyses performed.
    pub analyses: Counter,
    /// Events ingested across all analyses.
    pub events_ingested: Counter,
    /// Bytes ingested from on-disk traces.
    pub bytes_ingested: Counter,
    /// Findings reported (above-threshold severities).
    pub findings: Counter,
    /// State extraction pass.
    pub extract_time: Histogram,
    /// Late-sender pattern matching.
    pub late_sender_time: Histogram,
    /// Late-receiver pattern matching.
    pub late_receiver_time: Histogram,
    /// Wrong-order pattern matching.
    pub wrong_order_time: Histogram,
    /// Collective wait-state matching.
    pub collective_time: Histogram,
    /// Critical-wait (progress/serialization) matching.
    pub critical_time: Histogram,
    /// Severity cube → report build.
    pub severity_time: Histogram,
}

/// `fuzz::campaign`: the seeded scenario fuzzer.
#[derive(Debug, Default)]
pub struct FuzzMetrics {
    /// Scenarios executed.
    pub scenarios: Counter,
    /// Phases across all executed scenarios.
    pub phases: Counter,
    /// Oracle violations found.
    pub violations: Counter,
    /// Simulation re-runs spent shrinking violating scenarios.
    pub shrink_iterations: Counter,
    /// Full oracle verdict latency (predict + execute + compare).
    pub oracle_time: Histogram,
    /// End-to-end per-scenario latency (generate + run + check).
    pub scenario_time: Histogram,
}

/// `store`: the content-addressed artifact store. All store counters are
/// runtime-classified — hits and misses depend on what previous runs left
/// on disk, not on the workload alone.
#[derive(Debug, Default)]
pub struct StoreMetrics {
    /// Lookups satisfied from the store (integrity-verified).
    pub hits: Counter,
    /// Lookups that found nothing usable.
    pub misses: Counter,
    /// Entries committed.
    pub puts: Counter,
    /// Entries rejected because size or checksum verification failed.
    pub integrity_failures: Counter,
    /// Artifact bytes read back on hits.
    pub bytes_read: Counter,
    /// Artifact bytes written on puts.
    pub bytes_written: Counter,
}

/// `serve`: the campaign HTTP service. All serve metrics are
/// runtime-classified — they measure traffic, not workload.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Requests accepted and answered (any status).
    pub requests: Counter,
    /// Connections shed with 429 at admission.
    pub shed: Counter,
    /// Responses with a 4xx/5xx status.
    pub errors: Counter,
    /// Response body bytes written.
    pub bytes_out: Counter,
    /// Campaign rows streamed across all responses.
    pub rows_streamed: Counter,
    /// Most requests ever in flight at once.
    pub inflight_max: Gauge,
    /// Live connections right now.
    pub connections: Gauge,
    /// Request latency, accept to last byte.
    pub request_time: Histogram,
}

/// All subsystem metric groups under one roof.
#[derive(Debug, Default)]
pub struct Registry {
    pub mpi: MpiMetrics,
    pub trace: TraceMetrics,
    pub pool: PoolMetrics,
    pub analyzer: AnalyzerMetrics,
    pub fuzz: FuzzMetrics,
    pub store: StoreMetrics,
    pub serve: ServeMetrics,
}

/// An enumerated counter: name, help, deterministic flag, current value.
pub struct CounterDesc {
    pub name: &'static str,
    pub help: &'static str,
    pub deterministic: bool,
    pub value: u64,
}

/// An enumerated gauge.
pub struct GaugeDesc {
    pub name: &'static str,
    pub help: &'static str,
    pub value: u64,
}

/// An enumerated histogram (borrowed; render via its accessors).
pub struct HistDesc<'a> {
    pub name: &'static str,
    pub help: &'static str,
    pub hist: &'a Histogram,
}

impl Registry {
    /// Enumerate every counter with its export name. The `deterministic`
    /// flag drives the manifest partition (see module docs).
    pub fn counters(&self) -> Vec<CounterDesc> {
        let c = |name, help, deterministic, counter: &Counter| CounterDesc {
            name,
            help,
            deterministic,
            value: counter.get(),
        };
        vec![
            c(
                "ats_mpisim_runs_total",
                "Simulations executed",
                true,
                &self.mpi.runs,
            ),
            c(
                "ats_mpisim_ranks_total",
                "Rank threads spawned",
                true,
                &self.mpi.ranks,
            ),
            c(
                "ats_mpisim_events_total",
                "Events recorded into traces",
                true,
                &self.mpi.events,
            ),
            c(
                "ats_mpisim_messages_total",
                "P2P envelopes through mailboxes",
                true,
                &self.mpi.messages,
            ),
            c(
                "ats_mpisim_collectives_total",
                "Collective operations completed",
                true,
                &self.mpi.collectives,
            ),
            c(
                "ats_mpisim_collective_rounds_total",
                "Simulated collective tree stages",
                true,
                &self.mpi.collective_rounds,
            ),
            c(
                "ats_mpisim_sched_events_total",
                "Discrete-event scheduler events executed",
                true,
                &self.mpi.sched_events,
            ),
            c(
                "ats_trace_binary_bytes_encoded_total",
                "ATSB bytes encoded",
                true,
                &self.trace.binary_bytes_encoded,
            ),
            c(
                "ats_trace_binary_bytes_decoded_total",
                "ATSB bytes decoded",
                true,
                &self.trace.binary_bytes_decoded,
            ),
            c(
                "ats_trace_jsonl_bytes_encoded_total",
                "JSONL bytes written",
                true,
                &self.trace.jsonl_bytes_encoded,
            ),
            c(
                "ats_trace_jsonl_bytes_decoded_total",
                "JSONL bytes read",
                true,
                &self.trace.jsonl_bytes_decoded,
            ),
            c(
                "ats_trace_pool_hits_total",
                "Event-buffer pool reuse hits",
                false,
                &self.trace.pool_hits,
            ),
            c(
                "ats_trace_pool_misses_total",
                "Event-buffer pool misses",
                false,
                &self.trace.pool_misses,
            ),
            c(
                "ats_trace_pool_recycled_total",
                "Event buffers recycled",
                false,
                &self.trace.pool_recycled,
            ),
            c(
                "ats_pool_tasks_total",
                "Worker-pool tasks executed",
                true,
                &self.pool.tasks,
            ),
            c(
                "ats_pool_busy_nanoseconds_total",
                "Worker busy time",
                false,
                &self.pool.busy_ns,
            ),
            c(
                "ats_pool_wall_nanoseconds_total",
                "Pool wall time",
                false,
                &self.pool.wall_ns,
            ),
            c(
                "ats_analyzer_analyses_total",
                "Analyses performed",
                true,
                &self.analyzer.analyses,
            ),
            c(
                "ats_analyzer_events_ingested_total",
                "Events ingested",
                true,
                &self.analyzer.events_ingested,
            ),
            c(
                "ats_analyzer_bytes_ingested_total",
                "Bytes ingested from disk",
                true,
                &self.analyzer.bytes_ingested,
            ),
            c(
                "ats_analyzer_findings_total",
                "Findings reported",
                true,
                &self.analyzer.findings,
            ),
            c(
                "ats_fuzz_scenarios_total",
                "Fuzz scenarios executed",
                true,
                &self.fuzz.scenarios,
            ),
            c(
                "ats_fuzz_phases_total",
                "Fuzz phases executed",
                true,
                &self.fuzz.phases,
            ),
            c(
                "ats_fuzz_violations_total",
                "Oracle violations",
                true,
                &self.fuzz.violations,
            ),
            c(
                "ats_fuzz_shrink_iterations_total",
                "Shrink re-runs",
                true,
                &self.fuzz.shrink_iterations,
            ),
            c(
                "ats_store_hits_total",
                "Artifact-store verified hits",
                false,
                &self.store.hits,
            ),
            c(
                "ats_store_misses_total",
                "Artifact-store misses",
                false,
                &self.store.misses,
            ),
            c(
                "ats_store_puts_total",
                "Artifact-store entries committed",
                false,
                &self.store.puts,
            ),
            c(
                "ats_store_integrity_failures_total",
                "Artifact-store checksum rejections",
                false,
                &self.store.integrity_failures,
            ),
            c(
                "ats_store_bytes_read_total",
                "Artifact bytes replayed from the store",
                false,
                &self.store.bytes_read,
            ),
            c(
                "ats_store_bytes_written_total",
                "Artifact bytes persisted to the store",
                false,
                &self.store.bytes_written,
            ),
            c(
                "ats_serve_requests_total",
                "Service requests answered",
                false,
                &self.serve.requests,
            ),
            c(
                "ats_serve_shed_total",
                "Connections shed with 429 at admission",
                false,
                &self.serve.shed,
            ),
            c(
                "ats_serve_errors_total",
                "Service responses with an error status",
                false,
                &self.serve.errors,
            ),
            c(
                "ats_serve_bytes_out_total",
                "Response body bytes written",
                false,
                &self.serve.bytes_out,
            ),
            c(
                "ats_serve_rows_streamed_total",
                "Campaign rows streamed to clients",
                false,
                &self.serve.rows_streamed,
            ),
        ]
    }

    /// Enumerate every gauge. Gauges are always runtime-classified.
    pub fn gauges(&self) -> Vec<GaugeDesc> {
        let g = |name, help, gauge: &Gauge| GaugeDesc {
            name,
            help,
            value: gauge.get(),
        };
        vec![
            g(
                "ats_mpisim_mailbox_depth_max",
                "Deepest mailbox queue seen",
                &self.mpi.mailbox_depth_max,
            ),
            g(
                "ats_mpisim_sched_ready_depth_max",
                "Deepest discrete-event ready queue seen",
                &self.mpi.sched_ready_depth_max,
            ),
            g(
                "ats_pool_jobs_occupancy",
                "Workers in the latest pool launch",
                &self.pool.jobs_occupancy,
            ),
            g(
                "ats_serve_inflight_max",
                "Most requests ever in flight at once",
                &self.serve.inflight_max,
            ),
            g(
                "ats_serve_connections",
                "Live service connections",
                &self.serve.connections,
            ),
        ]
    }

    /// Enumerate every histogram. Histograms are always runtime-classified.
    pub fn histograms(&self) -> Vec<HistDesc<'_>> {
        let h = |name, help, hist| HistDesc { name, help, hist };
        vec![
            h(
                "ats_pool_queue_wait_seconds",
                "Task claim latency",
                &self.pool.queue_wait,
            ),
            h(
                "ats_pool_task_time_seconds",
                "Per-task execution time",
                &self.pool.task_time,
            ),
            h(
                "ats_analyzer_extract_seconds",
                "State extraction pass",
                &self.analyzer.extract_time,
            ),
            h(
                "ats_analyzer_pattern_late_sender_seconds",
                "Late-sender matching",
                &self.analyzer.late_sender_time,
            ),
            h(
                "ats_analyzer_pattern_late_receiver_seconds",
                "Late-receiver matching",
                &self.analyzer.late_receiver_time,
            ),
            h(
                "ats_analyzer_pattern_wrong_order_seconds",
                "Wrong-order matching",
                &self.analyzer.wrong_order_time,
            ),
            h(
                "ats_analyzer_pattern_collective_seconds",
                "Collective wait matching",
                &self.analyzer.collective_time,
            ),
            h(
                "ats_analyzer_pattern_critical_seconds",
                "Critical-wait matching",
                &self.analyzer.critical_time,
            ),
            h(
                "ats_analyzer_severity_seconds",
                "Severity cube and report build",
                &self.analyzer.severity_time,
            ),
            h(
                "ats_fuzz_oracle_seconds",
                "Oracle verdict latency",
                &self.fuzz.oracle_time,
            ),
            h(
                "ats_fuzz_scenario_seconds",
                "Per-scenario latency",
                &self.fuzz.scenario_time,
            ),
            h(
                "ats_serve_request_seconds",
                "Request latency, accept to last byte",
                &self.serve.request_time,
            ),
        ]
    }
}

/// A cloneable, shareable reference to a [`Registry`].
///
/// Configs thread a `Handle` the same way they thread a trace-buffer
/// pool: `Option<Handle>` defaulting to `None`
/// (no instrumentation, near-zero cost). A *fresh* handle gives a test or
/// session its own registry, immune to concurrent pollution; the
/// process-wide [`global`] handle is what free-function call sites (the
/// trace codec) record into when [`global_enabled`] is armed.
#[derive(Clone, Default)]
pub struct Handle(Arc<Registry>);

impl Handle {
    /// A handle to a brand-new, all-zero registry.
    pub fn new() -> Self {
        Handle(Arc::new(Registry::default()))
    }

    /// Do these two handles share one registry?
    pub fn same_registry(&self, other: &Handle) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Deref for Handle {
    type Target = Registry;
    fn deref(&self) -> &Registry {
        &self.0
    }
}

impl fmt::Debug for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obs::Handle({:p})", Arc::as_ptr(&self.0))
    }
}

static GLOBAL: OnceLock<Handle> = OnceLock::new();
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

/// The process-wide registry handle (created on first use).
pub fn global() -> &'static Handle {
    GLOBAL.get_or_init(Handle::new)
}

/// Should free-function call sites (trace codec, pools without an explicit
/// handle) record into [`global`]? Default `false`: one relaxed load and
/// out.
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm global recording.
pub fn set_global_enabled(enabled: bool) {
    GLOBAL_ENABLED.store(enabled, Ordering::Relaxed);
}

/// `Some(global handle)` when armed, `None` otherwise — the one-liner for
/// free-function instrumentation sites.
#[inline]
pub fn global_if_enabled() -> Option<&'static Handle> {
    if global_enabled() {
        Some(global())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handles_are_independent() {
        let a = Handle::new();
        let b = Handle::new();
        a.mpi.events.add(10);
        assert_eq!(a.mpi.events.get(), 10);
        assert_eq!(b.mpi.events.get(), 0);
        assert!(!a.same_registry(&b));
        let c = a.clone();
        assert!(a.same_registry(&c));
        c.mpi.events.inc();
        assert_eq!(a.mpi.events.get(), 11);
    }

    #[test]
    fn enumeration_covers_all_subsystems() {
        let r = Registry::default();
        let names: Vec<&str> = r
            .counters()
            .iter()
            .map(|c| c.name)
            .chain(r.gauges().iter().map(|g| g.name))
            .chain(r.histograms().iter().map(|h| h.name))
            .collect();
        for prefix in [
            "ats_mpisim_",
            "ats_trace_",
            "ats_pool_",
            "ats_analyzer_",
            "ats_fuzz_",
            "ats_store_",
            "ats_serve_",
        ] {
            assert!(
                names.iter().any(|n| n.starts_with(prefix)),
                "no metric for subsystem {prefix}"
            );
        }
        // Export names are unique.
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate metric name");
    }

    #[test]
    fn global_recording_is_gated() {
        assert!(global_if_enabled().is_none() || global_enabled());
    }
}
