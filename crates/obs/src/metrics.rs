//! Allocation-free metric primitives: counters, gauges, histograms.
//!
//! Every primitive is a fixed set of atomics updated with `Relaxed`
//! ordering — a recorded observation is one `fetch_add` (counters, gauge
//! max) or three (histograms: bucket + sum + count). Nothing here ever
//! allocates, locks, or formats on the hot path; names, help strings and
//! rendering live in the [`crate::registry`] / [`crate::export`] layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways; `set_max` is the common high-watermark
/// update (mailbox depth, jobs occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raise the gauge to `v` if it is below it (high watermark).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bounds (nanoseconds) of the finite histogram buckets: 1µs · 4ⁿ,
/// spanning ~1µs to ~4s. Everything above the last bound lands in the
/// implicit `+Inf` bucket.
pub const BUCKET_BOUNDS_NS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A fixed-bucket exponential latency histogram. One extra slot holds the
/// `+Inf` bucket; `sum` is in nanoseconds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_NS.len() + 1],
    sum_ns: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a duration in nanoseconds.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Start an RAII timer that records into this histogram on drop and
    /// maintains the thread-local span stack under `name` (see
    /// [`crate::span`]).
    pub fn span(&self, name: &'static str) -> crate::span::SpanGuard<'_> {
        crate::span::SpanGuard::enter(self, name)
    }

    /// Start a plain RAII timer (no span-stack bookkeeping).
    pub fn timer(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    pub fn sum_secs(&self) -> f64 {
        self.sum_ns() as f64 / 1e9
    }

    /// Cumulative per-bucket counts in bound order, `+Inf` last.
    pub fn cumulative_buckets(&self) -> Vec<u64> {
        let mut acc = 0;
        self.buckets
            .iter()
            .map(|b| {
                acc += b.load(Ordering::Relaxed);
                acc
            })
            .collect()
    }
}

/// RAII timer returned by [`Histogram::timer`].
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        self.hist.observe(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set_max(7);
        g.set_max(3);
        assert_eq!(g.get(), 7);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new();
        h.observe_ns(500); // bucket 0 (≤1µs)
        h.observe_ns(2_000); // bucket 1 (≤4µs)
        h.observe_ns(10_000_000_000); // +Inf
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 500 + 2_000 + 10_000_000_000);
        let cum = h.cumulative_buckets();
        assert_eq!(cum[0], 1);
        assert_eq!(cum[1], 2);
        assert_eq!(cum[BUCKET_BOUNDS_NS.len() - 1], 2);
        assert_eq!(*cum.last().unwrap(), 3);
    }

    #[test]
    fn timer_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = h.timer();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.sum_ns() >= 1_000_000);
    }
}
