//! Sampling profiler hook.
//!
//! When armed with a sampling period `N`, every `N`-th span *entry*
//! (process-wide, across all threads and registries) records the entering
//! thread's full span path into a shared sample table. The common case —
//! profiler disarmed — is a single relaxed atomic load per span entry;
//! the sampled case takes a mutex and allocates the joined path string,
//! which is fine because it happens on 1-in-`N` entries by construction.
//!
//! This is deliberately a *hook*, not a full profiler: it answers "where
//! do spans concentrate?" with enough fidelity to direct a real profiler,
//! at a cost low enough to leave on during benchmarking.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static SAMPLE_EVERY: AtomicUsize = AtomicUsize::new(0);
static ENTRIES: AtomicU64 = AtomicU64::new(0);
static SAMPLES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Arm the profiler to sample every `n`-th span entry (`0` disarms it).
pub fn set_sample_every(n: usize) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// Current sampling period (`0` = disarmed).
pub fn sample_every() -> usize {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Drop all collected samples and reset the entry counter.
pub fn reset() {
    ENTRIES.store(0, Ordering::Relaxed);
    SAMPLES.lock().clear();
}

/// Snapshot the sample table: (span path, hits), sorted by path.
pub fn samples() -> Vec<(String, u64)> {
    SAMPLES
        .lock()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

#[inline]
pub(crate) fn on_span_enter() {
    let every = SAMPLE_EVERY.load(Ordering::Relaxed);
    if every == 0 {
        return;
    }
    let n = ENTRIES.fetch_add(1, Ordering::Relaxed);
    if n % every as u64 == 0 {
        let path = crate::span::current_path().join("/");
        *SAMPLES.lock().entry(path).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn sampling_records_span_paths() {
        reset();
        set_sample_every(1);
        let h = Histogram::new();
        {
            let _a = h.span("alpha");
            let _b = h.span("beta");
        }
        set_sample_every(0);
        let got = samples();
        assert!(
            got.iter().any(|(p, _)| p == "alpha/beta"),
            "missing nested sample: {got:?}"
        );
        reset();
        assert!(samples().is_empty());
    }
}
