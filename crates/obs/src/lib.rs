//! # ats-obs — self-observability for ATS-RS
//!
//! The suite exists to *test* performance-analysis tools; this crate makes
//! the suite observable to itself, so the hot paths the ROADMAP promises
//! to keep "fast as hardware allows" stay visible instead of regressing
//! silently between `BENCH_*.json` runs.
//!
//! Three layers:
//!
//! - [`metrics`] — atomic [`Counter`]/[`Gauge`]/[`Histogram`]; one relaxed
//!   atomic op per update, zero allocation, zero locks.
//! - [`registry`] — the statically-shaped [`Registry`] grouping all
//!   metrics per subsystem (mpisim / trace / pool / analyzer / fuzz),
//!   shared via a cloneable [`Handle`]. Subsystem configs carry an
//!   `Option<Handle>` exactly like they carry an `Option<TracePool>`;
//!   `None` (the default) costs one branch.
//! - [`export`] + [`manifest`] — Prometheus text exposition and the JSON
//!   run manifest written next to artifacts, with the deterministic
//!   counter snapshot split from the timing-dependent runtime section.
//!
//! [`span`] provides RAII span timers over a thread-local name stack, and
//! [`profiler`] a sampling hook that attributes every N-th span entry to
//! its full nesting path.
//!
//! The crate depends only on `parking_lot` + `serde`/`serde_json` (for
//! export, off the hot path) and sits below every other ATS crate.

pub mod export;
pub mod manifest;
pub mod metrics;
pub mod profiler;
pub mod registry;
pub mod span;

pub use export::prometheus;
pub use manifest::{build_manifest, git_describe, process_cpu_seconds, RunManifest};
pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{
    global, global_enabled, global_if_enabled, set_global_enabled, Handle, Registry,
};
pub use span::SpanGuard;

/// How a [`crate::registry::Handle`]-carrying session should observe
/// itself. The default is fully off: no registry, no recording, and the
/// disabled path costs a single `Option` branch at each site.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Record metrics at all.
    pub enabled: bool,
    /// Use a private registry (tests, overhead measurement) instead of
    /// the process-wide [`global`] one (bins, long-lived sessions). The
    /// global registry additionally arms [`global_enabled`] so
    /// free-function call sites (trace codec) record too.
    pub fresh_registry: bool,
    /// Arm the sampling profiler to sample every n-th span entry
    /// (`0` = disarmed).
    pub sample_every: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

impl ObsConfig {
    /// Observability fully disabled (the default).
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            fresh_registry: false,
            sample_every: 0,
        }
    }

    /// Record into the process-wide registry and arm global recording.
    pub fn on() -> Self {
        ObsConfig {
            enabled: true,
            fresh_registry: false,
            sample_every: 0,
        }
    }

    /// Record into a private registry (deterministic-snapshot tests).
    pub fn fresh() -> Self {
        ObsConfig {
            enabled: true,
            fresh_registry: true,
            sample_every: 0,
        }
    }

    /// Builder: arm the sampling profiler.
    pub fn sample_every(mut self, n: usize) -> Self {
        self.sample_every = n;
        self
    }

    /// Materialize the handle this config asks for (and apply the side
    /// effects: arming global recording / the profiler).
    pub fn handle(&self) -> Option<Handle> {
        if !self.enabled {
            return None;
        }
        if self.sample_every > 0 {
            profiler::set_sample_every(self.sample_every);
        }
        if self.fresh_registry {
            Some(Handle::new())
        } else {
            set_global_enabled(true);
            Some(global().clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_yields_no_handle() {
        assert!(ObsConfig::off().handle().is_none());
        assert!(!ObsConfig::default().enabled);
    }

    #[test]
    fn fresh_config_yields_private_registries() {
        let a = ObsConfig::fresh().handle().unwrap();
        let b = ObsConfig::fresh().handle().unwrap();
        assert!(!a.same_registry(&b));
    }

    #[test]
    fn on_config_arms_and_shares_the_global_registry() {
        let a = ObsConfig::on().handle().unwrap();
        assert!(global_enabled());
        assert!(a.same_registry(global()));
    }
}
