//! Stress-trace generator: emit an arbitrarily large synthetic composite
//! ATSB trace for exercising the streaming analysis path. The trace is
//! generated block by block (peak memory is one rank's events), so
//! multi-hundred-MB files are routine:
//!
//! ```text
//! trace_gen out.atsb --ranks 64 --mb 256
//! ```
//!
//! Flags: `--ranks N` (default 64), `--mb N` target size (default 32),
//! `--inner N` compute bursts per repetition (default 128).

use ats_bench::stress::{write_stress, StressConfig};
use std::time::Instant;

fn main() {
    let (positionals, flags) = ats_bench::split_flags(std::env::args().skip(1).collect());
    let Some(path) = positionals.first() else {
        eprintln!("usage: trace_gen OUT.atsb [--ranks N] [--mb N] [--inner N]");
        std::process::exit(2);
    };
    let num = |name: &str, default: u64| -> u64 {
        match ats_bench::flag(&flags, name) {
            None => default,
            Some(v) => v.parse().unwrap_or_else(|_| {
                eprintln!("--{name} needs an integer, got {v:?}");
                std::process::exit(2);
            }),
        }
    };
    let ranks = num("ranks", 64).clamp(2, u32::MAX as u64) as u32;
    let mb = num("mb", 32).max(1);
    let mut cfg = StressConfig::sized_mb(ranks, mb);
    cfg.inner = num("inner", cfg.inner).max(1);

    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    let start = Instant::now();
    let bytes = write_stress(&cfg, std::io::BufWriter::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    let secs = start.elapsed().as_secs_f64();
    println!(
        "{path}: {} ranks, {} events, {:.1} MB in {:.2} s ({:.0} MB/s)",
        cfg.ranks,
        cfg.events_total(),
        bytes as f64 / 1e6,
        secs,
        bytes as f64 / 1e6 / secs.max(1e-9),
    );
}
