//! Extended experiment E-pos: positive-correctness sweeps. For every
//! positive property function, sweep the severity knob and verify the
//! analyzer's detected severity tracks it monotonically (Kendall tau = 1).
//!
//! Usage: `sweep_positive [nprocs]`

use ats_harness::experiment::{kendall_tau, to_markdown, Experiment, Sweep};
use ats_harness::RunOpts;

fn main() {
    let nprocs = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8usize);
    let knobs = [0.005, 0.01, 0.02, 0.04, 0.08];
    println!("=== E-pos: severity tracking across the positive catalog ===\n");
    let mut all_ok = true;
    for spec in ats_core::CATALOG {
        let Some(_) = spec.expected_property else {
            continue;
        };
        // Pick the severity knob by parameter name.
        let knob = spec
            .params
            .iter()
            .find(|p| {
                matches!(
                    p.name,
                    "extrawork"
                        | "baseextrawork"
                        | "singlework"
                        | "masterwork"
                        | "bodywork"
                        | "delay"
                        | "growth"
                )
            })
            .map(|p| p.name);
        let exp = match knob {
            Some(k) => Experiment::new(spec.name)
                .sweep(Sweep::seconds(k, knobs))
                .opts(RunOpts::default().procs(nprocs)),
            None => Experiment::new(spec.name).opts(RunOpts::default().procs(nprocs)),
        };
        let rows = exp.run().expect("runnable");
        let sev: Vec<f64> = rows.iter().map(|r| r.detected_severity).collect();
        // Monotonicity is checked on the absolute waiting time: severity
        // is a fraction of total time and legitimately saturates when the
        // knob scales the entire run.
        let waits: Vec<f64> = rows.iter().map(|r| r.detected_wait_secs).collect();
        let tau = if waits.len() > 1 {
            kendall_tau(&knobs[..waits.len()], &waits)
        } else {
            1.0
        };
        let localized = rows.iter().all(|r| r.localized);
        let ok = tau == 1.0 && localized && sev.iter().all(|s| *s > 0.0);
        all_ok &= ok;
        println!(
            "{:<32} severities {:?} wait-tau={tau:+.2} localized={localized} [{}]",
            spec.name,
            sev.iter().map(|s| format!("{s:.3}")).collect::<Vec<_>>(),
            if ok { "ok" } else { "FAIL" }
        );
        if std::env::var("ATS_VERBOSE").is_ok() {
            println!("{}", to_markdown(&rows));
        }
    }
    println!(
        "\npositive correctness sweep: {}",
        if all_ok { "ALL OK" } else { "FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
