//! Extended experiment E-pos: positive-correctness sweeps. For every
//! positive property function, sweep the severity knob and verify the
//! analyzer's detected severity tracks it monotonically (Kendall tau = 1).
//!
//! Configurations execute on the harness's bounded worker pool; rows are
//! deterministic (combo-ordered) for any `jobs` value, and event buffers
//! are recycled between configurations through the harness's trace pool.
//! The run also emits a machine-readable `BENCH_sweep.json` (override the
//! path with `ATS_BENCH_JSON`) so sweep throughput is tracked across
//! revisions. With `--trace-dir DIR` it additionally stores each
//! property's default-parameter trace as an artifact (`--format` selects
//! the encoding; default: ATSB binary).
//!
//! Usage: `sweep_positive [nprocs] [jobs] [--trace-dir DIR]
//!                        [--format {jsonl,binary}] [--metrics PATH] [--manifest]`
//!        (`jobs 0` = all cores)

use ats_bench::{cli::CommonArgs, write_trace_artifact};
use ats_harness::experiment::{kendall_tau, to_markdown, Sweep};
use ats_harness::{pool, ParamValues, Session};
use serde::Serialize;
use std::path::{Path, PathBuf};

#[derive(Serialize)]
struct SweepBenchDoc {
    experiment: &'static str,
    nprocs: usize,
    jobs_requested: usize,
    jobs_effective: usize,
    host_parallelism: usize,
    properties: usize,
    configs: usize,
    wall_secs: f64,
    configs_per_sec: f64,
}

fn main() {
    let args = CommonArgs::parse();
    let nprocs: usize = args.positional_or(0, 8);
    let jobs: usize = args.positional_or(1, 0);
    let session = args.session(Session::builder().procs(nprocs).jobs(jobs));
    let knobs = [0.005, 0.01, 0.02, 0.04, 0.08];
    println!("=== E-pos: severity tracking across the positive catalog ===\n");
    let mut all_ok = true;
    let mut properties = 0usize;
    let mut configs = 0usize;
    let mut wall_secs = 0.0f64;
    let mut jobs_effective = 1usize;
    let mut artifacts: Vec<PathBuf> = Vec::new();
    for spec in ats_core::CATALOG {
        if spec.expected_property.is_none() {
            continue;
        }
        // Pick the severity knob by parameter name.
        let knob = spec
            .params
            .iter()
            .find(|p| {
                matches!(
                    p.name,
                    "extrawork"
                        | "baseextrawork"
                        | "singlework"
                        | "masterwork"
                        | "bodywork"
                        | "delay"
                        | "growth"
                )
            })
            .map(|p| p.name);
        let mut exp = session.experiment(spec.name);
        if let Some(k) = knob {
            exp = exp.sweep(Sweep::seconds(k, knobs));
        }
        let (rows, stats) = exp.run_with_stats().expect("runnable");
        properties += 1;
        configs += stats.configs;
        wall_secs += stats.wall_secs;
        jobs_effective = jobs_effective.max(stats.jobs);
        let sev: Vec<f64> = rows.iter().map(|r| r.detected_severity).collect();
        // Monotonicity is checked on the absolute waiting time: severity
        // is a fraction of total time and legitimately saturates when the
        // knob scales the entire run.
        let waits: Vec<f64> = rows.iter().map(|r| r.detected_wait_secs).collect();
        let tau = if waits.len() > 1 {
            kendall_tau(&knobs[..waits.len()], &waits)
        } else {
            1.0
        };
        let localized = rows.iter().all(|r| r.localized);
        let ok = tau == 1.0 && localized && sev.iter().all(|s| *s > 0.0);
        all_ok &= ok;
        println!(
            "{:<32} severities {:?} wait-tau={tau:+.2} localized={localized} [{}]",
            spec.name,
            sev.iter().map(|s| format!("{s:.3}")).collect::<Vec<_>>(),
            if ok { "ok" } else { "FAIL" }
        );
        if std::env::var("ATS_VERBOSE").is_ok() {
            println!("{}", to_markdown(&rows));
        }
        if let Some(dir) = args.trace_dir() {
            let params = ParamValues::defaults(spec);
            let trace = session.run(spec.name, &params).expect("runnable");
            let path = write_trace_artifact(&trace, dir, spec.name, args.format());
            println!("  wrote {path}");
            artifacts.push(PathBuf::from(path));
        }
    }
    let doc = SweepBenchDoc {
        experiment: "E-pos",
        nprocs,
        jobs_requested: jobs,
        jobs_effective,
        host_parallelism: pool::auto_jobs(),
        properties,
        configs,
        wall_secs,
        configs_per_sec: if wall_secs > 0.0 {
            configs as f64 / wall_secs
        } else {
            0.0
        },
    };
    let json_path =
        std::env::var("ATS_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".to_owned());
    match std::fs::write(
        &json_path,
        serde_json::to_string_pretty(&doc).expect("doc serializes"),
    ) {
        Ok(()) => println!(
            "\n{configs} configs in {wall_secs:.2}s = {:.1} configs/sec (jobs={jobs_effective}) -> {json_path}",
            doc.configs_per_sec
        ),
        Err(e) => eprintln!("\nwarning: could not write {json_path}: {e}"),
    }
    let artifact_refs: Vec<&Path> = artifacts.iter().map(PathBuf::as_path).collect();
    args.emit(&session, "sweep_positive", &artifact_refs);
    println!(
        "\npositive correctness sweep: {}",
        if all_ok { "ALL OK" } else { "FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
