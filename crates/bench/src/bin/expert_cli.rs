//! A standalone EXPERT-like analysis CLI: reads a JSONL trace produced by
//! the suite (or runs a named property function) and prints the analysis.
//!
//! Usage:
//!   expert_cli --trace FILE.jsonl
//!   expert_cli --run PROPERTY [key=value ...] [--procs N]

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_harness::{run_single, ParamValues, RunOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace = if let Some(i) = args.iter().position(|a| a == "--trace") {
        let path = args.get(i + 1).expect("--trace needs a file");
        let file = std::fs::File::open(path).expect("open trace");
        ats_trace::io::read_jsonl(std::io::BufReader::new(file)).expect("parse trace")
    } else if let Some(i) = args.iter().position(|a| a == "--run") {
        let name = args.get(i + 1).expect("--run needs a property").clone();
        let spec = ats_core::catalog::find(&name).unwrap_or_else(|| {
            eprintln!("unknown property `{name}`; see the `catalog` binary");
            std::process::exit(2);
        });
        let procs = args
            .iter()
            .position(|a| a == "--procs")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        let kv: Vec<&str> = args[i + 2..]
            .iter()
            .map(String::as_str)
            .filter(|a| a.contains('='))
            .collect();
        let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        run_single(&name, &params, &RunOpts::default().procs(procs)).expect("in catalog")
    } else {
        eprintln!(
            "usage: expert_cli --trace FILE.jsonl | --run PROPERTY [key=value ...] [--procs N]"
        );
        std::process::exit(2);
    };
    let report = analyze(&trace, &AnalyzerConfig::default());
    println!("{}", report.render(&trace));
}
