//! A standalone EXPERT-like analysis CLI: reads a stored trace (ATSB
//! binary or JSONL, auto-detected) or runs a named property function, and
//! prints the analysis. Optionally saves the analyzed trace back to disk.
//!
//! Usage:
//!   expert_cli --trace FILE
//!   expert_cli --run PROPERTY [key=value ...] [--procs N]
//!   ... [--save FILE] [--format {jsonl,binary}]   (default format: binary)
//!   ... [--metrics PATH] [--manifest]

use ats_bench::cli::CommonArgs;
use ats_harness::{ParamValues, Session};
use std::path::Path;

fn main() {
    let args = CommonArgs::parse();
    let procs = args.flag("procs").and_then(|v| v.parse().ok()).unwrap_or(8);
    let session = args.session(Session::builder().procs(procs));
    let trace = if let Some(path) = args.flag("trace") {
        ats_trace::io::read_path(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    } else if let Some(name) = args.flag("run") {
        let spec = ats_core::catalog::find(name).unwrap_or_else(|| {
            eprintln!("unknown property `{name}`; see the `catalog` binary");
            std::process::exit(2);
        });
        let kv: Vec<&str> = args
            .positionals
            .iter()
            .map(String::as_str)
            .filter(|a| a.contains('='))
            .collect();
        let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        session.run(name, &params).expect("in catalog")
    } else {
        eprintln!(
            "usage: expert_cli --trace FILE | --run PROPERTY [key=value ...] [--procs N]\n\
             \x20      [--save FILE] [--format {{jsonl,binary}}] [--metrics PATH] [--manifest]"
        );
        std::process::exit(2);
    };
    let mut artifacts: Vec<&Path> = Vec::new();
    if let Some(path) = args.save() {
        let format = args.format();
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        format
            .write(&trace, std::io::BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("saved {format} trace to {path}");
        artifacts.push(Path::new(path));
    }
    let report = session.analyze(&trace);
    println!("{}", report.render(&trace));
    args.emit(&session, "expert_cli", &artifacts);
}
