//! A standalone EXPERT-like analysis CLI: reads a stored trace (ATSB
//! binary or JSONL, auto-detected) or runs a named property function, and
//! prints the analysis. Optionally saves the analyzed trace back to disk.
//!
//! Usage:
//!   expert_cli --trace FILE
//!   expert_cli --run PROPERTY [key=value ...] [--procs N]
//!   ... [--save FILE] [--format {jsonl,binary}]   (default format: binary)

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_bench::{flag, format_flag, split_flags};
use ats_harness::{run_single, ParamValues, RunOpts};

fn main() {
    let (positionals, flags) = split_flags(std::env::args().skip(1).collect());
    let trace = if let Some(path) = flag(&flags, "trace") {
        ats_trace::io::read_path(path).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        })
    } else if let Some(name) = flag(&flags, "run") {
        let spec = ats_core::catalog::find(name).unwrap_or_else(|| {
            eprintln!("unknown property `{name}`; see the `catalog` binary");
            std::process::exit(2);
        });
        let procs = flag(&flags, "procs")
            .and_then(|v| v.parse().ok())
            .unwrap_or(8);
        let kv: Vec<&str> = positionals
            .iter()
            .map(String::as_str)
            .filter(|a| a.contains('='))
            .collect();
        let params = ParamValues::from_args(spec, &kv).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        run_single(name, &params, &RunOpts::default().procs(procs)).expect("in catalog")
    } else {
        eprintln!(
            "usage: expert_cli --trace FILE | --run PROPERTY [key=value ...] [--procs N]\n\
             \x20      [--save FILE] [--format {{jsonl,binary}}]"
        );
        std::process::exit(2);
    };
    if let Some(path) = flag(&flags, "save") {
        let format = format_flag(&flags);
        let file = std::fs::File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create {path}: {e}");
            std::process::exit(1);
        });
        format
            .write(&trace, std::io::BufWriter::new(file))
            .unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
        eprintln!("saved {format} trace to {path}");
    }
    let report = analyze(&trace, &AnalyzerConfig::default());
    println!("{}", report.render(&trace));
}
