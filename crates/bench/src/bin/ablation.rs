//! Design-choice ablations (DESIGN.md §9):
//!
//! 1. **Eager threshold vs. Late Receiver visibility** — with standard-mode
//!    sends, the Late Receiver property only exists when the message is
//!    large enough to use the rendezvous protocol. The suite's
//!    `late_receiver` function therefore forces `MPI_Ssend`; this ablation
//!    shows what a tool would see if it relied on message size instead.
//! 2. **Analyzer threshold vs. finding count** — the sensitivity knob the
//!    paper says every tool has.
//!
//! Usage: `ablation [jobs]`   (`jobs 0` = all cores)

use ats_analyzer::{analyze, AnalyzerConfig};
use ats_core::{pattern, properties::mpi_p2p, BaseComm, Distr};
use ats_harness::pool;
use ats_mpi::SimConfig;
use ats_runtime::{MachineModel, VDur};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    println!("=== Ablation 1: eager threshold vs. LateReceiver visibility ===");
    println!("(standard-mode sends of 2 KiB; receiver 40ms late; 4 ranks)\n");
    println!(
        "{:<18} {:<10} LateReceiver severity",
        "eager threshold", "protocol"
    );
    // The four protocol configurations are independent: run them on the
    // harness worker pool (4 ranks each → budgeted like a sweep) and
    // print in threshold order afterwards.
    let thresholds = [0usize, 1 << 10, 1 << 16, 1 << 20];
    let eff_jobs = pool::effective_jobs(jobs, 4, pool::default_thread_budget());
    let severities = pool::run_indexed(eff_jobs, thresholds.len(), |i| {
        let mut model = MachineModel::zero();
        model.eager_threshold = thresholds[i];
        let config = SimConfig {
            nprocs: 4,
            model,
            init_time: VDur::ZERO,
            finalize_time: VDur::ZERO,
            ..Default::default()
        };
        let trace = ats_mpi::run(config, |p| {
            let c = p.comm_world();
            // Like late_receiver, but with standard-mode sends: the
            // protocol choice decides whether the sender ever blocks.
            let base = BaseComm::default();
            let buf = base.alloc();
            let dd = Distr::cyclic2(0.002, 0.042);
            for _ in 0..3 {
                ats_core::par_do_mpi_work(p, &dd, 1.0, &c);
                pattern::sendrecv(
                    p,
                    &buf,
                    pattern::Dir::Up,
                    pattern::PatternMode::default(),
                    &c,
                );
            }
        });
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(0.0));
        report.severity_of("LateReceiver")
    });
    for (threshold, severity) in thresholds.into_iter().zip(severities) {
        let protocol = if threshold >= 2048 {
            "eager"
        } else {
            "rendezvous"
        };
        println!("{threshold:<18} {protocol:<10} {severity:.4}");
    }
    println!("\n(with eager sends the sender never blocks: the property vanishes,");
    println!(" which is why the catalog's late_receiver uses MPI_Ssend)");

    println!("\n=== Ablation 2: analyzer threshold vs. reported findings ===");
    println!(
        "(the paper: 'automatic performance tools have different thresholds/sensitivities')\n"
    );
    let config = SimConfig {
        nprocs: 8,
        model: MachineModel::zero(),
        init_time: VDur::ZERO,
        finalize_time: VDur::ZERO,
        ..Default::default()
    };
    let trace = ats_mpi::run(config, |p| {
        let c = p.comm_world();
        let base = BaseComm::default();
        mpi_p2p::late_sender(p, &base, 0.005, 0.05, 2, &c); // severe
        mpi_p2p::late_sender(p, &base, 0.005, 0.002, 2, &c); // mild
        ats_core::properties::mpi_coll::late_broadcast(p, &base, 0.005, 0.0005, 0, 1, &c);
        // faint
    });
    println!("{:<12} findings", "threshold");
    for threshold in [0.0, 0.001, 0.01, 0.1, 0.5] {
        let report = analyze(&trace, &AnalyzerConfig::default().threshold(threshold));
        println!("{threshold:<12} {}", report.findings.len());
    }
}
