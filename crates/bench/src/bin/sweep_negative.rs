//! Extended experiment E-neg: negative correctness. Every balanced
//! (negative) property function across work amounts, repetitions and
//! scales must produce zero findings.
//!
//! The process-count axis rides the experiment engine's `procs_grid`, so
//! all 12 configurations per property execute on the worker pool at once.
//! With `--trace-dir DIR` each property's default-parameter trace is
//! stored as an artifact (`--format` selects the encoding; default: ATSB
//! binary).
//!
//! Usage: `sweep_negative [jobs] [--trace-dir DIR] [--format {jsonl,binary}]`
//!        (`jobs 0` = all cores)

use ats_bench::{flag, format_flag, split_flags, write_trace_artifact};
use ats_harness::experiment::{Experiment, Sweep};
use ats_harness::{run_single, ParamValues, RunOpts};

fn main() {
    let (positionals, flags) = split_flags(std::env::args().skip(1).collect());
    let jobs: usize = positionals
        .first()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let trace_dir = flag(&flags, "trace-dir");
    let format = format_flag(&flags);
    println!("=== E-neg: false-positive scan over the negative catalog ===\n");
    let mut all_ok = true;
    let mut total_configs = 0usize;
    let mut total_secs = 0.0f64;
    for spec in ats_core::CATALOG {
        if spec.expected_property.is_some() {
            continue;
        }
        let (rows, stats) = Experiment::new(spec.name)
            .procs_grid([2, 4, 8])
            .sweep(Sweep::seconds("work", [0.001, 0.01, 0.05]))
            .sweep(Sweep::counts("r", [1, 4]))
            .opts(RunOpts::default().jobs(jobs))
            .run_with_stats()
            .expect("runnable");
        total_configs += stats.configs;
        total_secs += stats.wall_secs;
        let fps: usize = rows.iter().map(|r| r.unexpected_findings).sum();
        let ok = fps == 0;
        all_ok &= ok;
        println!(
            "{:<28} procs={{2,4,8}} configs={} false positives={fps} [{}]",
            spec.name,
            rows.len(),
            if ok { "ok" } else { "FAIL" }
        );
        if let Some(dir) = trace_dir {
            let params = ParamValues::defaults(spec);
            let trace =
                run_single(spec.name, &params, &RunOpts::default().procs(4)).expect("runnable");
            let path = write_trace_artifact(&trace, dir, spec.name, format);
            println!("  wrote {path}");
        }
    }
    println!(
        "\n{total_configs} configs in {total_secs:.2}s = {:.1} configs/sec",
        if total_secs > 0.0 {
            total_configs as f64 / total_secs
        } else {
            0.0
        }
    );
    println!(
        "negative correctness sweep: {}",
        if all_ok { "ALL OK" } else { "FAILURES" }
    );
    std::process::exit(if all_ok { 0 } else { 1 });
}
